"""The Program Instrumentation Tool."""

import pytest

from repro.ccencoding import Strategy
from repro.core.instrument import instrument
from repro.program.callgraph import CallGraph
from repro.program.program import Program


class Alloc(Program):
    name = "alloc"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "work")
        graph.add_call_site("work", "malloc")
        graph.add_call_site("work", "calloc")
        return graph

    def main(self, p):
        pass


class NoAlloc(Program):
    name = "noalloc"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "work")
        return graph

    def main(self, p):
        pass


def test_targets_default_to_allocation_apis():
    inst = instrument(Alloc())
    assert set(inst.plan.targets) == {"malloc", "calloc"}


def test_program_without_allocations_needs_explicit_targets():
    with pytest.raises(ValueError):
        instrument(NoAlloc())
    inst = instrument(NoAlloc(), targets=["work"])
    assert inst.plan.targets == ("work",)


def test_strategy_and_scheme_selectable():
    inst = instrument(Alloc(), strategy=Strategy.TCS, scheme="pcce")
    assert inst.plan.strategy is Strategy.TCS
    assert inst.codec.scheme_name == "pcce"


def test_runtime_factory_produces_fresh_runtimes():
    inst = instrument(Alloc())
    first = inst.runtime()
    second = inst.runtime()
    assert first is not second
    assert first.codec is inst.codec
