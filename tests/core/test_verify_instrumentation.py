"""Automatic instrumentation verification (paper §VII)."""

import dataclasses

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.core.instrument import instrument, verify_instrumentation
from repro.workloads.vulnerable import (
    HeartbleedService,
    OptiPngOptimizer,
    table2_programs,
)


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("scheme", ["pcc", "pcce", "deltapath"])
def test_heartbleed_instrumentation_verifies(strategy, scheme):
    inst = instrument(HeartbleedService(), strategy=strategy, scheme=scheme)
    result = inst.verify()
    assert result.ok, result.render()
    assert not result.failures
    assert any("site set matches" in check for check in result.checks)
    assert any("distinguishable" in check for check in result.checks)


@pytest.mark.parametrize("program", table2_programs(),
                         ids=lambda prog: prog.name)
def test_every_table2_workload_verifies(program):
    result = instrument(program).verify()
    assert result.ok, result.render()


def test_tampered_plan_fails():
    inst = instrument(OptiPngOptimizer(), strategy=Strategy.TCS)
    plan = inst.plan
    # Drop one instrumented site — no longer the TCS selection.
    tampered = dataclasses.replace(
        plan, sites=frozenset(list(plan.sites)[1:]))
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("diverges" in failure for failure in result.failures)


def test_stray_site_ids_fail():
    inst = instrument(OptiPngOptimizer())
    tampered = dataclasses.replace(
        inst.plan, sites=inst.plan.sites | {9999})
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("unknown site ids" in failure
               for failure in result.failures)


def test_recursive_graph_verifies_with_warning():
    from repro.program.callgraph import CallGraph
    from repro.program.program import Program

    class Rec(Program):
        name = "rec"

        def build_graph(self):
            graph = CallGraph()
            graph.add_call_site("main", "walk")
            graph.add_call_site("walk", "walk", "self")
            graph.add_call_site("walk", "malloc")
            return graph

        def main(self, p):
            pass

    result = instrument(Rec()).verify()
    assert result.ok
    assert any("recursive" in warning for warning in result.warnings)


def test_render_transcript():
    result = instrument(HeartbleedService()).verify()
    text = result.render()
    assert text.startswith("instrumentation verification: PASS")
    assert "[ok]" in text


def test_total_collision_codec_warns_not_fails():
    """A colliding codec is a warning (spurious enhancement), not an
    instrumentation failure — matching the paper's collision argument."""
    from repro.ccencoding.base import Codec

    class Colliding(Codec):
        scheme_name = "colliding"

        def seed(self):
            return 1

        def mix(self, value, site):
            return 1

    inst = instrument(HeartbleedService(), strategy=Strategy.TCS)
    result = verify_instrumentation(inst.plan, Colliding(inst.plan))
    assert result.ok
    assert any("collides" in warning for warning in result.warnings)
