"""Automatic instrumentation verification (paper §VII)."""

import dataclasses

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.core.instrument import instrument, verify_instrumentation
from repro.workloads.vulnerable import (
    HeartbleedService,
    OptiPngOptimizer,
    table2_programs,
)


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("scheme", ["pcc", "pcce", "deltapath"])
def test_heartbleed_instrumentation_verifies(strategy, scheme):
    inst = instrument(HeartbleedService(), strategy=strategy, scheme=scheme)
    result = inst.verify()
    assert result.ok, result.render()
    assert not result.failures
    assert any("site set matches" in check for check in result.checks)
    assert any("distinguishable" in check for check in result.checks)


@pytest.mark.parametrize("program", table2_programs(),
                         ids=lambda prog: prog.name)
def test_every_table2_workload_verifies(program):
    result = instrument(program).verify()
    assert result.ok, result.render()


def test_tampered_plan_fails():
    inst = instrument(OptiPngOptimizer(), strategy=Strategy.TCS)
    plan = inst.plan
    # Drop one instrumented site — no longer the TCS selection.
    tampered = dataclasses.replace(
        plan, sites=frozenset(list(plan.sites)[1:]))
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("diverges" in failure for failure in result.failures)


def test_stray_site_ids_fail():
    inst = instrument(OptiPngOptimizer())
    tampered = dataclasses.replace(
        inst.plan, sites=inst.plan.sites | {9999})
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("unknown site ids" in failure
               for failure in result.failures)


def test_recursive_graph_verifies_with_warning():
    from repro.program.callgraph import CallGraph
    from repro.program.program import Program

    class Rec(Program):
        name = "rec"

        def build_graph(self):
            graph = CallGraph()
            graph.add_call_site("main", "walk")
            graph.add_call_site("walk", "walk", "self")
            graph.add_call_site("walk", "malloc")
            return graph

        def main(self, p):
            pass

    result = instrument(Rec()).verify()
    assert result.ok
    assert any("recursive" in warning for warning in result.warnings)


def test_render_transcript():
    result = instrument(HeartbleedService()).verify()
    text = result.render()
    assert text.startswith("instrumentation verification: PASS")
    assert "[ok]" in text


def test_total_collision_codec_warns_not_fails():
    """A colliding codec is a warning (spurious enhancement), not an
    instrumentation failure — matching the paper's collision argument."""
    from repro.ccencoding.base import Codec

    class Colliding(Codec):
        scheme_name = "colliding"

        def seed(self):
            return 1

        def mix(self, value, site):
            return 1

    inst = instrument(HeartbleedService(), strategy=Strategy.TCS)
    result = verify_instrumentation(inst.plan, Colliding(inst.plan))
    assert result.ok
    assert any("collides" in warning for warning in result.warnings)


# ---------------------------------------------------------------------------
# Cyclic graphs: enumeration-based checks are skipped, but well-formedness
# (check 1) must still catch tampering — for every strategy and scheme.
# ---------------------------------------------------------------------------


def _recursive_program():
    from repro.program.callgraph import CallGraph
    from repro.program.program import Program

    class RecursiveMutual(Program):
        name = "rec-mutual"

        def build_graph(self):
            graph = CallGraph()
            graph.add_call_site("main", "parse")
            graph.add_call_site("parse", "descend", "d")
            graph.add_call_site("descend", "parse", "up")  # cycle
            graph.add_call_site("descend", "malloc", "node")
            graph.add_call_site("parse", "free", "")
            return graph

        def main(self, p):
            pass

    return RecursiveMutual()


@pytest.mark.parametrize("strategy", list(Strategy))
def test_cyclic_graph_verifies_for_all_strategies(strategy):
    """PCC (the paper's scheme) supports recursion; every strategy's
    plan must verify on a cyclic graph via the structural argument."""
    program = _recursive_program()
    assert not program.graph.is_acyclic()
    result = instrument(program, strategy=strategy, scheme="pcc").verify()
    assert result.ok, result.render()
    assert any("recursive" in warning for warning in result.warnings)
    # Enumeration-based checks must NOT have run.
    assert not any("distinguishable" in check for check in result.checks)
    assert any("site set matches" in check for check in result.checks)


@pytest.mark.parametrize("scheme", ["pcce", "deltapath"])
def test_acyclic_only_schemes_refuse_recursive_graphs(scheme):
    from repro.ccencoding.base import EncodingError
    from repro.program.callgraph import CallGraphError

    with pytest.raises((EncodingError, CallGraphError)):
        instrument(_recursive_program(), scheme=scheme)


@pytest.mark.parametrize("strategy", list(Strategy))
def test_cyclic_graph_tampered_plan_still_fails(strategy):
    """Check 1 (site set matches the strategy selection) is the only
    defense on recursive graphs; it must detect a dropped site."""
    program = _recursive_program()
    inst = instrument(program, strategy=strategy)
    if not inst.plan.sites:
        pytest.skip(f"{strategy.value} selects no sites here")
    tampered = dataclasses.replace(
        inst.plan, sites=frozenset(list(inst.plan.sites)[1:]))
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("diverges" in failure for failure in result.failures)


def test_cyclic_graph_stray_site_still_fails():
    program = _recursive_program()
    inst = instrument(program)
    tampered = dataclasses.replace(
        inst.plan, sites=inst.plan.sites | {12345})
    result = verify_instrumentation(tampered, inst.codec)
    assert not result.ok
    assert any("unknown site ids" in failure
               for failure in result.failures)


# ---------------------------------------------------------------------------
# Pruned plans: verification re-runs the selection with the pre-pass.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", list(Strategy))
def test_pruned_plan_verifies(strategy):
    inst = instrument(HeartbleedService(), strategy=strategy, prune=True)
    assert inst.plan.pruned
    result = inst.verify()
    assert result.ok, result.render()
    assert any("+prune" in check for check in result.checks)


def test_pruned_plan_mislabeled_as_unpruned_fails():
    """A pruned site set claiming to be the plain selection (or vice
    versa) is tampering and must fail check 1."""
    pruned = instrument(HeartbleedService(), prune=True)
    plain = instrument(HeartbleedService())
    if pruned.plan.sites == plain.plan.sites:
        pytest.skip("pruning removed nothing on this workload")
    mislabeled = dataclasses.replace(pruned.plan, pruned=False)
    result = verify_instrumentation(mislabeled, pruned.codec)
    assert not result.ok
