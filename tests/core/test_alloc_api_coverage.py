"""Every allocation entry point works through the whole pipeline.

The paper's patch tuple keys on the allocation FUNCTION; this test sweeps
the complete family — malloc, calloc, realloc, memalign, aligned_alloc,
posix_memalign — through offline detection and online defense, verifying
the patch carries the right FUN and matches only that entry point.
"""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.vulntypes import VulnType
from repro.workloads.vulnerable.base import RunOutcome, VulnerableProgram

FUNS = ("malloc", "calloc", "realloc", "memalign", "aligned_alloc",
        "posix_memalign")


class AnyFunLeaker(VulnerableProgram):
    """Allocates via a chosen entry point and leaks uninitialized bytes."""

    vulnerability = "UR"
    reference = "api-coverage"

    def __init__(self, fun: str):
        super().__init__()
        self.fun = fun
        self.name = f"leaker-{fun}"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc", "seed")
        graph.add_call_site("main", "free")
        if self.fun == "realloc":
            graph.add_call_site("main", "malloc", "initial")
        graph.add_call_site("main", self.fun, "vuln")
        return graph

    def attack_input(self):
        return 8     # initialize only 8 of 64 bytes

    def benign_input(self):
        return 64    # fully initialized

    def main(self, p: Process, initialized: int) -> RunOutcome:
        # A large dirty region, so the vulnerable buffer lands on stale
        # bytes wherever the aligned variants place it.
        seed = p.malloc(512, site="seed")
        p.fill(seed, 512, 0x77)
        p.free(seed)
        buf = self._allocate(p)
        p.syscall_in(buf, b"I" * initialized)
        leaked = p.syscall_out(buf, 64)
        return RunOutcome(response=leaked)

    def _allocate(self, p: Process) -> int:
        if self.fun == "malloc":
            return p.malloc(64, site="vuln")
        if self.fun == "calloc":
            return p.calloc(1, 64, site="vuln")
        if self.fun == "realloc":
            initial = p.malloc(32, site="initial")
            return p.realloc(initial, 64, site="vuln")
        if self.fun == "memalign":
            return p.memalign(32, 64, site="vuln")
        if self.fun == "aligned_alloc":
            return p.aligned_alloc(64, 64, site="vuln")
        if self.fun == "posix_memalign":
            return p.posix_memalign(128, 64, site="vuln")
        raise AssertionError(self.fun)

    def attack_succeeded(self, outcome):
        if outcome is None:
            return False
        return any(byte != 0 for byte in outcome.response[8:])

    def benign_works(self, outcome):
        return outcome is not None and \
            outcome.response == b"I" * 64


@pytest.mark.parametrize("fun", FUNS)
def test_full_cycle_per_entry_point(fun):
    program = AnyFunLeaker(fun)
    system = HeapTherapy(program)

    if fun == "calloc":
        # calloc zeroes: there is nothing to leak — the clean-by-
        # construction entry point.
        native = system.run_native(program.attack_input())
        assert not program.attack_succeeded(native.result)
        generation = system.generate_patches(program.attack_input())
        assert not generation.detected
        return

    native = system.run_native(program.attack_input())
    assert program.attack_succeeded(native.result), fun

    generation = system.generate_patches(program.attack_input())
    assert generation.detected, fun
    funs_in_patches = {patch.fun for patch in generation.patches}
    assert fun in funs_in_patches, (fun, funs_in_patches)

    defended = system.run_defended(generation.patches,
                                   program.attack_input())
    assert defended.completed
    assert not program.attack_succeeded(defended.result), fun

    benign = system.run_defended(generation.patches,
                                 program.benign_input())
    assert program.benign_works(benign.result), fun


@pytest.mark.parametrize("fun", ["memalign", "aligned_alloc",
                                 "posix_memalign"])
def test_aligned_family_returns_aligned_defended(fun):
    """Alignment guarantees survive the defense's Structure 3 layout."""
    program = AnyFunLeaker(fun)
    system = HeapTherapy(program)
    generation = system.generate_patches(program.attack_input())

    observed = {}

    class Spy(AnyFunLeaker):
        """Capture the allocated address for the alignment check."""

        def _allocate(self, p):
            address = super()._allocate(p)
            observed["address"] = address
            return address

    spy = Spy(fun)
    spy_system = HeapTherapy(spy)
    spy_system.run_defended(generation.patches, spy.attack_input())
    alignment = {"memalign": 32, "aligned_alloc": 64,
                 "posix_memalign": 128}[fun]
    assert observed["address"] % alignment == 0


def test_patch_on_one_fun_ignores_others():
    """A patch keyed fun=aligned_alloc must not fire for memalign even
    at an identical CCID — the paper pairs {Target_fun, CCID}."""
    from repro.defense.interpose import DefendedAllocator
    from repro.defense.patch_table import PatchTable
    from repro.patch.model import HeapPatch
    from repro.allocator.libc import LibcAllocator
    from repro.program.context import ContextSource

    class Fixed(ContextSource):
        def current_ccid(self):
            return 0x66

    table = PatchTable([HeapPatch("aligned_alloc", 0x66,
                                  VulnType.UNINIT_READ)])
    defended = DefendedAllocator(LibcAllocator(), table,
                                 context_source=Fixed())
    defended.memalign(32, 64)
    assert defended.enhanced_counts[VulnType.UNINIT_READ] == 0
    defended.aligned_alloc(32, 64)
    assert defended.enhanced_counts[VulnType.UNINIT_READ] == 1
