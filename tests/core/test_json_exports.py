"""JSON export surfaces for CI pipelines and external tooling."""

import json

import pytest

from repro.allocator.libc import LibcAllocator
from repro.core.pipeline import HeapTherapy
from repro.core.profiling import AllocationProfile
from repro.defense.report import DefenseReport
from repro.program.process import Process
from repro.workloads.vulnerable import HeartbleedService


@pytest.fixture(scope="module")
def system():
    return HeapTherapy(HeartbleedService())


@pytest.fixture(scope="module")
def generation(system):
    return system.generate_patches(HeartbleedService.attack_input())


def test_analysis_report_to_dict(generation):
    payload = generation.report.to_dict()
    text = json.dumps(payload)
    restored = json.loads(text)
    assert len(restored["warnings"]) == len(generation.report)
    assert restored["patch_candidates"]
    candidate = restored["patch_candidates"][0]
    assert set(candidate) == {"fun", "ccid", "type"}
    attributed = [w for w in restored["warnings"] if w["buffer"]]
    assert attributed
    assert attributed[0]["buffer"]["size"] > 0
    assert attributed[0]["buffer"]["context"]


def test_defense_report_to_dict(system, generation):
    run = system.run_defended(generation.patches,
                              HeartbleedService.benign_input())
    payload = DefenseReport.from_allocator(run.allocator).to_dict()
    restored = json.loads(json.dumps(payload))
    assert restored["patches_installed"] == len(generation.patches)
    assert restored["cost_by_category"]["interpose"] > 0
    assert 0 <= restored["enhancement_rate"] <= 1


def test_profile_to_dict(system):
    program = system.program
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=system.instrumented.runtime())
    process.run(program, HeartbleedService.benign_input())
    profile = AllocationProfile()
    profile.ingest(process)
    restored = json.loads(json.dumps(profile.to_dict()))
    assert restored["total_allocations"] == profile.total_allocations
    assert len(restored["contexts"]) == len(profile)
    # Ranked hottest-first.
    counts = [c["allocations"] for c in restored["contexts"]]
    assert counts == sorted(counts, reverse=True)


def test_patch_candidates_agree_with_patches(generation):
    payload = generation.report.to_dict()
    from_json = {(c["fun"], c["ccid"]) for c in payload["patch_candidates"]}
    from_patches = {p.key for p in generation.patches}
    assert from_json == from_patches
