"""Patch explanation tooling."""

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.core.explain import explain_patch
from repro.core.pipeline import HeapTherapy
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import HeartbleedService


@pytest.fixture(scope="module")
def program():
    return HeartbleedService()


def codec_for(program, scheme, strategy=Strategy.TCS):
    plan = InstrumentationPlan.build(program.graph,
                                     program.graph.allocation_targets,
                                     strategy)
    return SCHEMES[scheme].build(plan)


def patch_for(program, codec):
    """A patch on the hb_request buffer context, derived honestly."""
    from repro.patch.generator import OfflinePatchGenerator
    result = OfflinePatchGenerator(program, codec).replay(
        HeartbleedService.attack_input())
    # Pick the patch whose context profiling will match the 34KB buffer.
    return result.patches[0]


def test_profiled_explanation_with_pcc(program):
    codec = codec_for(program, "pcc")
    patch = patch_for(program, codec)
    explanation = explain_patch(
        program, codec, patch,
        profile_args=(HeartbleedService.attack_input(),))
    assert explanation.resolved
    context = explanation.contexts[0]
    assert context.how == "profiled"
    assert context.observed_allocations >= 1
    assert context.chain[0] == "main"
    assert context.chain[-1] == "malloc"


def test_decoded_explanation_with_pcce(program):
    codec = codec_for(program, "pcce")
    patch = patch_for(program, codec)
    explanation = explain_patch(program, codec, patch)
    assert explanation.resolved
    assert explanation.contexts[0].how == "decoded"
    assert explanation.contexts[0].chain[-1] == "malloc"


def test_decoded_and_profiled_agree(program):
    codec = codec_for(program, "pcce")
    patch = patch_for(program, codec)
    explanation = explain_patch(
        program, codec, patch,
        profile_args=(HeartbleedService.attack_input(),))
    # One entry, recovered by decoding and confirmed by profiling.
    assert len(explanation.contexts) == 1
    context = explanation.contexts[0]
    assert context.how == "decoded"
    assert context.observed_allocations >= 1
    assert not explanation.ambiguous


def test_unmatched_patch_unresolved(program):
    codec = codec_for(program, "pcc")
    bogus = HeapPatch("malloc", 0x1234, VulnType.OVERFLOW)
    explanation = explain_patch(
        program, codec, bogus,
        profile_args=(HeartbleedService.benign_input(),))
    assert not explanation.resolved
    assert "no matching" in explanation.render()


def test_render_mentions_context(program):
    codec = codec_for(program, "pcce")
    patch = patch_for(program, codec)
    text = explain_patch(program, codec, patch).render()
    assert "decoded" in text
    assert "malloc" in text
