"""Allocation-context profiling tool."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.core.pipeline import HeapTherapy
from repro.core.profiling import AllocationProfile
from repro.defense.patch_table import PatchTable
from repro.program.process import Process
from repro.vulntypes import VulnType
from repro.workloads.services import NginxServer
from repro.workloads.vulnerable import HeartbleedService


def profile_of(program, *args, record=True):
    system = HeapTherapy(program)
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=system.instrumented.runtime(),
                      record_allocations=record)
    process.run(program, *args)
    profile = AllocationProfile()
    profile.ingest(process)
    return profile


class TestIngestion:
    def test_contexts_and_counts(self):
        profile = profile_of(NginxServer(), 50, 10)
        assert len(profile) >= 4
        assert profile.total_allocations == sum(
            stats.allocations for stats in profile.ranked())
        assert profile.runs_ingested == 1

    def test_sizes_recorded_from_events(self):
        profile = profile_of(HeartbleedService(),
                             HeartbleedService.benign_input())
        ranked = profile.ranked()
        big = [stats for stats in ranked if stats.max_size
               and stats.max_size >= 34 * 1024]
        assert big, "the 34KB request buffer context must appear"
        assert big[0].example_context  # true context captured

    def test_counter_only_fallback(self):
        profile = profile_of(NginxServer(), 20, 5, record=False)
        assert profile.total_allocations > 0
        assert all(stats.mean_size == 0 for stats in profile.ranked())

    def test_multiple_runs_accumulate(self):
        program = NginxServer()
        system = HeapTherapy(program)
        profile = AllocationProfile()
        for _ in range(2):
            process = Process(program.graph, heap=LibcAllocator(),
                              context_source=system.instrumented.runtime())
            process.run(program, 30, 10)
            profile.ingest(process)
        assert profile.runs_ingested == 2
        single = profile_of(NginxServer(), 30, 10)
        assert profile.total_allocations == 2 * single.total_allocations


class TestSelection:
    def test_hottest_median_coldest(self):
        profile = profile_of(NginxServer(), 100, 20)
        hottest = profile.select("hottest", 1)[0]
        coldest = profile.select("coldest", 1)[0]
        median = profile.select("median", 1)[0]
        assert hottest.allocations >= median.allocations \
            >= coldest.allocations
        # The rare error-page context must be the coldest.
        assert coldest.allocations < hottest.allocations

    def test_selector_validation(self):
        profile = profile_of(NginxServer(), 10, 5)
        with pytest.raises(ValueError):
            profile.select("lukewarm")

    def test_empty_profile_selects_nothing(self):
        assert AllocationProfile().select("median", 3) == []

    def test_hypothesize_patches(self):
        profile = profile_of(NginxServer(), 50, 10)
        patches = profile.hypothesize_patches(VulnType.USE_AFTER_FREE,
                                              "median", 2)
        assert len(patches) == 2
        assert all(patch.vuln == VulnType.USE_AFTER_FREE
                   for patch in patches)

    def test_hypothesized_patches_run(self):
        program = NginxServer()
        profile = profile_of(program, 50, 10)
        system = HeapTherapy(program)
        run = system.run_defended(
            PatchTable(profile.hypothesize_patches(count=1)), 50, 10)
        assert run.completed


class TestEstimation:
    def test_patch_cost_scales_with_heat(self):
        profile = profile_of(NginxServer(), 100, 20)
        hottest = profile.select("hottest", 1)[0]
        coldest = profile.select("coldest", 1)[0]
        hot_cost = profile.estimated_patch_cost(hottest.fun, hottest.ccid,
                                                6000)
        cold_cost = profile.estimated_patch_cost(coldest.fun, coldest.ccid,
                                                 6000)
        assert hot_cost > cold_cost > 0
        assert profile.estimated_patch_cost("malloc", 0xDEAD, 6000) == 0


class TestRendering:
    def test_render_mentions_contexts(self):
        profile = profile_of(NginxServer(), 30, 10)
        text = profile.render(limit=3)
        assert "allocation profile" in text
        assert "malloc" in text
        assert "more context(s)" in text or len(profile) <= 3
