"""System-level invariants the paper's correctness argument rests on.

1. **Enhancements never change program logic** (Section IV): whatever
   patches are installed, a program that doesn't actually trigger a
   guard fault computes the same results as natively.
2. **Hash collisions are harmless** (Section IV): with a deliberately
   degenerate codec (every context encodes to the same CCID), *every*
   buffer matches the patch and gets enhanced — pure overhead, identical
   results.
"""

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.ccencoding.base import Codec
from repro.ccencoding.runtime import EncodingRuntime
from repro.allocator.libc import LibcAllocator
from repro.core.pipeline import HeapTherapy
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.program.monitor import DirectMonitor
from repro.program.cost import CycleMeter
from repro.program.process import Process
from repro.vulntypes import VulnType
from repro.workloads.services.harness import median_frequency_patches
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram


@pytest.mark.parametrize("profile_name",
                         ["400.perlbench", "403.gcc", "456.hmmer"])
@pytest.mark.parametrize("vuln", [VulnType.OVERFLOW,
                                  VulnType.USE_AFTER_FREE,
                                  VulnType.UNINIT_READ,
                                  VulnType.OVERFLOW | VulnType.USE_AFTER_FREE
                                  | VulnType.UNINIT_READ])
def test_patches_never_change_results(profile_name, vuln):
    program = SyntheticSpecProgram(profile_by_name(profile_name),
                                   scale=0.02)
    system = HeapTherapy(program)
    native = system.run_native()
    patches = [HeapPatch(fun, ccid, vuln)
               for (fun, ccid), _ in
               native.process.alloc_profile.most_common(5)]
    defended = system.run_defended(PatchTable(patches))
    assert defended.completed
    assert defended.result == native.result


class CollidingCodec(Codec):
    """Degenerate codec: every calling context encodes to 0xC0111DE."""

    scheme_name = "colliding"

    def seed(self):
        return 0xC0111DE

    def mix(self, value, site):
        return 0xC0111DE


def test_total_hash_collision_is_pure_overhead():
    program = SyntheticSpecProgram(profile_by_name("456.hmmer"),
                                   scale=0.02)
    graph = program.graph
    plan = InstrumentationPlan.build(graph, graph.allocation_targets,
                                     Strategy.FCS)

    def run(codec, patches):
        meter = CycleMeter()
        underlying = LibcAllocator()
        runtime = EncodingRuntime(codec, meter)
        defended = DefendedAllocator(underlying, PatchTable(patches),
                                     context_source=runtime, meter=meter)
        monitor = DirectMonitor(underlying.memory, defended, meter)
        process = Process(graph, monitor=monitor, context_source=runtime,
                          meter=meter, record_allocations=False)
        return process.run(program), defended, meter

    baseline_result, _, baseline_meter = run(
        SCHEMES["pcc"].build(plan), [])

    colliding = CollidingCodec(plan)
    patches = [HeapPatch("malloc", 0xC0111DE, VulnType.UNINIT_READ)]
    collided_result, defended, collided_meter = run(colliding, patches)

    # Same program outcome...
    assert collided_result == baseline_result
    # ...but every malloc matched the patch (spurious enhancement):
    assert defended.enhanced_counts[VulnType.UNINIT_READ] \
        == defended.stats.malloc_calls
    # ...costing extra defense cycles, i.e. overhead not incorrectness.
    assert collided_meter.category("defense") \
        > baseline_meter.category("defense")


def test_figure8_patches_preserve_results_end_to_end():
    """The Figure 8 measurement methodology itself relies on this: the
    patched runs must compute identical results to the native run."""
    program = SyntheticSpecProgram(profile_by_name("471.omnetpp"),
                                   scale=0.02)
    system = HeapTherapy(program)
    native = system.run_native()
    for count in (1, 5):
        patches = median_frequency_patches(system, count=count)
        run = system.run_defended(PatchTable(patches))
        assert run.completed
        assert run.result == native.result
