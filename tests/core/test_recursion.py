"""Context sensitivity through recursion (PCC's natural territory).

A recursive-descent parser allocates a node buffer at every depth; each
depth is a distinct calling context with a distinct CCID.  Patching the
context of one specific depth must enhance exactly the buffers allocated
at that depth — the sharpest possible demonstration of patch precision —
and PCC handles the cyclic call graph that PCCE refuses.
"""

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.ccencoding.base import EncodingError
from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.vulntypes import VulnType


class RecursiveParser(Program):
    """Parses a nested document, allocating one node per level."""

    name = "recursive-parser"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "parse_node")
        graph.add_call_site("parse_node", "parse_node", "recurse")
        graph.add_call_site("parse_node", "malloc", "node")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p, depth):
        nodes = p.call("parse_node", self._parse_node, depth)
        for node in nodes:
            p.free(node)
        return len(nodes)

    def _parse_node(self, p, remaining):
        node = p.malloc(48, site="node")
        p.write(node, b"n" * 48)
        if remaining > 1:
            children = p.call("parse_node", self._parse_node,
                              remaining - 1, site="recurse")
            return [node] + children
        return [node]


@pytest.fixture(scope="module")
def program():
    return RecursiveParser()


def test_each_depth_gets_its_own_ccid(program):
    system = HeapTherapy(program, scheme="pcc")
    native = system.run_native(6)
    # Re-run with event recording for the CCIDs.
    from repro.allocator.libc import LibcAllocator
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=system.instrumented.runtime())
    process.run(program, 6)
    ccids = [event.ccid for event in process.allocations]
    assert len(ccids) == 6
    assert len(set(ccids)) == 6, "every recursion depth is a distinct context"


def test_patch_applies_at_one_depth_only(program):
    system = HeapTherapy(program, scheme="pcc")
    from repro.allocator.libc import LibcAllocator
    probe = Process(program.graph, heap=LibcAllocator(),
                    context_source=system.instrumented.runtime())
    probe.run(program, 6)
    depth3_ccid = probe.allocations[2].ccid  # third-level context

    run = system.run_defended(
        PatchTable([HeapPatch("malloc", depth3_ccid,
                              VulnType.USE_AFTER_FREE)]), 6)
    assert run.completed
    assert run.allocator.enhanced_counts[VulnType.USE_AFTER_FREE] == 1
    assert len(run.allocator.quarantine) == 1


def test_pcce_refuses_recursive_graph(program):
    with pytest.raises(EncodingError):
        InstrumentationPlan.build(program.graph, ["malloc"],
                                  Strategy.TCS)
        SCHEMES["pcce"].build(
            InstrumentationPlan.build(program.graph, ["malloc"],
                                      Strategy.TCS))


def test_recursive_ccids_stable_across_runs(program):
    system = HeapTherapy(program, scheme="pcc")
    from repro.allocator.libc import LibcAllocator
    runs = []
    for _ in range(2):
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=system.instrumented.runtime())
        process.run(program, 5)
        runs.append([event.ccid for event in process.allocations])
    assert runs[0] == runs[1]


def test_deeper_documents_extend_not_remap(program):
    """Prefix stability: the depth-k context's CCID is independent of
    the total document depth (V depends only on the path down)."""
    system = HeapTherapy(program, scheme="pcc")
    from repro.allocator.libc import LibcAllocator

    def ccids_for(depth):
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=system.instrumented.runtime())
        process.run(program, depth)
        return [event.ccid for event in process.allocations]

    shallow = ccids_for(3)
    deep = ccids_for(7)
    assert deep[:3] == shallow
