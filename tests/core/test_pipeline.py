"""End-to-end pipeline on the Heartbleed workload."""

import pytest

from repro.ccencoding import Strategy
from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.patch.config import loads, dumps
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import HeartbleedService


@pytest.fixture(scope="module")
def system():
    return HeapTherapy(HeartbleedService(), strategy=Strategy.INCREMENTAL)


@pytest.fixture(scope="module")
def generation(system):
    return system.generate_patches(HeartbleedService.attack_input())


class TestOffline:
    def test_attack_detected_with_one_input(self, generation):
        assert generation.detected
        assert generation.crashed is None

    def test_patch_carries_both_vulnerability_bits(self, generation):
        assert any(p.vuln & VulnType.OVERFLOW and p.vuln & VulnType.UNINIT_READ
                   for p in generation.patches)

    def test_patches_serialize_through_config_file(self, generation):
        assert loads(dumps(generation.patches)) == generation.patches


class TestOnline:
    def test_native_attack_succeeds(self, system):
        program = system.program
        native = system.run_native(HeartbleedService.attack_input())
        assert program.attack_succeeded(native.result)

    def test_defended_attack_blocked(self, system, generation):
        run = system.run_defended(generation.patches,
                                  HeartbleedService.attack_input())
        assert run.blocked
        assert not run.completed
        assert "SIGSEGV" in run.fault

    def test_defended_uninit_leak_zeroed(self, system, generation):
        program = system.program
        run = system.run_defended(generation.patches,
                                  HeartbleedService.uninit_only_input())
        assert run.completed
        assert not program.attack_succeeded(run.result)

    def test_benign_unaffected(self, system, generation):
        program = system.program
        run = system.run_defended(generation.patches,
                                  HeartbleedService.benign_input())
        assert run.completed
        assert program.benign_works(run.result)

    def test_zero_patch_table_changes_nothing_functionally(self, system):
        program = system.program
        run = system.run_defended(PatchTable.empty(),
                                  HeartbleedService.benign_input())
        assert run.completed and program.benign_works(run.result)

    def test_accepts_patch_table_or_iterable(self, system, generation):
        table = PatchTable(generation.patches)
        run = system.run_defended(table, HeartbleedService.benign_input())
        assert run.completed


class TestConvenience:
    def test_patch_and_defend(self, system):
        generation, run = system.patch_and_defend(
            (HeartbleedService.attack_input(),))
        assert generation.detected
        assert run.blocked

    def test_overhead_decomposition_present(self, system, generation):
        run = system.run_defended(generation.patches,
                                  HeartbleedService.benign_input())
        snapshot = run.meter.snapshot()
        for category in ("base", "interpose", "metadata", "lookup",
                         "encoding"):
            assert snapshot.get(category, 0) > 0, category


class TestStrategyIndependence:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("scheme", ["pcc", "pcce"])
    def test_pipeline_defends_under_every_configuration(self, strategy,
                                                        scheme):
        program = HeartbleedService()
        system = HeapTherapy(program, strategy=strategy, scheme=scheme)
        generation, run = system.patch_and_defend(
            (HeartbleedService.attack_input(),))
        assert generation.detected
        outcome = None if run.blocked else run.result
        assert not program.attack_succeeded(outcome)
