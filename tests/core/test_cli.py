"""Command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, main


def test_list_names_all_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("heartbleed", "bc", "optipng", "samate-01", "samate-23"):
        assert name in out


def test_registry_covers_cve_samate_and_extensions():
    assert len(WORKLOADS) == 7 + 23 + 1  # Table II + SAMATE + EternalBlue


def test_attack_reports_success(capsys):
    assert main(["attack", "heartbleed"]) == 0
    out = capsys.readouterr().out
    assert "attack succeeded: True" in out


def test_attack_benign_input(capsys):
    assert main(["attack", "heartbleed", "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_unknown_workload_exits():
    with pytest.raises(SystemExit):
        main(["attack", "nonexistent"])


def test_full_cycle_via_cli(tmp_path, capsys):
    config = tmp_path / "patches.conf"
    assert main(["analyze", "heartbleed", "-o", str(config)]) == 0
    assert config.exists()
    capsys.readouterr()

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "attack"]) == 0
    out = capsys.readouterr().out
    assert "BLOCKED" in out

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_analyze_benign_like_workload_detects_nothing(tmp_path, capsys):
    # analyze always replays the attack input, which must detect; use a
    # defended run with no config instead to check the empty-table path.
    assert main(["defend", "heartbleed", "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "patches loaded: 0" in out


def test_explain_via_cli(tmp_path, capsys):
    config = tmp_path / "patches.conf"
    main(["analyze", "heartbleed", "-o", str(config)])
    capsys.readouterr()
    assert main(["explain", "heartbleed", "-c", str(config)]) == 0
    out = capsys.readouterr().out
    assert "via profiled" in out
    assert "buffer_from_request" in out


def test_encode_statistics(capsys):
    assert main(["encode", "bc"]) == 0
    out = capsys.readouterr().out
    assert "incremental" in out
    assert "fcs" in out


def test_strategy_flag(capsys):
    assert main(["attack", "bc", "--strategy", "slim"]) == 0


def test_lint_all_workloads(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "linted 31 workload(s); 0 with errors" in out
    assert "lint heartbleed: OK" in out


def test_lint_single_workload_verbose(capsys):
    assert main(["lint", "heartbleed", "-v"]) == 0
    out = capsys.readouterr().out
    assert "linted 1 workload(s)" in out


def test_static_analyze_writes_deployable_config(tmp_path, capsys):
    config = tmp_path / "static.conf"
    assert main(["analyze", "heartbleed", "--static",
                 "-o", str(config)]) == 0
    out = capsys.readouterr().out
    assert "static patches heartbleed" in out
    assert config.exists()

    # The statically generated config must defeat the attack online.
    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "attack"]) == 0
    out = capsys.readouterr().out
    assert "BLOCKED" in out

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_verify_encoding_single_workload(capsys):
    assert main(["verify-encoding", "heartbleed"]) == 0
    out = capsys.readouterr().out
    assert "combo(s) certified" in out
    assert "0 uncertified" in out


def test_verify_encoding_writes_json_artifact(tmp_path, capsys):
    import json

    path = tmp_path / "certs.json"
    assert main(["verify-encoding", "heartbleed", "bc",
                 "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["combos"] == len(payload["certificates"])
    assert payload["summary"]["certified"] == payload["summary"]["combos"]


def test_verify_encoding_scheme_strategy_filters(capsys):
    assert main(["verify-encoding", "heartbleed", "--scheme", "pcce",
                 "--strategy", "slim", "-v"]) == 0
    out = capsys.readouterr().out
    assert "pcce/slim" in out
    assert "CERTIFIED" in out


def test_lint_with_encoding_verification(capsys):
    assert main(["lint", "heartbleed", "--encoding"]) == 0
    out = capsys.readouterr().out
    assert "0 uncertified encoding combo(s)" in out


def test_unknown_workload_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["verify-encoding", "nonexistent"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err


# ----------------------------------------------------------------------
# analyze: multiple --attack occurrences
# ----------------------------------------------------------------------

def test_analyze_multiple_attack_inputs(tmp_path, capsys):
    config = tmp_path / "patches.conf"
    assert main(["analyze", "heartbleed", "--attack", "attack",
                 "--attack", "benign", "-o", str(config)]) == 0
    out = capsys.readouterr().out
    assert "--- input: attack ---" in out
    assert "--- input: benign ---" in out
    assert "input benign: no vulnerability detected" in out
    assert config.exists()

    # Merged patches must still defeat the attack online.
    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "attack"]) == 0
    assert "BLOCKED" in capsys.readouterr().out


def test_analyze_benign_only_exits_one(capsys):
    assert main(["analyze", "heartbleed", "--attack", "benign"]) == 1
    out = capsys.readouterr().out
    assert "no vulnerability detected" in out


def test_analyze_rejects_unknown_input_name(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "heartbleed", "--attack", "fuzz"])
    assert excinfo.value.code == 2


def test_analyze_repeated_same_input_merges_to_one_set(tmp_path, capsys):
    once = tmp_path / "once.conf"
    twice = tmp_path / "twice.conf"
    assert main(["analyze", "heartbleed", "-o", str(once)]) == 0
    assert main(["analyze", "heartbleed", "--attack", "attack",
                 "--attack", "attack", "-o", str(twice)]) == 0
    capsys.readouterr()
    assert once.read_text() == twice.read_text()


# ----------------------------------------------------------------------
# diagnose: the parallel patch factory
# ----------------------------------------------------------------------

def _write_corpus(directory, rows):
    import json

    directory.mkdir(parents=True, exist_ok=True)
    (directory / "corpus.json").write_text(json.dumps(rows))
    return directory


def test_diagnose_corpus_dir_serial(tmp_path, capsys):
    corpus = _write_corpus(tmp_path / "corpus", [
        {"workload": "heartbleed"},
        {"workload": "bc", "input": "attack"},
    ])
    assert main(["diagnose", "--corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "jobs=1" in out
    assert out.count("DETECTED") == 2


def test_diagnose_two_workers_writes_configs_and_json(tmp_path, capsys):
    import json

    corpus = _write_corpus(tmp_path / "corpus", [
        {"workload": "heartbleed"},
        {"workload": "samate-07"},
        {"workload": "optipng"},
    ])
    out_dir = tmp_path / "patches"
    report = tmp_path / "diagnosis.json"
    assert main(["diagnose", "--corpus", str(corpus), "--jobs", "2",
                 "-o", str(out_dir), "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "jobs=2" in out
    for name in ("heartbleed", "samate-07", "optipng"):
        assert (out_dir / f"{name}.conf").exists()
    payload = json.loads(report.read_text())
    assert payload["jobs"] == 2
    assert payload["entries"] == 3
    assert payload["detected"] == 3
    assert payload["failures"] == []

    # The written config must defend the workload it was merged for.
    assert main(["defend", "heartbleed",
                 "-c", str(out_dir / "heartbleed.conf"),
                 "--input", "attack"]) == 0
    assert "BLOCKED" in capsys.readouterr().out


def test_diagnose_parallel_configs_match_serial(tmp_path, capsys):
    corpus = _write_corpus(tmp_path / "corpus", [
        {"workload": "heartbleed", "repeat": 2},
        {"workload": "wavpack"},
    ])
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    assert main(["diagnose", "--corpus", str(corpus),
                 "-o", str(serial_dir)]) == 0
    assert main(["diagnose", "--corpus", str(corpus), "--jobs", "2",
                 "-o", str(parallel_dir)]) == 0
    capsys.readouterr()
    for conf in sorted(serial_dir.iterdir()):
        assert (parallel_dir / conf.name).read_text() == conf.read_text()


def test_diagnose_benign_only_corpus_is_clean(tmp_path, capsys):
    corpus = _write_corpus(tmp_path / "corpus", [
        {"workload": "heartbleed", "input": "benign"},
    ])
    assert main(["diagnose", "--corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_diagnose_negative_jobs_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["diagnose", "--jobs", "-1"])
    assert excinfo.value.code == 2


def test_diagnose_missing_corpus_dir_is_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["diagnose", "--corpus", str(tmp_path / "missing")])
    assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# repro layout — static heap-layout analysis (exit 0/1/2)
# ---------------------------------------------------------------------------


def test_layout_findings_exit_one(capsys):
    assert main(["layout", "heartbleed"]) == 1
    out = capsys.readouterr().out
    assert "adjacent pair(s)" in out
    assert "=>" in out  # at least one forward edge rendered


def test_layout_clean_workload_exit_zero(capsys):
    # A pure uninit-read case has no out-of-bounds access, hence no
    # adjacency findings.
    assert main(["layout", "samate-17"]) == 0
    out = capsys.readouterr().out
    assert "0 adjacent pair(s)" in out


def test_layout_unknown_workload_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["layout", "no-such-workload"])
    assert excinfo.value.code == 2


def test_layout_verbose_prints_sites_and_plans(capsys):
    assert main(["layout", "tiff", "-v"]) == 1
    out = capsys.readouterr().out
    assert "site " in out
    assert "plan [" in out


def test_layout_json_artifact_is_deterministic(tmp_path, capsys):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(["layout", "heartbleed", "tiff",
                 "--json", str(first)]) == 1
    assert main(["layout", "heartbleed", "tiff",
                 "--json", str(second)]) == 1
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    payload = json.loads(first.read_text())
    assert [w["program"] for w in payload["workloads"]] \
        == ["heartbleed", "tiff-4.0.8"]
    assert all(w["pairs"] for w in payload["workloads"])
