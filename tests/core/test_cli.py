"""Command-line interface."""

import pytest

from repro.cli import WORKLOADS, main


def test_list_names_all_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("heartbleed", "bc", "optipng", "samate-01", "samate-23"):
        assert name in out


def test_registry_covers_cve_samate_and_extensions():
    assert len(WORKLOADS) == 7 + 23 + 1  # Table II + SAMATE + EternalBlue


def test_attack_reports_success(capsys):
    assert main(["attack", "heartbleed"]) == 0
    out = capsys.readouterr().out
    assert "attack succeeded: True" in out


def test_attack_benign_input(capsys):
    assert main(["attack", "heartbleed", "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_unknown_workload_exits():
    with pytest.raises(SystemExit):
        main(["attack", "nonexistent"])


def test_full_cycle_via_cli(tmp_path, capsys):
    config = tmp_path / "patches.conf"
    assert main(["analyze", "heartbleed", "-o", str(config)]) == 0
    assert config.exists()
    capsys.readouterr()

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "attack"]) == 0
    out = capsys.readouterr().out
    assert "BLOCKED" in out

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_analyze_benign_like_workload_detects_nothing(tmp_path, capsys):
    # analyze always replays the attack input, which must detect; use a
    # defended run with no config instead to check the empty-table path.
    assert main(["defend", "heartbleed", "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "patches loaded: 0" in out


def test_explain_via_cli(tmp_path, capsys):
    config = tmp_path / "patches.conf"
    main(["analyze", "heartbleed", "-o", str(config)])
    capsys.readouterr()
    assert main(["explain", "heartbleed", "-c", str(config)]) == 0
    out = capsys.readouterr().out
    assert "via profiled" in out
    assert "buffer_from_request" in out


def test_encode_statistics(capsys):
    assert main(["encode", "bc"]) == 0
    out = capsys.readouterr().out
    assert "incremental" in out
    assert "fcs" in out


def test_strategy_flag(capsys):
    assert main(["attack", "bc", "--strategy", "slim"]) == 0


def test_lint_all_workloads(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "linted 31 workload(s); 0 with errors" in out
    assert "lint heartbleed: OK" in out


def test_lint_single_workload_verbose(capsys):
    assert main(["lint", "heartbleed", "-v"]) == 0
    out = capsys.readouterr().out
    assert "linted 1 workload(s)" in out


def test_static_analyze_writes_deployable_config(tmp_path, capsys):
    config = tmp_path / "static.conf"
    assert main(["analyze", "heartbleed", "--static",
                 "-o", str(config)]) == 0
    out = capsys.readouterr().out
    assert "static patches heartbleed" in out
    assert config.exists()

    # The statically generated config must defeat the attack online.
    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "attack"]) == 0
    out = capsys.readouterr().out
    assert "BLOCKED" in out

    assert main(["defend", "heartbleed", "-c", str(config),
                 "--input", "benign"]) == 0
    out = capsys.readouterr().out
    assert "benign works: True" in out


def test_verify_encoding_single_workload(capsys):
    assert main(["verify-encoding", "heartbleed"]) == 0
    out = capsys.readouterr().out
    assert "combo(s) certified" in out
    assert "0 uncertified" in out


def test_verify_encoding_writes_json_artifact(tmp_path, capsys):
    import json

    path = tmp_path / "certs.json"
    assert main(["verify-encoding", "heartbleed", "bc",
                 "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["combos"] == len(payload["certificates"])
    assert payload["summary"]["certified"] == payload["summary"]["combos"]


def test_verify_encoding_scheme_strategy_filters(capsys):
    assert main(["verify-encoding", "heartbleed", "--scheme", "pcce",
                 "--strategy", "slim", "-v"]) == 0
    out = capsys.readouterr().out
    assert "pcce/slim" in out
    assert "CERTIFIED" in out


def test_lint_with_encoding_verification(capsys):
    assert main(["lint", "heartbleed", "--encoding"]) == 0
    out = capsys.readouterr().out
    assert "0 uncertified encoding combo(s)" in out


def test_unknown_workload_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["verify-encoding", "nonexistent"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err
