"""Documentation hygiene: every public surface is documented.

A release-quality library documents every module, class and public
function.  This meta-test walks the package and fails on any gap, so
documentation debt cannot accumulate silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        names.append(info.name)
    return names


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module_name} lacks a module docstring"


def _documented(obj) -> bool:
    return bool(getattr(obj, "__doc__", None)
                and obj.__doc__.strip())


def _doc_inherited(cls, member_name) -> bool:
    """True when a base class documents the same member (the override
    inherits that contract — standard Sphinx/`inspect.getdoc` view)."""
    for base in cls.__mro__[1:]:
        base_member = base.__dict__.get(member_name)
        if base_member is None:
            continue
        target = base_member.fget if isinstance(base_member, property) \
            else base_member
        if _documented(target):
            return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not _documented(obj):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) \
                    else member
                if target is None:
                    continue
                if _documented(target):
                    continue
                if _doc_inherited(obj, member_name):
                    continue
                undocumented.append(f"{name}.{member_name}")
    assert not undocumented, \
        f"{module_name}: undocumented public items: {undocumented}"


def test_key_documents_exist():
    from pathlib import Path
    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                "CONTRIBUTING.md", "docs/TUTORIAL.md",
                "docs/TESTING.md"):
        path = root / doc
        assert path.exists(), f"missing {doc}"
        assert len(path.read_text()) > 500, f"{doc} is a stub"
