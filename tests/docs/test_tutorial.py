"""docs/TUTORIAL.md conformance: the tutorial's program and every claim
it makes must actually work as written."""

import pytest

from repro import HeapTherapy
from repro.allocator import LibcAllocator, SegregatedAllocator
from repro.core import AllocationProfile, explain_patch
from repro.patch import config as patch_config
from repro.program import CallGraph, Process
from repro.workloads.vulnerable.base import RunOutcome, VulnerableProgram

INDEX_MAGIC = 0x1D0


class LogRotator(VulnerableProgram):
    """Verbatim from docs/TUTORIAL.md §1."""

    name = "log-rotator"
    vulnerability = "Overflow"
    reference = "tutorial"

    def build_graph(self):
        g = CallGraph()
        g.add_call_site("main", "rotate")
        g.add_call_site("rotate", "malloc", "line_buf")
        g.add_call_site("main", "malloc", "index")
        g.add_call_site("main", "flush")
        g.add_call_site("flush", "format_lines")
        return g

    @staticmethod
    def attack_input():
        return {"declared": 2, "lines": [b"x" * 40] * 6}

    @staticmethod
    def benign_input():
        return {"declared": 3, "lines": [b"y" * 40] * 3}

    def main(self, p, log):
        buf = p.call("rotate", self._rotate, log)
        index = p.malloc(16, site="index")
        p.write_int(index, INDEX_MAGIC)
        p.call("flush", self._flush, log, buf)
        magic = p.read_int(index).to_int()
        return RunOutcome(facts={"index_magic": magic})

    def _rotate(self, p, log):
        return p.malloc(log["declared"] * 40, site="line_buf")

    def _flush(self, p, log, buf):
        p.call("format_lines", self._format, log, buf)

    def _format(self, p, log, buf):
        for i, line in enumerate(log["lines"]):
            p.write(buf + i * 40, line)

    def attack_succeeded(self, outcome):
        return outcome is not None and \
            outcome.facts["index_magic"] != INDEX_MAGIC


@pytest.fixture(scope="module")
def prog():
    return LogRotator()


@pytest.fixture(scope="module")
def system(prog):
    return HeapTherapy(prog)


@pytest.fixture(scope="module")
def gen(system, prog):
    return system.generate_patches(prog.attack_input())


def test_step2_break_it(system, prog):
    native = system.run_native(prog.attack_input())
    assert prog.attack_succeeded(native.result)


def test_step3_patch_it(gen, tmp_path_factory):
    assert gen.detected
    assert "patch candidate" in gen.report.render()
    path = tmp_path_factory.mktemp("tutorial") / "log_rotator.conf"
    patch_config.save(gen.patches, path)
    assert "fun=malloc" in path.read_text()


def test_step4_deploy_and_verify(system, prog, gen):
    run = system.run_defended(gen.patches, prog.attack_input())
    assert not prog.attack_succeeded(None if run.blocked else run.result)
    benign = system.run_defended(gen.patches, prog.benign_input())
    assert benign.result.facts["index_magic"] == INDEX_MAGIC


def test_step3_flags_both_touched_buffers(gen):
    """The overflowed buffer and the clobbered victim both get patches."""
    assert len(gen.patches) == 2


def test_step5_audit(system, prog, gen):
    renders = []
    for patch in gen.patches:
        explanation = explain_patch(prog, system.instrumented.codec,
                                    patch,
                                    profile_args=(prog.attack_input(),))
        assert explanation.resolved
        renders.append(explanation.render())
    assert any("rotate" in text for text in renders), renders

    profile = AllocationProfile()
    process = Process(prog.graph, heap=LibcAllocator(),
                      context_source=system.instrumented.runtime())
    process.run(prog, prog.benign_input())
    profile.ingest(process)
    for patch in gen.patches:
        cost = profile.estimated_patch_cost("malloc", patch.ccid, 6000)
        assert cost == 6000  # one allocation per context per run


def test_step6_other_allocator(prog):
    system = HeapTherapy(prog, allocator_factory=SegregatedAllocator)
    generation = system.generate_patches(prog.attack_input())
    run = system.run_defended(generation.patches, prog.attack_input())
    assert not prog.attack_succeeded(None if run.blocked else run.result)
