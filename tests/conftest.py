"""Shared fixtures, helpers, and Hypothesis profiles for the suite."""

from __future__ import annotations

import os

import pytest

from repro.allocator.libc import LibcAllocator
from repro.machine.memory import VirtualMemory

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is optional
    settings = None

if settings is not None:
    # ``ci``: reproducible and thorough — a fixed derandomized search,
    # no deadline (shared CI runners have noisy clocks), more examples.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=200,
        suppress_health_check=[HealthCheck.too_slow],
    )
    # ``dev``: fast feedback for local edit-test loops.
    settings.register_profile("dev", max_examples=25, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def memory() -> VirtualMemory:
    """A fresh simulated address space."""
    return VirtualMemory()


@pytest.fixture
def allocator() -> LibcAllocator:
    """A fresh allocator over a fresh address space."""
    return LibcAllocator()
