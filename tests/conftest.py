"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.allocator.libc import LibcAllocator
from repro.machine.memory import VirtualMemory


@pytest.fixture
def memory() -> VirtualMemory:
    """A fresh simulated address space."""
    return VirtualMemory()


@pytest.fixture
def allocator() -> LibcAllocator:
    """A fresh allocator over a fresh address space."""
    return LibcAllocator()
