"""ASCII heap maps."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.tools import HeapMap, render_heap
from repro.vulntypes import VulnType


class Fixed(ContextSource):
    def __init__(self, ccid):
        self.ccid = ccid

    def current_ccid(self):
        return self.ccid


def test_plain_allocator_map_lists_every_chunk():
    allocator = LibcAllocator()
    pointers = [allocator.malloc(s) for s in (64, 200, 32)]
    allocator.free(pointers[1])
    text = render_heap(allocator)
    assert text.count("USED") == 2
    assert text.count("free") >= 1
    assert "top at" in text


def test_defended_map_annotates_metadata():
    defended = DefendedAllocator(LibcAllocator(), PatchTable.empty(),
                                 context_source=Fixed(0))
    defended.malloc(100)
    text = render_heap(defended.underlying, defended=defended)
    assert "[defended]" in text
    assert "meta+user(100)" in text


def test_guarded_buffer_shows_guard_state():
    table = PatchTable([HeapPatch("malloc", 7, VulnType.OVERFLOW)])
    defended = DefendedAllocator(LibcAllocator(), table,
                                 context_source=Fixed(7))
    defended.malloc(64)
    text = render_heap(defended.underlying, defended=defended)
    assert "GUARD@" in text
    assert "(sealed)" in text


def test_quarantined_region_flagged():
    table = PatchTable([HeapPatch("malloc", 9,
                                  VulnType.USE_AFTER_FREE)])
    defended = DefendedAllocator(LibcAllocator(), table,
                                 context_source=Fixed(9))
    address = defended.malloc(64)
    defended.free(address)
    text = render_heap(defended.underlying, defended=defended)
    assert "[quarantine]" in text
    assert "deferred free" in text
    assert "1 block(s)" in text


def test_map_rows_tile_the_heap():
    allocator = LibcAllocator()
    for size in (50, 500, 5000):
        allocator.malloc(size)
    heap_map = HeapMap(allocator)
    cursor = allocator.heap_start
    for row in heap_map.rows:
        assert row.base == cursor
        cursor += row.size
    assert cursor == allocator.top
