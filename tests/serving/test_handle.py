"""Versioned patch-table handle: copy-on-write swap, lock-free reads.

The handle's contract (see :mod:`repro.serving.handle`) is that a
reader taking :attr:`PatchTableHandle.entry` can never observe a
half-swapped state: the entry is an immutable triple published with a
single reference store.  The hammer test drives concurrent readers
against a swapping writer and checks every observed entry is internally
consistent and resolvable by version.
"""

import threading

import pytest

from repro.defense.patch_table import PatchTable
from repro.patch import config as patch_config
from repro.patch.model import HeapPatch
from repro.serving.handle import PatchTableHandle, SwapError, TableVersion
from repro.vulntypes import VulnType


def _table(ccids):
    return PatchTable([HeapPatch("malloc", ccid, VulnType.OVERFLOW)
                       for ccid in ccids])


class _Unfrozen(PatchTable):
    """A table whose constructor does not freeze (invalid publication)."""

    def freeze(self):
        pass


class TestVersioning:
    def test_initial_entry_is_version_zero(self):
        handle = PatchTableHandle()
        assert handle.version == 0
        assert len(handle.table) == 0
        assert handle.entry.config_text == PatchTable.empty().serialize()

    def test_swap_bumps_version_and_returns_entry(self):
        handle = PatchTableHandle()
        entry = handle.swap(_table([0x10]))
        assert isinstance(entry, TableVersion)
        assert entry.version == 1
        assert handle.entry is entry
        assert handle.table.lookup("malloc", 0x10) is not None

    def test_config_text_is_canonical_serialization(self):
        table = _table([0x10, 0x20])
        handle = PatchTableHandle(table)
        assert handle.entry.config_text == table.serialize()
        # The text round-trips to an equivalent table.
        patches = patch_config.loads(handle.entry.config_text)
        assert {p.ccid for p in patches} == {0x10, 0x20}

    def test_history_and_resolve(self):
        handle = PatchTableHandle()
        first = handle.swap(_table([1]))
        second = handle.swap(_table([2]))
        assert [e.version for e in handle.history] == [0, 1, 2]
        assert handle.resolve(1) is first
        assert handle.resolve(2) is second
        with pytest.raises(KeyError):
            handle.resolve(3)

    def test_old_entries_stay_valid_after_swap(self):
        handle = PatchTableHandle(_table([7]))
        held = handle.entry
        handle.swap(_table([8]))
        # The reader still holding the old entry sees it unchanged.
        assert held.version == 0
        assert held.table.lookup("malloc", 7) is not None
        assert held.table.lookup("malloc", 8) is None

    def test_unfrozen_table_rejected(self):
        with pytest.raises(SwapError):
            PatchTableHandle(_Unfrozen())
        handle = PatchTableHandle()
        with pytest.raises(SwapError):
            handle.swap(_Unfrozen())
        # A failed swap publishes nothing.
        assert handle.version == 0
        assert len(handle.history) == 1


class TestNeverTorn:
    def test_concurrent_readers_never_observe_torn_entry(self):
        """Readers racing a swapping writer always see a consistent
        (version, table, text) triple that resolve() confirms."""
        handle = PatchTableHandle()
        versions = [_table([v]) for v in range(1, 33)]
        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                entry = handle.entry
                # The triple must be mutually consistent: the text is
                # the table's own serialization, and the version
                # resolves to this exact entry.
                if entry.config_text != entry.table.serialize():
                    failures.append("text/table mismatch")
                if handle.resolve(entry.version) is not entry:
                    failures.append("resolve mismatch")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for table in versions:
            handle.swap(table)
        stop.set()
        for thread in threads:
            thread.join()
        assert failures == []
        assert handle.version == len(versions)
