"""Serving-engine correctness: worker equivalence, swaps, validation.

The engine's central promise (see :mod:`repro.serving.engine`) is that
its report is a pure function of the admitted plan: a ``workers=N`` run
is byte-identical to the ``workers=1`` sequential oracle modulo the
``workers`` field.  These tests hold it to that across services, attack
configurations and mid-run copy-on-write table swaps, and check the
per-worker calling-context encoding agrees with the static codec.
"""

from dataclasses import replace

import pytest

from repro.ccencoding import Strategy
from repro.core.instrument import instrument
from repro.patch import config as patch_config
from repro.serving.engine import (
    ServingEngine,
    ServingError,
    ServingOptions,
    serve,
)
from repro.serving.services import nginx_body_patch, serving_registry
from repro.workloads.services.nginx import NginxServer

#: Small but multi-batch run shape: 120 benign requests in batches of
#: 30; ``attack_every=40`` plants 3 leak attempts (one in batch 1, one
#: in batch 2, one in the final partial batch).
REQUESTS = 120
BATCH = 30
ATTACK_EVERY = 40


@pytest.fixture(scope="module")
def nginx():
    """One instrumented nginx program shared by every engine here."""
    program = NginxServer()
    codec = instrument(program,
                       strategy=Strategy.from_name("incremental")).codec
    return program, codec


@pytest.fixture(scope="module")
def patch_text(nginx):
    program, codec = nginx
    return patch_config.dumps([nginx_body_patch(program, codec)])


def run(options, nginx=None):
    kwargs = {}
    if nginx is not None:
        kwargs = {"program": nginx[0], "codec": nginx[1]}
    return serve(options, **kwargs)


def reports_identical_modulo_workers(options, nginx, counts=(1, 2)):
    reports = []
    for workers in counts:
        result = run(replace(options, workers=workers), nginx)
        report = dict(result.report)
        assert report.pop("workers") == workers
        reports.append(report)
    for other in reports[1:]:
        assert other == reports[0]
    return reports[0]


class TestWorkerEquivalence:
    def test_nginx_plain_run(self, nginx):
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH)
        report = reports_identical_modulo_workers(options, nginx, (1, 2, 3))
        assert report["outcomes"] == {"ok": REQUESTS}
        assert report["served"] == REQUESTS
        assert report["batches"] == 4

    def test_nginx_attack_unpatched_leaks(self, nginx):
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH,
                                 attack_every=ATTACK_EVERY)
        report = reports_identical_modulo_workers(options, nginx)
        assert report["outcomes"] == {"leak": 3, "ok": REQUESTS}

    def test_nginx_attack_patched_blocks(self, nginx, patch_text):
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH,
                                 attack_every=ATTACK_EVERY,
                                 patches_text=patch_text)
        report = reports_identical_modulo_workers(options, nginx)
        assert report["outcomes"] == {"blocked": 3, "ok": REQUESTS}
        # Served work and bytes on the wire match the oracle too (the
        # blocked attacks still count their aborted request).
        assert report["served"] == REQUESTS + 3
        assert report["bytes_sent"] > 0

    def test_mysql_run(self):
        options = ServingOptions(service="mysql", requests=90,
                                 batch_size=30)
        report = reports_identical_modulo_workers(options, None)
        assert set(report["outcomes"]) == {"ok"}

    def test_native_run_leaks_without_defense(self, nginx):
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH, defended=False,
                                 attack_every=ATTACK_EVERY)
        report = reports_identical_modulo_workers(options, nginx)
        assert report["outcomes"]["leak"] == 3

    def test_libc_allocator_equivalent_outcomes(self, nginx, patch_text):
        """Allocator independence: the defense blocks on libc too, and
        the worker-equivalence property is allocator-agnostic."""
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH, allocator="libc",
                                 attack_every=ATTACK_EVERY,
                                 patches_text=patch_text)
        report = reports_identical_modulo_workers(options, nginx)
        assert report["outcomes"] == {"blocked": 3, "ok": REQUESTS}


class TestCallingContextEquivalence:
    def test_profile_contains_statically_encoded_ccid(self, nginx):
        """The runtime per-worker V register reaches the same CCID the
        codec computes statically for the response-body allocation —
        and every worker count reports the identical profile."""
        program, codec = nginx
        expected = nginx_body_patch(program, codec).ccid
        options = ServingOptions(service="nginx", requests=60,
                                 batch_size=20)
        profiles = []
        for workers in (1, 2):
            result = run(replace(options, workers=workers), nginx)
            profiles.append(result.report["profile"])
        assert profiles[0] == profiles[1]
        ccids = {(fun, ccid) for fun, ccid, _ in profiles[0]}
        assert ("malloc", expected) in ccids


class TestCopyOnWriteSwap:
    def test_swap_lands_at_batch_boundary(self, nginx, patch_text):
        """A table swap scheduled at batch 2 leaves earlier attacks
        leaking and later ones blocked — and the stamped versions show
        exactly one boundary, never a mixed batch."""
        options = ServingOptions(service="nginx", requests=REQUESTS,
                                 batch_size=BATCH,
                                 attack_every=ATTACK_EVERY,
                                 swap_schedule=((2, patch_text),))
        report = reports_identical_modulo_workers(options, nginx, (1, 2, 4))
        assert report["table_versions"] == [0, 0, 1, 1, 1]
        # Attacks in batches 0-1 ran under the empty table (leak); the
        # ones at and after the swap boundary hit the guard (blocked).
        assert report["outcomes"]["leak"] == 1
        assert report["outcomes"]["blocked"] == 2
        assert report["outcomes"]["ok"] == REQUESTS

    def test_swap_versions_resolvable_on_engine_handle(self, nginx,
                                                       patch_text):
        options = ServingOptions(service="nginx", requests=60,
                                 batch_size=20,
                                 swap_schedule=((1, patch_text),))
        with ServingEngine(options, program=nginx[0],
                           codec=nginx[1]) as engine:
            result = engine.serve()
            assert result.report["table_versions"] == [0, 1, 1]
            assert [e.version for e in engine.handle.history] == [0, 1]
            assert engine.handle.resolve(1).config_text \
                == engine.handle.entry.config_text


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ServingError, match="workers"):
            ServingEngine(ServingOptions(workers=0))

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ServingError, match="batch_size"):
            ServingEngine(ServingOptions(batch_size=0))

    def test_unknown_service_rejected(self):
        with pytest.raises(ServingError, match="unknown service"):
            ServingEngine(ServingOptions(service="apache"))

    def test_swap_beyond_run_rejected(self, nginx, patch_text):
        options = ServingOptions(service="nginx", requests=40,
                                 batch_size=20,
                                 swap_schedule=((9, patch_text),))
        with pytest.raises(ServingError, match="beyond"):
            ServingEngine(options, program=nginx[0], codec=nginx[1])

    def test_attack_on_service_without_attack_path(self):
        with pytest.raises(ServingError, match="no attack path"):
            ServingEngine(ServingOptions(service="mysql",
                                         attack_every=10))

    def test_registry_lists_both_services(self):
        assert set(serving_registry()) == {"nginx", "mysql"}
