"""``repro serve`` CLI: exit codes and report byte-identity.

Exit-code contract: 0 when the run saw no leaks, 1 when any request
leaked (undefended or unpatched vulnerability), 2 on usage errors —
matching argparse's own convention.
"""

import json

import pytest

from repro.ccencoding import Strategy
from repro.core.instrument import instrument
from repro.patch import config as patch_config
from repro.cli import main
from repro.serving.services import nginx_body_patch
from repro.workloads.services.nginx import NginxServer

#: Small-but-multi-batch CLI run shape.
ARGS = ["--requests", "60", "--batch-size", "20"]


@pytest.fixture(scope="module")
def patch_file(tmp_path_factory):
    program = NginxServer()
    codec = instrument(program,
                       strategy=Strategy.from_name("incremental")).codec
    text = patch_config.dumps([nginx_body_patch(program, codec)])
    path = tmp_path_factory.mktemp("patches") / "nginx.patches"
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["serve"] + ARGS) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outcomes"] == {"ok": 60}

    def test_unpatched_attack_exits_one(self, capsys):
        assert main(["serve"] + ARGS + ["--attack-every", "25"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["outcomes"]["leak"] == 2

    def test_patched_attack_exits_zero(self, capsys, patch_file):
        assert main(["serve"] + ARGS + ["--attack-every", "25",
                                        "--patches", patch_file]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outcomes"]["blocked"] == 2
        assert "leak" not in report["outcomes"]

    def test_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--batch-size", "0"])
        assert excinfo.value.code == 2

    def test_unreadable_patches_file_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--patches", str(tmp_path / "missing.cfg")])
        assert excinfo.value.code == 2

    def test_attack_on_mysql_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--service", "mysql", "--attack-every", "10"])
        assert excinfo.value.code == 2


class TestReportOutput:
    def test_json_flag_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["serve"] + ARGS + ["--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"].startswith("repro/serving-report/")
        # The report itself went to the file, not stdout; stderr keeps
        # the wall-clock telemetry line.
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "req/s wall" in captured.err

    def test_reports_byte_identical_modulo_workers(self, tmp_path):
        texts = []
        for workers in ("1", "2"):
            out = tmp_path / f"report-{workers}.json"
            assert main(["serve"] + ARGS + ["--workers", workers,
                                            "--json", str(out)]) == 0
            texts.append(out.read_text())
        docs = [json.loads(text) for text in texts]
        assert [doc.pop("workers") for doc in docs] == [1, 2]
        assert docs[0] == docs[1]
        # Byte-level: the serialized reports differ only on the workers
        # line.
        diff = [(a, b) for a, b in zip(texts[0].splitlines(),
                                       texts[1].splitlines()) if a != b]
        assert diff == [('  "workers": 1', '  "workers": 2')]
