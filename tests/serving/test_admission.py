"""Bounded admission: the ``max_admitted`` window and its regression.

The knob must bound the admitted-batch high-water mark (the memory
regression this file pins) while leaving every observable outcome
byte-identical to eager admission — the lazy stream replays the exact
deterministic token sequence, attack injection included.
"""

import json
import pickle
from dataclasses import replace

import pytest

from repro.serving.engine import ServingError, ServingOptions, serve
from repro.serving.stream import LazyRequestStream

OPTIONS = ServingOptions(service="nginx", requests=120, batch_size=10,
                         attack_every=9)


def canonical(result):
    report = dict(result.report)
    report.pop("workers")
    report.pop("max_admitted")
    return json.dumps(report, sort_keys=True)


class TestBoundedAdmission:
    def test_peak_admitted_never_exceeds_the_knob(self):
        """The memory regression: a 12-batch run under ``max_admitted=2``
        must never hold more than 2 admitted batches at once."""
        result = serve(replace(OPTIONS, max_admitted=2))
        assert result.peak_admitted is not None
        assert 1 <= result.peak_admitted <= 2

    def test_window_of_one_still_serves_everything(self):
        result = serve(replace(OPTIONS, max_admitted=1))
        assert result.peak_admitted == 1
        assert result.report["served"] >= OPTIONS.requests

    def test_outcomes_identical_to_eager_admission(self):
        eager = serve(OPTIONS)
        assert eager.peak_admitted is None
        for window in (1, 2, 5):
            bounded = serve(replace(OPTIONS, max_admitted=window))
            assert canonical(bounded) == canonical(eager)

    def test_bounded_admission_across_workers(self):
        oracle = serve(replace(OPTIONS, max_admitted=2))
        parallel = serve(replace(OPTIONS, max_admitted=2, workers=2))
        assert canonical(parallel) == canonical(oracle)

    def test_mysql_stream_is_boundable_too(self):
        options = ServingOptions(service="mysql", requests=90,
                                 batch_size=30)
        eager = serve(options)
        bounded = serve(replace(options, max_admitted=1))
        assert canonical(bounded) == canonical(eager)

    def test_negative_knob_rejected(self):
        with pytest.raises(ServingError):
            serve(replace(OPTIONS, max_admitted=-1))

    def test_report_records_the_knob(self):
        result = serve(replace(OPTIONS, max_admitted=3))
        assert result.report["max_admitted"] == 3


class TestLazyStream:
    def test_tokens_match_eager_injection(self):
        from repro.serving.services import inject_attacks, serving_registry

        service = serving_registry()["nginx"]
        eager = inject_attacks(service.stream(40), service.attack_token, 7)
        stream = LazyRequestStream("nginx", 40, 6, attack_every=7,
                                   max_admitted=2)
        lazy = [token for index in range(stream.n_batches)
                for token in stream.batch(index)]
        assert lazy == eager
        assert len(stream) == len(eager)

    def test_backward_access_replays_deterministically(self):
        stream = LazyRequestStream("nginx", 40, 6, attack_every=7,
                                   max_admitted=1)
        forward = [stream.batch(index) for index in range(stream.n_batches)]
        assert stream.batch(0) == forward[0]  # evicted -> replay
        assert stream.restarts == 1
        assert stream.batch(3) == forward[3]

    def test_pickle_roundtrip_drops_window_state(self):
        stream = LazyRequestStream("nginx", 40, 6, attack_every=7,
                                   max_admitted=2)
        stream.batch(2)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.peak_admitted == 0
        assert clone.batch(2) == stream.batch(2)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LazyRequestStream("nginx", 10, 5, max_admitted=0)
