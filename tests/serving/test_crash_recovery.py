"""Worker crash recovery: a SIGKILLed worker never changes the report.

Fault injection is env-gated inside the pool worker
(:func:`repro.serving.engine._maybe_inject_crash`): exactly one worker
SIGKILLs itself before serving a targeted batch (an ``O_EXCL`` flag
file makes the crash once-only), which breaks the whole
``ProcessPoolExecutor``.  The engine must reap the broken pool, refork,
resubmit only the unfinished batches, and still produce a report
byte-identical to the undisturbed ``workers=1`` oracle — batch
outcomes are pure functions of (batch, table version), so reruns are
exact.
"""

import json
from dataclasses import replace

import pytest

from repro.serving.engine import (
    MAX_POOL_REBUILDS,
    ServingError,
    ServingOptions,
    serve,
)

#: Multi-batch shape with attacks on both sides of the crashed batch.
OPTIONS = ServingOptions(service="nginx", requests=80, batch_size=10,
                         workers=2, attack_every=9)


def canonical(result):
    report = dict(result.report)
    report.pop("workers")
    return json.dumps(report, sort_keys=True)


@pytest.fixture()
def crash_env(monkeypatch, tmp_path):
    """Arm the fault injection for batch 3; yields the flag path."""
    flag = tmp_path / "crash-once"
    monkeypatch.setenv("REPRO_SERVE_CRASH_BATCH", "3")
    monkeypatch.setenv("REPRO_SERVE_CRASH_FLAG", str(flag))
    return flag


class TestCrashRecovery:
    def test_sigkilled_worker_matches_sequential_oracle(self, crash_env):
        oracle = serve(replace(OPTIONS, workers=1))
        crashed = serve(OPTIONS)
        assert crash_env.exists(), "fault injection never fired"
        assert canonical(crashed) == canonical(oracle)

    def test_recovery_reserves_every_batch_exactly_once(self, crash_env):
        result = serve(OPTIONS)
        assert crash_env.exists()
        indices = [batch.index for batch in result.batches]
        assert indices == list(range(len(indices)))

    def test_crash_with_bounded_admission(self, crash_env):
        """Recovery resubmission may walk the lazy stream backwards;
        the windowed replay must still serve identical tokens."""
        oracle = serve(replace(OPTIONS, workers=1))
        crashed = serve(replace(OPTIONS, max_admitted=2))
        assert crash_env.exists()
        report = dict(crashed.report)
        base = dict(oracle.report)
        assert report.pop("max_admitted") == 2
        assert base.pop("max_admitted") == 0
        report.pop("workers"), base.pop("workers")
        assert report == base

    def test_crash_loop_fails_after_bounded_rebuilds(self, monkeypatch):
        """With no once-only flag, the targeted batch crashes on every
        attempt; the engine must give up after MAX_POOL_REBUILDS
        rebuilds with a ServingError instead of spinning forever."""
        monkeypatch.setenv("REPRO_SERVE_CRASH_BATCH", "0")
        monkeypatch.delenv("REPRO_SERVE_CRASH_FLAG", raising=False)
        with pytest.raises(ServingError) as excinfo:
            serve(OPTIONS)
        assert "giving up" in str(excinfo.value)
        assert str(MAX_POOL_REBUILDS) in str(excinfo.value)
