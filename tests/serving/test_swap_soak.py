"""Swap-while-serving soak: repeated hot-swaps under sustained load.

Every admitted batch must resolve to exactly one published
``TableVersion`` (no batch ever straddles a swap), versions are
monotone in admission order, and outcomes are consistent per version:
attacks admitted under a patched table fault into the guard page, while
attacks under an unpatched table leak — across multiple swaps in one
run, and byte-identically for any worker count.
"""

import json
from dataclasses import replace

import pytest

from repro.ccencoding import Strategy
from repro.core.instrument import instrument
from repro.patch import config as patch_config
from repro.patch.model import HeapPatch
from repro.serving.engine import ServingEngine, ServingOptions, serve
from repro.serving.services import nginx_body_patch
from repro.vulntypes import VulnType
from repro.workloads.services.nginx import NginxServer

#: Sustained-load shape: 180 benign requests in batches of 10 with an
#: attack after every 9 benign — two dozen batches, attacks throughout.
REQUESTS = 180
BATCH = 10
ATTACK_EVERY = 9


@pytest.fixture(scope="module")
def soak_schedule():
    """Three swaps mid-run: patch → widened patch → widened again.

    Each swap's table strictly contains the previous (the registry's
    grow-only lattice), so every version has a distinct canonical text
    and the handle publishes a strictly increasing version chain.
    """
    program = NginxServer()
    codec = instrument(program,
                       strategy=Strategy.from_name("incremental")).codec
    base = nginx_body_patch(program, codec)
    widened = HeapPatch(base.fun, base.ccid,
                        base.vuln | VulnType.USE_AFTER_FREE)
    extra = HeapPatch(base.fun, base.ccid,
                      widened.vuln | VulnType.UNINIT_READ)
    return (
        (5, patch_config.dumps([base])),
        (11, patch_config.dumps([widened])),
        (17, patch_config.dumps([extra])),
    )


@pytest.fixture(scope="module")
def soak(soak_schedule):
    options = ServingOptions(service="nginx", requests=REQUESTS,
                             batch_size=BATCH,
                             attack_every=ATTACK_EVERY,
                             swap_schedule=soak_schedule)
    return serve(options), options


class TestSoak:
    def test_every_batch_has_exactly_one_published_version(self, soak):
        result, options = soak
        engine = ServingEngine(options)
        try:
            published = {version for version, _ in engine.plan.tables}
        finally:
            engine.close()
        versions = [batch.table_version for batch in result.batches]
        assert set(versions) <= published
        assert len(set(versions)) == 1 + len(options.swap_schedule)

    def test_versions_monotone_in_admission_order(self, soak):
        result, _ = soak
        versions = [batch.table_version for batch in result.batches]
        assert versions == sorted(versions)

    def test_swaps_land_exactly_at_scheduled_batches(self, soak):
        result, options = soak
        versions = [batch.table_version for batch in result.batches]
        boundaries = [index for index in range(1, len(versions))
                      if versions[index] != versions[index - 1]]
        assert boundaries == [index for index, _
                              in options.swap_schedule]

    def test_outcomes_consistent_per_version(self, soak):
        """Unpatched batches leak; every patched version blocks —
        the patch's OVERFLOW bit survives each widening swap."""
        result, _ = soak
        first_patched = min(batch.table_version
                            for batch in result.batches
                            if batch.table_version > 0)
        for batch in result.batches:
            statuses = {status for status, _ in batch.outcomes}
            if batch.table_version == 0:
                assert "blocked" not in statuses
            else:
                assert "leak" not in statuses
        blocked = sum(1 for batch in result.batches
                      for status, _ in batch.outcomes
                      if status == "blocked"
                      and batch.table_version >= first_patched)
        leaked = sum(1 for batch in result.batches
                     for status, _ in batch.outcomes
                     if status == "leak")
        assert leaked > 0 and blocked > 0
        assert leaked + blocked == REQUESTS // ATTACK_EVERY

    def test_soak_byte_identical_across_workers(self, soak):
        result, options = soak
        reports = {}
        for workers in (1, 3):
            run = serve(replace(options, workers=workers))
            report = dict(run.report)
            assert report.pop("workers") == workers
            reports[workers] = json.dumps(report, sort_keys=True)
        baseline = dict(result.report)
        baseline.pop("workers")
        assert reports[1] == reports[3] == json.dumps(baseline,
                                                      sort_keys=True)

    def test_soak_with_bounded_admission(self, soak):
        """The lazy stream and the swap schedule compose: same
        outcomes, bounded window."""
        result, options = soak
        bounded = serve(replace(options, max_admitted=3))
        assert bounded.peak_admitted is not None
        assert bounded.peak_admitted <= 3
        base = dict(result.report)
        other = dict(bounded.report)
        assert base.pop("max_admitted") == 0
        assert other.pop("max_admitted") == 3
        assert other == base
