"""Shadow analyzer detections (paper Section V)."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.shadow.analyzer import RED_ZONE, ShadowAnalyzer
from repro.vulntypes import VulnType


class Harness(Program):
    """Runs an arbitrary body with a permissive call graph."""

    name = "harness"

    def __init__(self, body):
        super().__init__()
        self._body = body

    def build_graph(self):
        graph = CallGraph()
        for fun in ("malloc", "calloc", "realloc", "memalign", "free"):
            graph.add_call_site("main", fun)
        return graph

    def main(self, p):
        return self._body(p)


def analyze(body, **analyzer_kwargs):
    analyzer = ShadowAnalyzer(LibcAllocator(), **analyzer_kwargs)
    program = Harness(body)
    process = Process(program.graph, monitor=analyzer)
    result = process.run(program)
    return analyzer, result


def kinds(analyzer):
    return analyzer.report.kinds_seen()


class TestOverflowDetection:
    def test_write_into_trailing_red_zone(self):
        def body(p):
            buf = p.malloc(40)
            p.write(buf, b"x" * 41)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.OVERFLOW
        warning = analyzer.report.warnings[0]
        assert warning.access == "write"
        assert warning.buffer is not None

    def test_read_past_end(self):
        def body(p):
            buf = p.malloc(40)
            p.fill(buf, 40, 1)
            p.read(buf, 48)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.OVERFLOW

    def test_underflow_before_buffer(self):
        def body(p):
            buf = p.malloc(40)
            p.write(buf - 8, b"under")
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.OVERFLOW

    def test_in_bounds_access_is_clean(self):
        def body(p):
            buf = p.malloc(40)
            p.fill(buf, 40, 7)
            p.read(buf, 40)
            p.free(buf)
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_execution_resumes_after_warning(self):
        def body(p):
            buf = p.malloc(8)
            p.write(buf, b"y" * 16)
            return "finished"
        analyzer, result = analyze(body)
        assert result == "finished"
        assert kinds(analyzer) == VulnType.OVERFLOW


class TestUseAfterFree:
    def test_read_after_free(self):
        def body(p):
            buf = p.malloc(64)
            p.fill(buf, 64, 3)
            p.free(buf)
            p.read(buf, 8)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.USE_AFTER_FREE

    def test_write_after_free(self):
        def body(p):
            buf = p.malloc(64)
            p.free(buf)
            p.write(buf, b"stale")
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.USE_AFTER_FREE

    def test_double_free_warns(self):
        def body(p):
            buf = p.malloc(64)
            p.free(buf)
            p.free(buf)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) & VulnType.USE_AFTER_FREE

    def test_quarantine_defers_reuse(self):
        addresses = []

        def body(p):
            first = p.malloc(64)
            p.free(first)
            second = p.malloc(64)
            addresses.append((first, second))
        analyzer, _ = analyze(body)
        first, second = addresses[0]
        assert first != second  # no immediate reuse while quarantined

    def test_quota_eviction_enables_detection_window(self):
        """With a small quota, old frees are released and can be reused —
        the Section IX discussion."""
        def body(p):
            buffers = [p.malloc(1024) for _ in range(8)]
            for buf in buffers:
                p.free(buf)
        analyzer, _ = analyze(body, quarantine_quota=2048)
        assert analyzer.quarantine.evicted > 0
        assert analyzer.quarantine.held_bytes <= 2048

    def test_ccid_subspace_partitioning(self):
        """Section IX: only buffers whose CCID falls in the chosen
        subspace are deferred."""
        def body(p):
            buf = p.malloc(64)
            p.free(buf)
        analyzer0, _ = analyze(body, ccid_subspaces=(0, 1))
        assert len(analyzer0.quarantine) == 1
        # With a subspace that never matches ccid (ccid % 2 == 1 needed,
        # NullContextSource gives 0), the free is immediate.
        analyzer1, _ = analyze(body, ccid_subspaces=(1, 2))
        assert len(analyzer1.quarantine) == 0


class TestUninitializedRead:
    def test_copy_does_not_warn(self):
        """Copying uninitialized data is legal (Fig. 4 discipline)."""
        def body(p):
            buf = p.malloc(16)
            other = p.malloc(16)
            p.copy(other, buf, 16)
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_branch_on_uninit_warns(self):
        def body(p):
            buf = p.malloc(16)
            p.branch_on(p.read_int(buf))
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.UNINIT_READ

    def test_address_use_warns(self):
        def body(p):
            buf = p.malloc(16)
            p.use_as_address(p.read_int(buf))
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.UNINIT_READ

    def test_syscall_out_warns_and_attributes_origin(self):
        def body(p):
            buf = p.malloc(32)
            p.syscall_in(buf, b"half")  # initialize 4 of 32 bytes
            p.syscall_out(buf, 32)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.UNINIT_READ
        warning = analyzer.report.warnings[0]
        assert warning.buffer is not None
        assert warning.buffer.size == 32

    def test_uninit_propagates_through_copy(self):
        """Origin tracking follows the data, not the access site."""
        def body(p):
            source = p.malloc(16)
            dest = p.malloc(16)
            p.copy(dest, source, 16)
            p.syscall_out(dest, 16)
        analyzer, _ = analyze(body)
        warning = analyzer.report.warnings[0]
        assert warning.kind == VulnType.UNINIT_READ
        assert warning.buffer.serial == 0  # the *source* buffer

    def test_calloc_is_fully_valid(self):
        def body(p):
            buf = p.calloc(4, 8)
            p.branch_on(p.read_int(buf))
            p.syscall_out(buf, 32)
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_fill_validates(self):
        def body(p):
            buf = p.malloc(16)
            p.fill(buf, 16, 0xAA)
            p.syscall_out(buf, 16)
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_padding_false_positive_avoided(self):
        """Figure 4: copying a struct with uninitialized padding must not
        warn; only a *use* of the padding bits would."""
        def body(p):
            struct = p.malloc(8)        # 5 meaningful bytes + 3 padding
            p.write(struct, b"\x00\x00\x00\x00f")
            copy = p.malloc(8)
            p.copy(copy, struct, 8)      # y = *p copies all 8 bytes
            value = p.read_int(copy, 4)  # use only the initialized field
            p.branch_on(value)
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_chained_warnings_suppressed(self):
        """Checked bytes become valid; duplicates are deduplicated."""
        def body(p):
            buf = p.malloc(16)
            p.syscall_out(buf, 16)
            p.syscall_out(buf, 16)  # second leak: already validated
            p.branch_on(p.read_int(buf))
        analyzer, _ = analyze(body)
        uninit = [w for w in analyzer.report.warnings
                  if w.kind == VulnType.UNINIT_READ]
        assert len(uninit) == 1


class TestReallocRules:
    def test_kept_prefix_retains_validity(self):
        def body(p):
            buf = p.malloc(16)
            p.fill(buf, 16, 1)
            grown = p.realloc(buf, 64)
            p.syscall_out(grown, 16)  # the kept prefix: valid
        analyzer, _ = analyze(body)
        assert len(analyzer.report) == 0

    def test_grown_region_is_invalid(self):
        def body(p):
            buf = p.malloc(16)
            p.fill(buf, 16, 1)
            grown = p.realloc(buf, 64)
            p.syscall_out(grown, 64)  # includes the invalid growth
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.UNINIT_READ

    def test_old_region_quarantined_after_realloc(self):
        def body(p):
            buf = p.malloc(16)
            p.realloc(buf, 64)
            p.read(buf, 8)  # stale pointer into the old region
        analyzer, _ = analyze(body)
        assert kinds(analyzer) & VulnType.USE_AFTER_FREE

    def test_realloc_retags_ccid_record(self):
        def body(p):
            buf = p.malloc(16)
            grown = p.realloc(buf, 64)
            p.write(grown, b"z" * 65)  # overflow the realloc'd buffer
        analyzer, _ = analyze(body)
        grouped = analyzer.report.group_by_origin()
        assert any(fun == "realloc" for (fun, _), _ in grouped.items())


class TestMemalign:
    @pytest.mark.parametrize("alignment", [8, 32, 256])
    def test_aligned_buffer_red_zones(self, alignment):
        def body(p):
            buf = p.memalign(alignment, 64)
            assert buf % alignment == 0
            p.write(buf, b"x" * 65)
        analyzer, _ = analyze(body)
        assert kinds(analyzer) == VulnType.OVERFLOW


class TestMixedAttack:
    def test_heartbleed_style_mix_detected_in_one_run(self):
        """Overread + uninit read in a single resumed execution."""
        def body(p):
            buf = p.malloc(64)
            p.syscall_in(buf, b"req")
            out = p.malloc(128)
            p.copy(out, buf, 128)   # overread past buf
            p.syscall_out(out, 128)  # leak uninit bytes
        analyzer, _ = analyze(body)
        assert kinds(analyzer) & VulnType.OVERFLOW
        assert kinds(analyzer) & VulnType.UNINIT_READ
        grouped = analyzer.report.group_by_origin()
        merged = [t for t in grouped.values()
                  if (t & VulnType.OVERFLOW) and (t & VulnType.UNINIT_READ)]
        assert merged, "the same buffer must carry both bits"


class TestWildAccess:
    def test_wild_access_warns_without_buffer(self):
        def body(p):
            p.write(0x1234_5678_0000, b"wild")
        analyzer, _ = analyze(body)
        warning = analyzer.report.warnings[0]
        assert warning.buffer is None
        assert not analyzer.report.detected  # unattributable
