"""Observation equivalence of the ``_BytePlane`` whole-page fast path.

``set_range`` takes page-replacement / page-drop shortcuts when a range
covers whole pages (and skips untouched pages on default-value fills).
None of that may be observable: against a straight-line reference
implementation of the original per-chunk slice loop, every read-back
must agree byte for byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.layout import PAGE_SIZE
from repro.shadow.bits import _BytePlane


class ReferencePlane:
    """The original slow path: per-chunk slice assignment, no shortcuts."""

    def __init__(self, default):
        self.default = default
        self._pages = {}

    def _page(self, page_no):
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray([self.default]) * PAGE_SIZE
            self._pages[page_no] = page
        return page

    def set_range(self, address, size, value):
        remaining, cursor = size, address
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            self._page(page_no)[offset:offset + chunk] = (
                bytes([value]) * chunk)
            cursor += chunk
            remaining -= chunk

    def get_range(self, address, size):
        out = bytearray()
        remaining, cursor = size, address
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._pages.get(page_no)
            if page is None:
                out += bytes([self.default]) * chunk
            else:
                out += page[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)


#: Operations stay inside a 8-page window so ranges collide often.
WINDOW = 8 * PAGE_SIZE

op = st.tuples(
    st.integers(min_value=0, max_value=WINDOW - 1),        # address
    st.integers(min_value=1, max_value=3 * PAGE_SIZE),      # size
    st.sampled_from([0, 1, 0x55, 0xFF]),                    # value
)


class TestFastPathEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(op, min_size=1, max_size=24),
           st.sampled_from([0, 0xFF]))
    def test_random_fills_read_back_identically(self, ops, default):
        fast = _BytePlane(default)
        slow = ReferencePlane(default)
        for address, size, value in ops:
            fast.set_range(address, size, value)
            slow.set_range(address, size, value)
        assert (fast.get_range(0, WINDOW + PAGE_SIZE)
                == slow.get_range(0, WINDOW + PAGE_SIZE))

    def test_whole_page_fill_and_overwrite(self):
        fast = _BytePlane(0)
        slow = ReferencePlane(0)
        for plane in (fast, slow):
            plane.set_range(0, 4 * PAGE_SIZE, 0xAA)       # four full pages
            plane.set_range(PAGE_SIZE, PAGE_SIZE, 0)      # back to default
            plane.set_range(100, 50, 7)                   # partial overlay
        span = 5 * PAGE_SIZE
        assert fast.get_range(0, span) == slow.get_range(0, span)

    def test_default_fill_on_untouched_page_allocates_nothing(self):
        plane = _BytePlane(0)
        plane.set_range(0, 16 * PAGE_SIZE, 0)             # full-page default
        plane.set_range(17 * PAGE_SIZE + 5, 100, 0)       # partial default
        assert plane._pages == {}
        assert plane.get_range(0, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_whole_page_default_fill_drops_the_page(self):
        plane = _BytePlane(0)
        plane.set_range(0, PAGE_SIZE, 1)
        assert 0 in plane._pages
        plane.set_range(0, PAGE_SIZE, 0)
        assert 0 not in plane._pages
        assert plane.first_not_equal(0, PAGE_SIZE, 0) is None

    def test_unaligned_spanning_fill(self):
        fast = _BytePlane(0)
        slow = ReferencePlane(0)
        start = PAGE_SIZE - 7
        size = 2 * PAGE_SIZE + 13                         # partial+full+partial
        for plane in (fast, slow):
            plane.set_range(start, size, 0x42)
        assert (fast.get_range(0, 4 * PAGE_SIZE)
                == slow.get_range(0, 4 * PAGE_SIZE))
        assert fast.first_not_equal(start, size, 0x42) is None
        assert fast.first_not_equal(start - 1, size, 0x42) == start - 1
