"""Property tests: the analyzer's soundness on well-behaved programs.

Zero false positives is the paper's headline advantage over signature
based patch generation.  Hypothesis generates arbitrary *well-behaved*
heap activity (allocations, in-bounds initialized accesses, copies,
leaks of initialized data, frees) and asserts the analyzer stays silent;
a second property injects one fault into an otherwise clean sequence and
asserts exactly that fault class is reported.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.libc import LibcAllocator
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.shadow.analyzer import ShadowAnalyzer
from repro.vulntypes import VulnType


class ScriptedProgram(Program):
    """Executes a list of (op, args) steps over tracked buffers."""

    name = "scripted"

    def __init__(self, steps):
        super().__init__()
        self.steps = steps

    def build_graph(self):
        graph = CallGraph()
        for fun in ("malloc", "calloc", "free"):
            graph.add_call_site("main", fun)
        return graph

    def main(self, p):
        buffers = []  # (address, size, initialized)
        for op, a, b in self.steps:
            if op == "malloc":
                address = p.malloc(a)
                p.fill(address, a, 0x11)  # immediately initialize
                buffers.append([address, a])
            elif op == "calloc":
                address = p.calloc(1, a)
                buffers.append([address, a])
            elif op == "write" and buffers:
                address, size = buffers[a % len(buffers)]
                offset = b % size if size else 0
                p.write(address + offset, b"w" * max(1, (size - offset)
                                                     // 2 or 1))
            elif op == "read" and buffers:
                address, size = buffers[a % len(buffers)]
                p.read(address, max(1, size // 2))
            elif op == "copy" and len(buffers) >= 2:
                (src, ssz), (dst, dsz) = (buffers[a % len(buffers)],
                                          buffers[b % len(buffers)])
                if src != dst:
                    n = min(ssz, dsz)
                    if n:
                        p.copy(dst, src, n)
            elif op == "leak" and buffers:
                address, size = buffers[a % len(buffers)]
                if size:
                    p.syscall_out(address, size)
            elif op == "branch" and buffers:
                address, size = buffers[a % len(buffers)]
                if size >= 8:
                    p.branch_on(p.read_int(address))
            elif op == "free" and buffers:
                address, size = buffers.pop(a % len(buffers))
                p.free(address)
        for address, _ in buffers:
            p.free(address)


_steps = st.lists(
    st.tuples(
        st.sampled_from(["malloc", "calloc", "write", "read", "copy",
                         "leak", "branch", "free"]),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ).map(lambda t: (t[0],
                     t[1] if t[0] not in ("malloc", "calloc")
                     else max(8, t[1] % 512),
                     t[2])),
    min_size=1, max_size=40)


@given(_steps)
@settings(max_examples=60, deadline=None)
def test_well_behaved_programs_raise_no_warnings(steps):
    program = ScriptedProgram(steps)
    analyzer = ShadowAnalyzer(LibcAllocator())
    Process(program.graph, monitor=analyzer).run(program)
    assert len(analyzer.report) == 0, analyzer.report.render()


class FaultInjector(Program):
    """A clean prologue, one injected fault, a clean epilogue."""

    name = "fault-injector"

    def __init__(self, fault):
        super().__init__()
        self.fault = fault

    def build_graph(self):
        graph = CallGraph()
        for fun in ("malloc", "free"):
            graph.add_call_site("main", fun)
        return graph

    def main(self, p):
        clean = p.malloc(64)
        p.fill(clean, 64, 1)
        victim = p.malloc(64)
        p.fill(victim, 64, 2)
        if self.fault == "overflow":
            p.read(victim, 80)
        elif self.fault == "uaf":
            p.free(victim)
            p.read(victim, 8)
            victim = None
        elif self.fault == "uninit":
            fresh = p.malloc(32)
            p.syscall_out(fresh, 32)
            p.free(fresh)
        p.read(clean, 64)
        p.free(clean)
        if victim is not None:
            p.free(victim)


@given(st.sampled_from(["overflow", "uaf", "uninit"]))
@settings(deadline=None)
def test_injected_fault_is_the_only_report(fault):
    expected = {
        "overflow": VulnType.OVERFLOW,
        "uaf": VulnType.USE_AFTER_FREE,
        "uninit": VulnType.UNINIT_READ,
    }[fault]
    program = FaultInjector(fault)
    analyzer = ShadowAnalyzer(LibcAllocator())
    Process(program.graph, monitor=analyzer).run(program)
    assert analyzer.report.kinds_seen() == expected
    grouped = analyzer.report.group_by_origin()
    assert len(grouped) == 1
