"""End-of-run leak queries on the analyzer."""

from repro.allocator.libc import LibcAllocator
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.shadow.analyzer import ShadowAnalyzer


class Leaky(Program):
    name = "leaky"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p, leak_count, free_count):
        kept = [p.malloc(32 + 16 * i) for i in range(leak_count)]
        freed = [p.malloc(64) for _ in range(free_count)]
        for buf in freed:
            p.free(buf)
        return kept


def analyze(leak_count, free_count):
    program = Leaky()
    analyzer = ShadowAnalyzer(LibcAllocator())
    process = Process(program.graph, monitor=analyzer)
    process.run(program, leak_count, free_count)
    return analyzer


def test_leaked_buffers_reported():
    analyzer = analyze(leak_count=3, free_count=2)
    leaked = analyzer.leaked_buffers()
    assert len(leaked) == 3
    assert analyzer.live_bytes() == 32 + 48 + 64


def test_clean_exit_reports_nothing():
    analyzer = analyze(leak_count=0, free_count=4)
    assert analyzer.leaked_buffers() == []
    assert analyzer.live_bytes() == 0


def test_leak_records_carry_contexts():
    analyzer = analyze(leak_count=1, free_count=0)
    record = analyzer.leaked_buffers()[0]
    assert record.fun == "malloc"
    assert record.context  # allocation context preserved for forensics
