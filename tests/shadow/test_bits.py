"""Shadow planes: A-bits, per-bit V-masks, origins."""

from hypothesis import given
from hypothesis import strategies as st

from repro.shadow.bits import ALL_INVALID, ALL_VALID, ShadowState


class TestAccessibility:
    def test_default_inaccessible(self):
        shadow = ShadowState()
        assert not shadow.is_accessible(0x1000, 4)
        assert shadow.first_inaccessible(0x1000, 4) == 0x1000

    def test_set_and_clear(self):
        shadow = ShadowState()
        shadow.set_accessible(0x1000, 64)
        assert shadow.is_accessible(0x1000, 64)
        shadow.set_accessible(0x1010, 16, False)
        assert shadow.first_inaccessible(0x1000, 64) == 0x1010
        assert shadow.is_accessible(0x1000, 16)

    def test_cross_page_range(self):
        shadow = ShadowState()
        start = 4096 - 32
        shadow.set_accessible(start, 64)
        assert shadow.is_accessible(start, 64)
        assert not shadow.is_accessible(start, 65)

    def test_accessibility_raw(self):
        shadow = ShadowState()
        shadow.set_accessible(0x100, 2)
        assert shadow.accessibility(0xFF, 4) == b"\x00\x01\x01\x00"


class TestValidity:
    def test_default_invalid(self):
        shadow = ShadowState()
        assert not shadow.is_fully_valid(0x2000, 8)
        assert shadow.first_invalid(0x2000, 8) == 0x2000

    def test_set_valid_range(self):
        shadow = ShadowState()
        shadow.set_valid(0x2000, 16)
        assert shadow.is_fully_valid(0x2000, 16)
        assert shadow.first_invalid(0x2000, 17) == 0x2010

    def test_bit_precision_masks(self):
        shadow = ShadowState()
        shadow.set_vmask(0x2000, bytes([0b1111_0000]))
        assert not shadow.is_fully_valid(0x2000, 1)
        assert shadow.vmask(0x2000, 1) == bytes([0b1111_0000])

    def test_set_invalid_records_origin(self):
        shadow = ShadowState()
        shadow.set_valid(0x3000, 8)
        shadow.set_invalid(0x3000, 8, origin=42)
        assert shadow.first_invalid(0x3000, 8) == 0x3000
        assert shadow.origin_of(0x3000) == 42
        assert shadow.origin_of(0x3007) == 42


class TestCopyShadow:
    def test_copy_propagates_masks_and_origins(self):
        shadow = ShadowState()
        shadow.set_invalid(0x4000, 4, origin=7)
        shadow.set_valid(0x4004, 4)
        shadow.copy_shadow(0x5000, 0x4000, 8)
        assert shadow.vmask(0x5000, 8) == (bytes([ALL_INVALID]) * 4
                                           + bytes([ALL_VALID]) * 4)
        assert shadow.origins(0x5000, 8) == [7, 7, 7, 7,
                                             None, None, None, None]

    def test_copy_overwrites_previous_state(self):
        shadow = ShadowState()
        shadow.set_invalid(0x5000, 8, origin=9)
        shadow.set_valid(0x4000, 8)
        shadow.copy_shadow(0x5000, 0x4000, 8)
        assert shadow.is_fully_valid(0x5000, 8)
        assert shadow.origins(0x5000, 8) == [None] * 8


@given(st.integers(min_value=0, max_value=2**20),
       st.integers(min_value=1, max_value=300))
def test_set_valid_exact_extent(start, size):
    shadow = ShadowState()
    shadow.set_invalid(max(start - 1, 0), size + 2)
    shadow.set_valid(start, size)
    assert shadow.is_fully_valid(start, size)
    if start > 0:
        assert shadow.first_invalid(start - 1, 1) == start - 1
    assert shadow.first_invalid(start + size, 1) == start + size


@given(st.binary(min_size=1, max_size=64),
       st.integers(min_value=0, max_value=2**16))
def test_vmask_roundtrip(masks, start):
    shadow = ShadowState()
    shadow.set_vmask(start, masks)
    assert shadow.vmask(start, len(masks)) == masks
