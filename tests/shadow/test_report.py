"""Analysis report: grouping and rendering."""

from repro.shadow.report import AnalysisReport, BufferRecord, ShadowWarning
from repro.vulntypes import VulnType


def record(serial=0, fun="malloc", ccid=0xABC, size=64):
    return BufferRecord(serial, fun, ccid, 0x1000 + serial * 0x100, size)


def test_empty_report():
    report = AnalysisReport()
    assert len(report) == 0
    assert not report.detected
    assert report.kinds_seen() == VulnType.NONE
    assert report.group_by_origin() == {}


def test_grouping_merges_kinds_per_origin():
    report = AnalysisReport()
    buf = record()
    report.add(ShadowWarning(VulnType.OVERFLOW, 0x1040, "read", buf))
    report.add(ShadowWarning(VulnType.UNINIT_READ, 0, "use:syscall", buf))
    grouped = report.group_by_origin()
    assert grouped == {("malloc", 0xABC):
                       VulnType.OVERFLOW | VulnType.UNINIT_READ}


def test_grouping_separates_contexts():
    report = AnalysisReport()
    report.add(ShadowWarning(VulnType.OVERFLOW, 0, "write",
                             record(serial=0, ccid=0x1)))
    report.add(ShadowWarning(VulnType.USE_AFTER_FREE, 0, "read",
                             record(serial=1, ccid=0x2, fun="calloc")))
    grouped = report.group_by_origin()
    assert grouped[("malloc", 0x1)] == VulnType.OVERFLOW
    assert grouped[("calloc", 0x2)] == VulnType.USE_AFTER_FREE


def test_unattributed_warnings_excluded_from_grouping():
    report = AnalysisReport()
    report.add(ShadowWarning(VulnType.NONE, 0x999, "write", None, "wild"))
    assert report.group_by_origin() == {}
    assert not report.detected
    assert len(report) == 1


def test_buffers_implicated_deduplicates():
    report = AnalysisReport()
    buf = record()
    report.add(ShadowWarning(VulnType.OVERFLOW, 0, "read", buf))
    report.add(ShadowWarning(VulnType.OVERFLOW, 8, "write", buf))
    report.add(ShadowWarning(VulnType.UNINIT_READ, 0, "use:branch",
                             record(serial=5)))
    implicated = report.buffers_implicated()
    assert [b.serial for b in implicated] == [0, 5]


def test_render_contains_key_facts():
    report = AnalysisReport()
    buf = record(ccid=0xDEAD)
    report.add(ShadowWarning(VulnType.OVERFLOW, 0x1040, "write", buf,
                             "clobbered red zone"))
    text = report.render()
    assert "0xdead" in text
    assert "overflow" in text
    assert "clobbered red zone" in text
    assert "patch candidate" in text
