"""The shared interval domain: units plus Hypothesis soundness laws."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.intervals import (
    Interval,
    Num,
    fresh_unknown,
    join_num,
    may_exceed,
    reset_fresh_symbols,
    widen_num,
)

# ---------------------------------------------------------------------------
# Interval units
# ---------------------------------------------------------------------------


def test_point_and_top():
    assert Interval.point(96).exact == 96
    assert Interval.top().hi is None
    assert not Interval.top().bounded
    assert Interval.top().contains(10**9)


def test_invalid_intervals_rejected():
    with pytest.raises(ValueError):
        Interval(-1, 4)
    with pytest.raises(ValueError):
        Interval(5, 4)


def test_from_num_concrete_and_symbolic():
    assert Interval.from_num(Num.const(48)) == Interval.point(48)
    assert Interval.from_num(Num((), 8, 32)) == Interval(8, 32)
    # Negative byte counts clamp at zero (a fault, not an allocation).
    assert Interval.from_num(Num((), -4, 12)) == Interval(0, 12)
    assert Interval.from_num(Num.symbol("n")) == Interval.top()


def test_arithmetic_and_describe():
    a, b = Interval(8, 16), Interval(2, 4)
    assert a.add(b) == Interval(10, 20)
    assert a.mul(b) == Interval(16, 64)
    assert a.add(Interval.top()).hi is None
    assert Interval.point(96).describe() == "96"
    assert Interval(48, 256).describe() == "[48,256]"
    assert Interval(1, None).describe() == "[1,inf]"


def test_map_applies_monotonic_fn():
    assert Interval(8, 40).map(lambda v: v * 2) == Interval(16, 80)
    assert Interval(8, None).map(lambda v: v + 1) == Interval(9, None)


# ---------------------------------------------------------------------------
# Interval property tests: soundness vs concrete sampling
# ---------------------------------------------------------------------------

bounds = st.integers(min_value=0, max_value=500)


@st.composite
def intervals(draw):
    lo = draw(bounds)
    hi = draw(st.one_of(st.none(),
                        st.integers(min_value=lo, max_value=lo + 500)))
    return Interval(lo, hi)


def sample(interval):
    """Concrete members of ``interval`` (ends + a midpoint)."""
    hi = interval.hi if interval.hi is not None else interval.lo + 1000
    return {interval.lo, hi, (interval.lo + hi) // 2}


@given(intervals(), intervals())
def test_interval_add_sound(a, b):
    added = a.add(b)
    for x in sample(a):
        for y in sample(b):
            assert added.contains(x + y)


@given(intervals(), intervals())
def test_interval_mul_sound(a, b):
    product = a.mul(b)
    for x in sample(a):
        for y in sample(b):
            assert product.contains(x * y)


@given(intervals(), intervals())
def test_interval_join_is_upper_bound(a, b):
    joined = a.join(b)
    for x in sample(a) | sample(b):
        assert joined.contains(x)
    assert a.join(b) == b.join(a)
    assert a.join(a) == a


@given(intervals(), intervals())
def test_interval_widen_covers_join_and_terminates(a, b):
    joined = a.join(b)
    widened = a.widen(joined)
    # Widening over-approximates the join ...
    assert widened.lo <= joined.lo
    assert widened.hi is None or (joined.hi is not None
                                  and widened.hi >= joined.hi)
    # ... and is a fixed point against further growth by b: one more
    # widen step can only move bounds to the extremes, which are stable.
    again = widened.widen(widened.join(b))
    assert again.widen(again.join(b)) == again


# ---------------------------------------------------------------------------
# Num laws (the symbolic layer staticvuln runs on)
# ---------------------------------------------------------------------------

small = st.integers(min_value=-100, max_value=100)


@st.composite
def concrete_nums(draw):
    lo = draw(small)
    hi = draw(st.integers(min_value=lo, max_value=lo + 200))
    return Num((), lo, hi, draw(st.booleans()))


def num_sample(num):
    return {num.lo, num.hi, (num.lo + num.hi) // 2}


@given(concrete_nums(), concrete_nums())
def test_num_add_sub_sound(a, b):
    added, subbed = a.add(b), a.sub(b)
    for x in num_sample(a):
        for y in num_sample(b):
            assert added.lo <= x + y <= added.hi
            assert subbed.lo <= x - y <= subbed.hi


@given(concrete_nums(), st.integers(min_value=-10, max_value=10))
def test_num_mul_by_constant_sound(a, k):
    product = a.mul(Num.const(k))
    for x in num_sample(a):
        assert product.lo <= x * k <= product.hi


@given(concrete_nums(), concrete_nums())
def test_join_num_is_upper_bound(a, b):
    joined = join_num(a, b)
    assert joined.lo <= min(a.lo, b.lo)
    assert joined.hi >= max(a.hi, b.hi)
    assert joined.tainted == (a.tainted or b.tainted)


@given(concrete_nums(), concrete_nums())
def test_widen_num_terminates(a, b):
    """A join-widen chain stabilizes: equal values stay put, and any
    unstable chain reaches top (a symbolic value) within two steps.
    Symbolic values are all top — fresh symbol names differ, so
    stabilization is semantic, not syntactic equality."""
    step1 = widen_num(a, join_num(a, b))
    if step1 == a:
        return  # already stable
    step2 = widen_num(step1, join_num(step1, b))
    assert step2 == step1 or not step2.concrete


def test_widen_num_concrete_growth_goes_symbolic():
    grown = widen_num(Num((), 0, 8), Num((), 0, 16))
    assert not grown.concrete  # growing hi jumps to top
    shrunk = widen_num(Num((), 8, 16), Num((), 4, 16))
    assert shrunk == Num((), 0, 16)  # shrinking lo jumps to 0


def test_may_exceed_basic():
    assert may_exceed(Num.const(8), Num.const(16)) is None
    assert may_exceed(Num.const(24), Num.const(16)) is not None
    n = Num.symbol("n")
    assert may_exceed(n, n) is None  # syntactically equal
    assert may_exceed(n, Num.const(16)) is not None
    # Concrete extent vs symbolic size: assumed sized-to-fit.
    assert may_exceed(Num.const(8), n) is None


def test_fresh_symbols_reset_gives_identical_names():
    reset_fresh_symbols()
    first = [fresh_unknown().terms for _ in range(3)]
    reset_fresh_symbols()
    second = [fresh_unknown().terms for _ in range(3)]
    assert first == second
