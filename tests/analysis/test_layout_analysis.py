"""The static heap-layout pass: units, determinism, and the
fuzz-vs-static adjacency soundness corpus."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_layout, analyze_program
from repro.analysis.layout import (
    BACKWARD_MIN_LEN,
    AllocSiteId,
    forward_min_lengths,
)
from repro.analysis.intervals import Interval
from repro.cli import WORKLOADS
from repro.fuzz.adjacency import cross_check_range, observe_adjacency
from repro.fuzz.generator import build_program, spec_for_seed

#: Soundness-corpus size; the acceptance floor is 50 generated
#: programs, doubled under the CI Hypothesis profile.
CORPUS_SIZE = 100 if os.environ.get("HYPOTHESIS_PROFILE") == "ci" else 50


# ---------------------------------------------------------------------------
# Minimal-overflow-length geometry
# ---------------------------------------------------------------------------


def test_forward_min_lengths_exact_size():
    # r=48 -> chunk 64: header starts 0 bytes past the end, payload 16.
    assert forward_min_lengths(Interval.point(48)) == (1, 17)
    # r=40 -> chunk 64: 8 bytes of slack before the next header.
    assert forward_min_lengths(Interval.point(40)) == (9, 25)


def test_forward_min_lengths_minimizes_over_interval():
    # The interval contains a tight-fit request, so the minimum is 1.
    assert forward_min_lengths(Interval(40, 64)) == (1, 17)
    # Unbounded interval: some request in the window fits tightly.
    assert forward_min_lengths(Interval(40, None)) == (1, 17)


def test_backward_min_is_own_header_plus_one():
    assert BACKWARD_MIN_LEN == 17


# ---------------------------------------------------------------------------
# Layout results on generated and builtin programs
# ---------------------------------------------------------------------------


def test_overflow_program_predicts_victim_pair():
    spec = spec_for_seed(0)  # overflow-write
    result = analyze_layout(build_program(spec))
    assert result.has_findings
    forward = [p for p in result.pairs if p.direction == "forward"]
    assert any(p.source.label == "vuln" and p.victim.label == "victim"
               for p in forward)
    for pair in forward:
        assert pair.min_overflow_len >= 1
        assert pair.min_payload_len >= pair.min_overflow_len


def test_underflow_program_predicts_backward_pair():
    spec = spec_for_seed(2)  # underflow-write
    result = analyze_layout(build_program(spec))
    backward = [p for p in result.pairs if p.direction == "backward"]
    assert any(p.source.label == "vuln" and p.victim.label == "victim"
               for p in backward)
    assert all(p.min_overflow_len == BACKWARD_MIN_LEN for p in backward)


def test_uaf_program_has_no_adjacency():
    spec = spec_for_seed(3)  # use-after-free: no out-of-bounds access
    result = analyze_layout(build_program(spec))
    assert not result.has_findings


def test_sites_carry_geometry_and_lifetimes():
    result = analyze_layout(build_program(spec_for_seed(0)))
    by_label = {site.site.label: site for site in result.sites}
    victim = by_label["victim"]
    assert victim.size == Interval.point(96)
    assert victim.chunk == Interval.point(112)
    assert victim.bin == "small"
    assert victim.small_bin == 112 // 16
    assert victim.site.caller in victim.may_live_in


def test_plans_are_emitted_per_pair():
    result = analyze_layout(build_program(spec_for_seed(0)))
    assert result.plans
    for plan in result.plans:
        assert plan.kind in ("sequential", "hole-reuse")
        actions = [step.action for step in plan.steps]
        assert actions[-1] == "overflow"
        assert "alloc" in actions


def test_workload_layout_heartbleed():
    result = analyze_layout(WORKLOADS["heartbleed"]())
    assert result.has_findings
    assert all(isinstance(p.source, AllocSiteId) for p in result.pairs)


def test_layout_result_roundtrips_to_json():
    result = analyze_layout(build_program(spec_for_seed(0)))
    payload = result.to_dict()
    assert json.dumps(payload)  # serializable
    assert payload["program"] == result.program_name
    assert len(payload["pairs"]) == len(result.pairs)


def test_layout_is_deterministic_in_process():
    program_a = build_program(spec_for_seed(6))
    program_b = build_program(spec_for_seed(6))
    first = analyze_layout(program_a).to_dict()
    second = analyze_layout(program_b).to_dict()
    assert json.dumps(first) == json.dumps(second)


# ---------------------------------------------------------------------------
# Fuzz-vs-static adjacency soundness corpus
# ---------------------------------------------------------------------------


def test_adjacency_soundness_over_corpus():
    """Every dynamically observed overflow pair is statically predicted
    with predicted minimal l <= observed overflow length."""
    checks, fp_rate = cross_check_range(0, CORPUS_SIZE)
    unsound = [check for check in checks if not check.sound]
    assert not unsound, [check.failures for check in unsound]
    observed = [check for check in checks if check.observed is not None]
    # The corpus cycles through six bug kinds, half of them overflows.
    assert len(observed) >= CORPUS_SIZE // 3
    assert all(check.matched for check in observed)
    assert 0.0 <= fp_rate < 1.0


def test_observe_adjacency_returns_none_for_non_overflow():
    assert observe_adjacency(spec_for_seed(3)) is None  # use-after-free
    assert observe_adjacency(spec_for_seed(4)) is None  # double-free


def test_observed_direction_matches_kind():
    forward = observe_adjacency(spec_for_seed(0))
    assert forward is not None and forward.direction == "forward"
    backward = observe_adjacency(spec_for_seed(2))
    assert backward is not None and backward.direction == "backward"


# ---------------------------------------------------------------------------
# staticvuln determinism: the extraction must be behaviour-preserving
# and the report byte-identical across runs/processes
# ---------------------------------------------------------------------------

GOLDEN = Path(__file__).parent / "golden_staticvuln.txt"
GOLDEN_WORKLOADS = ("heartbleed", "bc", "tiff", "samate-01", "samate-22")


def _render_golden():
    lines = []
    for name in GOLDEN_WORKLOADS:
        result = analyze_program(WORKLOADS[name]())
        lines.append(f"== {name}")
        lines.append(result.render())
    return "\n".join(lines) + "\n"


def test_staticvuln_matches_golden_output():
    """The interval extraction preserved staticvuln byte-for-byte."""
    assert _render_golden() == GOLDEN.read_text()


def test_staticvuln_repeated_runs_identical():
    first = analyze_program(WORKLOADS["heartbleed"]()).render()
    second = analyze_program(WORKLOADS["heartbleed"]()).render()
    assert first == second


@pytest.mark.parametrize("hashseed", ["1", "12345"])
def test_staticvuln_stable_across_hash_seeds(hashseed):
    """Reports must not depend on PYTHONHASHSEED (str hash salting)."""
    script = (
        "from repro.cli import WORKLOADS\n"
        "from repro.analysis import analyze_program\n"
        "for n in ('heartbleed', 'bc', 'libming'):\n"
        "    print(analyze_program(WORKLOADS[n]()).render())\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH="src")
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         cwd=str(Path(__file__).parents[2]),
                         capture_output=True, text=True, check=True)
    assert out.stdout == _render_golden_subset()


def _render_golden_subset():
    lines = []
    for name in ("heartbleed", "bc", "libming"):
        lines.append(analyze_program(WORKLOADS[name]()).render())
    return "\n".join(lines) + "\n"
