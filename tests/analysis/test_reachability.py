"""Unit tests for the heap-reachability pre-pass."""

from repro.analysis import (
    analyze_heap_reachability,
    heap_core_subgraph,
    prune_instrumentation,
    pruning_report,
)
from repro.ccencoding.targeting import Strategy, select_sites
from repro.program.callgraph import CallGraph


def diamond_with_dead_code():
    """main -> {a, b} -> sink -> malloc, plus a dead branch."""
    graph = CallGraph()
    graph.add_call_site("main", "a", "1")
    graph.add_call_site("main", "b", "2")
    graph.add_call_site("a", "sink", "")
    graph.add_call_site("b", "sink", "")
    graph.add_call_site("sink", "malloc", "buf")
    # Dead: nothing reaches `ghost`, yet it calls into the live graph.
    graph.add_call_site("ghost", "sink", "dead")
    graph.add_call_site("ghost", "malloc", "dead-alloc")
    return graph


def test_reachability_facts():
    graph = diamond_with_dead_code()
    facts = analyze_heap_reachability(graph, ["malloc"])
    assert "ghost" in facts.dead_functions
    assert "ghost" not in facts.live_functions
    assert {"main", "a", "b", "sink"} <= facts.heap_core
    assert facts.core_size >= 4
    dead_sites = {site.site_id for site in graph.sites
                  if site.caller == "ghost"}
    assert not (dead_sites & facts.live_sites)


def test_prune_is_a_subset_for_every_strategy():
    graph = diamond_with_dead_code()
    targets = graph.allocation_targets
    for strategy in Strategy:
        selected = select_sites(graph, targets, strategy)
        pruned = prune_instrumentation(graph, targets, selected)
        assert pruned <= selected


def test_prune_drops_dead_sites():
    graph = diamond_with_dead_code()
    targets = graph.allocation_targets
    selected = select_sites(graph, targets, Strategy.FCS)
    pruned = prune_instrumentation(graph, targets, selected)
    dead_sites = {site.site_id for site in graph.sites
                  if site.caller == "ghost"}
    assert dead_sites & selected, "FCS should have selected dead sites"
    assert not (dead_sites & pruned)


def test_default_edge_elision_only_on_acyclic_graphs():
    graph = CallGraph()
    graph.add_call_site("main", "loop", "")
    graph.add_call_site("loop", "loop", "self")
    graph.add_call_site("loop", "malloc", "buf")
    targets = graph.allocation_targets
    selected = select_sites(graph, targets, Strategy.FCS)
    pruned = prune_instrumentation(graph, targets, selected)
    # Cyclic: only the (empty) dead-code drop applies.
    assert pruned == selected & pruned
    facts = analyze_heap_reachability(graph, targets)
    assert pruned == selected & facts.live_sites


def test_pruning_report_accounting():
    graph = diamond_with_dead_code()
    targets = graph.allocation_targets
    selected = select_sites(graph, targets, Strategy.FCS)
    row = pruning_report(graph, targets, selected)
    assert row["selected"] == len(selected)
    assert row["pruned"] == len(
        prune_instrumentation(graph, targets, selected))
    assert (row["selected"] - row["dead_code_dropped"]
            - row["defaults_elided"]) == row["pruned"]
    assert row["dead_functions"] == 1


def test_heap_core_subgraph_excludes_dead_and_non_heap():
    graph = diamond_with_dead_code()
    graph.add_call_site("main", "logger", "log")  # live but heap-free
    core, core_sites = heap_core_subgraph(graph, ["malloc"])
    assert "ghost" not in core
    assert "logger" not in core
    for site_id in core_sites:
        site = graph.site_by_id(site_id)
        assert site.caller in core
