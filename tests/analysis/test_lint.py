"""Program-model lint: agreement on bundled workloads, and detection of
deliberately seeded graph/behaviour mismatches."""

import pytest

from repro.analysis import Severity, lint_program
from repro.program.callgraph import CallGraph
from repro.program.program import Program
from repro.workloads.vulnerable import (
    all_samate_cases,
    extension_programs,
    table2_programs,
)

ALL_WORKLOADS = (table2_programs() + extension_programs()
                 + all_samate_cases())


@pytest.mark.parametrize("program", ALL_WORKLOADS,
                         ids=lambda prog: prog.name)
def test_bundled_workloads_lint_clean(program):
    report = lint_program(program)
    assert report.ok, report.render(verbose=True)
    assert not report.warnings, report.render(verbose=True)


# ---------------------------------------------------------------------------
# Seeded mismatches: each fixture program deliberately disagrees with its
# declared graph in one way, and the linter must call it out.
# ---------------------------------------------------------------------------


class _WrongCallerAlloc(Program):
    """Allocation executes in `worker` but is declared under `main`."""

    name = "seeded-wrong-caller"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "worker", "w")
        graph.add_call_site("main", "malloc", "buf")  # wrong caller
        graph.add_call_site("worker", "free", "")
        return graph

    def main(self, p):
        p.call("worker", self._worker, site="w")

    def _worker(self, p):
        ptr = p.malloc(16, site="buf")
        p.free(ptr)


class _UndeclaredCall(Program):
    """`main` calls an edge that was never declared."""

    name = "seeded-undeclared-call"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc", "buf")
        return graph

    def main(self, p):
        p.call("helper", self._helper, site="h")  # undeclared edge

    def _helper(self, p):
        p.malloc(8, site="buf")


class _UndeclaredAlloc(Program):
    """An allocation site label that exists nowhere in the graph."""

    name = "seeded-undeclared-alloc"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc", "declared")
        return graph

    def main(self, p):
        p.malloc(8, site="declared")
        p.malloc(8, site="ghost")  # undeclared site


class _DeadEdges(Program):
    """Declared functions and edges the body never exercises."""

    name = "seeded-dead-edges"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc", "buf")
        graph.add_call_site("main", "used", "u")
        graph.add_call_site("used", "calloc", "never")  # no p.calloc
        graph.add_function("orphan")  # unreachable from entry
        return graph

    def main(self, p):
        p.malloc(8, site="buf")
        p.call("used", self._used, site="u")

    def _used(self, p):
        pass


def _rules(report, severity):
    return {f.rule for f in report.findings if f.severity is severity}


def test_alloc_under_wrong_caller_is_an_error():
    report = lint_program(_WrongCallerAlloc())
    assert not report.ok
    assert "alloc-site-wrong-function" in _rules(report, Severity.ERROR)


def test_undeclared_call_site_is_an_error():
    report = lint_program(_UndeclaredCall())
    assert not report.ok
    assert "undeclared-call-site" in _rules(report, Severity.ERROR)


def test_undeclared_alloc_site_is_an_error():
    report = lint_program(_UndeclaredAlloc())
    assert not report.ok
    assert "undeclared-alloc-site" in _rules(report, Severity.ERROR)


def test_unreachable_edges_and_dead_functions_warn():
    report = lint_program(_DeadEdges())
    assert report.ok  # warnings, not errors
    warned = _rules(report, Severity.WARNING)
    assert "unreachable-declared-edge" in warned
    assert "dead-function" in warned


def test_report_renders_findings():
    report = lint_program(_WrongCallerAlloc())
    text = report.render()
    assert "FAIL" in text
    assert "alloc-site-wrong-function" in text


def test_synthesizability_flags_unbounded_sites():
    """Seeded mismatch: heartbleed's response site is input-sized
    (unbounded interval), so --synthesizability must predict a solver
    abstention there — and stay quiet without the flag."""
    from repro.workloads.vulnerable import workload_registry

    program = workload_registry()["heartbleed"]()
    silent = lint_program(program)
    assert "unsynthesizable-alloc-site" not in _rules(
        silent, Severity.WARNING)
    flagged = lint_program(program, synthesizability=True)
    warned = flagged.warnings
    rules = _rules(flagged, Severity.WARNING)
    assert "unsynthesizable-alloc-site" in rules
    assert flagged.ok  # WARNING severity: predicts, does not fail
    assert any("abstain" in finding.message for finding in warned)


def test_synthesizability_quiet_on_bounded_sites():
    """A fuzz-generated program has constant request sizes: no warning."""
    from repro.fuzz.generator import build_program, spec_for_seed

    report = lint_program(build_program(spec_for_seed(0)),
                          synthesizability=True)
    assert "unsynthesizable-alloc-site" not in _rules(
        report, Severity.WARNING)
