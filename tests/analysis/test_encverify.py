"""Static encoding-soundness verifier: injectivity certificates,
concrete collision counterexamples, wrap analysis, decoder budgets and
the deterministic repair planner."""

import warnings

import pytest

from repro.analysis.encverify import (
    DECODE_CLOSED_FORM,
    DECODE_ENUMERATION,
    DECODE_NONE,
    EncodingSoundnessWarning,
    certificates_to_json,
    plan_repair,
    reachable_value_facts,
    reachable_values,
    verify_all,
    verify_codec,
    verify_program,
)
from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.ccencoding.base import EncodingError
from repro.ccencoding.pcce import PCCECodec
from repro.core.pipeline import HeapTherapy
from repro.program.callgraph import CallGraph
from repro.workloads.vulnerable import table2_programs


# ---------------------------------------------------------------------------
# Certification of the real workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", table2_programs(),
                         ids=lambda prog: prog.name)
def test_all_combos_certify_on_table2_workloads(program):
    certificates = verify_all(program)
    assert len(certificates) == len(SCHEMES) * len(list(Strategy))
    for certificate in certificates:
        assert certificate.certified, certificate.render()
        assert not certificate.collisions


def test_decode_modes_per_scheme_and_strategy():
    program = table2_programs()[0]
    modes = {(c.scheme, c.strategy): c.decode_mode
             for c in verify_all(program)}
    assert modes[("pcc", "fcs")] == DECODE_NONE
    assert modes[("pcce", "fcs")] == DECODE_CLOSED_FORM
    assert modes[("pcce", "tcs")] == DECODE_CLOSED_FORM
    assert modes[("pcce", "slim")] == DECODE_ENUMERATION
    assert modes[("deltapath", "incremental")] == DECODE_ENUMERATION


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("strategy", list(Strategy),
                         ids=lambda s: s.value)
def test_value_set_matches_enumerated_contexts(scheme, strategy):
    """Exactness: the abstract fixpoint agrees with brute-force path
    enumeration on every target, both in values and in counts."""
    program = table2_programs()[0]
    graph = program.graph
    targets = graph.allocation_targets
    plan = InstrumentationPlan.build(graph, targets, strategy)
    codec = SCHEMES[scheme].build(plan)
    facts = reachable_value_facts(codec)
    for target in targets:
        contexts = graph.enumerate_contexts(target)
        concrete = [codec.encode_path(path) for path in contexts]
        target_facts = facts.get(target, {})
        assert set(concrete) == set(target_facts)
        assert len(contexts) == sum(
            fact.count for fact in target_facts.values())


def test_reachable_values_sorted_view():
    program = table2_programs()[0]
    certificate = verify_program(program, scheme="pcce", strategy="fcs")
    assert certificate.certified
    plan = InstrumentationPlan.build(
        program.graph, program.graph.allocation_targets, Strategy.FCS)
    codec = SCHEMES["pcce"].build(plan)
    values = reachable_values(codec)
    for target in plan.targets:
        assert list(values[target]) == sorted(values[target])
        # Dense numbering: exactly [0, numContexts).
        assert list(values[target]) == list(
            range(codec.num_contexts[target]))


def test_enumeration_budget_is_exact_context_count():
    program = table2_programs()[0]
    certificate = verify_program(program, scheme="pcce", strategy="slim")
    for target_cert in certificate.targets:
        expected = len(program.graph.enumerate_contexts(target_cert.target))
        assert target_cert.enumeration_budget == expected
        assert target_cert.context_count == expected


def test_additive_wrap_analysis_present():
    program = table2_programs()[0]
    dense = verify_program(program, scheme="pcce", strategy="fcs")
    for target_cert in dense.targets:
        assert target_cert.wrap_free is True
        assert target_cert.max_path_sum is not None
    hashed = verify_program(program, scheme="pcc", strategy="fcs")
    for target_cert in hashed.targets:
        assert target_cert.wrap_free is None


# ---------------------------------------------------------------------------
# Seeded collisions and the repair planner
# ---------------------------------------------------------------------------


class NarrowCodec(PCCECodec):
    """8-bit additive codec: 24 random salts in a 256-value space force
    a birthday collision with the fixed splitmix64 salt schedule."""

    value_bits = 8


#: Parallel-edge fan-out wide enough to guarantee a collision at 8 bits.
FANOUT = 24


def narrow_setup(auto_repair):
    """main =24 parallel edges=> mid -> malloc, Slim-style plan."""
    graph = CallGraph()
    for index in range(FANOUT):
        graph.add_call_site("main", "mid", f"p{index}")
    graph.add_call_site("mid", "malloc")
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.SLIM)
    return NarrowCodec(plan, auto_repair=auto_repair)


def test_seeded_salt_collision_has_concrete_counterexample():
    codec = narrow_setup(auto_repair=False)
    certificate = verify_codec(codec, program_name="narrow")
    assert not certificate.certified
    witnesses = certificate.collisions
    assert witnesses, "8-bit fan-out must collide under the fixed salts"
    for witness in witnesses:
        assert not witness.structural
        assert witness.context_a != witness.context_b
        # The counterexample is concrete: both contexts really do fold
        # to the reported CCID under the current constants.
        path_a = tuple(codec.graph.site_by_id(s)
                       for s in witness.context_a)
        path_b = tuple(codec.graph.site_by_id(s)
                       for s in witness.context_b)
        assert codec.encode_path(path_a) == witness.ccid
        assert codec.encode_path(path_b) == witness.ccid
        assert "salt-fixable" in witness.render()


def test_repair_planner_is_deterministic_and_resolves():
    first = plan_repair(narrow_setup(auto_repair=False),
                        program_name="narrow")
    second = plan_repair(narrow_setup(auto_repair=False),
                         program_name="narrow")
    assert first.resolved and second.resolved
    assert first.actions == second.actions
    assert first.actions, "the seeded collision must need >= 1 repair"
    assert all(action.kind == "resalt" for action in first.actions)
    assert first.certificate.certified
    assert not first.certificate.collisions


def test_constructor_auto_repair_builds_certified_codec():
    codec = narrow_setup(auto_repair=True)
    certificate = verify_codec(codec, program_name="narrow")
    assert certificate.certified, certificate.render()
    # And the repaired codec still decodes every context.
    for path in codec.graph.enumerate_contexts("malloc"):
        assert codec.decode("malloc", codec.encode_path(path)) == path


def test_attempt_zero_salts_unchanged_for_collision_free_graphs():
    """Auto-repair must be a no-op on non-colliding plans, keeping the
    constants (hence deployed CCIDs) identical to the historical salt-0
    assignment."""
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "malloc")
    graph.add_call_site("b", "malloc")
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.SLIM)
    repaired = PCCECodec(plan)
    virgin = PCCECodec(plan, auto_repair=False)
    for site in graph.sites:
        assert repaired.site_constant(site) == virgin.site_constant(site)


def diamond_structural_setup():
    """Diamond where only c->malloc is instrumented: the two contexts
    through ``a`` and ``b`` share one instrumented subsequence, so no
    salt assignment can separate them."""
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "c")
    graph.add_call_site("b", "c")
    site = graph.add_call_site("c", "malloc")
    plan = InstrumentationPlan(
        graph, ("malloc",), Strategy.SLIM,
        frozenset({site.site_id}), frozenset({"c"}))
    return plan


def test_structural_collision_detected_and_constructor_refuses():
    plan = diamond_structural_setup()
    codec = PCCECodec(plan, auto_repair=False)
    certificate = verify_codec(codec, program_name="diamond")
    assert not certificate.certified
    assert all(w.structural for w in certificate.collisions)
    with pytest.raises(EncodingError, match="repair planner"):
        PCCECodec(plan)


def test_repair_planner_adds_instrumentation_for_structural():
    plan = diamond_structural_setup()
    outcome = plan_repair(PCCECodec(plan, auto_repair=False),
                          program_name="diamond")
    assert outcome.resolved
    kinds = [action.kind for action in outcome.actions]
    assert "instrument" in kinds
    assert len(outcome.plan.sites) > len(plan.sites)
    assert outcome.certificate.certified


# ---------------------------------------------------------------------------
# Abstention and pipeline policy
# ---------------------------------------------------------------------------


def recursive_graph():
    graph = CallGraph()
    graph.add_call_site("main", "rec")
    graph.add_call_site("rec", "rec", "self")
    graph.add_call_site("rec", "malloc")
    return graph


def test_recursive_graph_abstains_with_note():
    graph = recursive_graph()
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.FCS)
    codec = SCHEMES["pcc"].build(plan)
    certificate = verify_codec(codec, program_name="recursive")
    assert certificate.abstained
    assert not certificate.certified
    assert any("recursive" in note for note in certificate.notes)
    assert "ABSTAINED" in certificate.render()


def test_pipeline_records_certificate_and_strict_mode():
    program = table2_programs()[0]
    with warnings.catch_warnings():
        warnings.simplefilter("error", EncodingSoundnessWarning)
        system = HeapTherapy(program, verify_encoding="strict")
    assert system.encoding_certificate is not None
    assert system.encoding_certificate.certified

    off = HeapTherapy(program, verify_encoding="off")
    assert off.encoding_certificate is None

    with pytest.raises(ValueError):
        HeapTherapy(program, verify_encoding="sometimes")


def test_pipeline_strict_refuses_unverifiable_recursion():
    class RecursiveProgram:
        """Minimal Program-shaped stand-in with a cyclic graph."""

        name = "recursive-prog"
        graph = recursive_graph().freeze()

        def run(self, process):
            """Unused; verification refuses before any run."""

    program = RecursiveProgram()
    with pytest.raises(EncodingError, match="refusing to deploy"):
        HeapTherapy(program, verify_encoding="strict")
    # Default warn mode tolerates abstention silently (PCC injectivity
    # on recursive graphs is probabilistic, the paper's own setting).
    with warnings.catch_warnings():
        warnings.simplefilter("error", EncodingSoundnessWarning)
        system = HeapTherapy(program)
    assert system.encoding_certificate.abstained


# ---------------------------------------------------------------------------
# Artifact format
# ---------------------------------------------------------------------------


def test_certificates_to_json_is_deterministic_and_summarized():
    program = table2_programs()[0]
    payload_a = certificates_to_json(verify_all(program))
    payload_b = certificates_to_json(verify_all(program))
    assert payload_a == payload_b
    assert payload_a["version"] == 1
    summary = payload_a["summary"]
    assert summary["combos"] == len(payload_a["certificates"])
    assert summary["certified"] == summary["combos"]
    assert summary["collisions"] == 0
    for row in payload_a["certificates"]:
        assert row["certified"] is True
        for target in row["targets"]:
            assert isinstance(target["max_path_sum"], (str, type(None)))
