"""The static vulnerability detector against the Table II ground truth.

Each bundled workload has a known vulnerability at a known allocation
edge; the analyzer must flag that edge with the right type, from source
alone — no attack input, no execution.
"""

import pytest

from repro.analysis import analyze_program
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import (
    BcCalculator,
    GhostXpsRenderer,
    HeartbleedService,
    LibmingParser,
    OptiPngOptimizer,
    SmbServer,
    TiffToPdf,
    WavPackDecoder,
    all_samate_cases,
)

#: (program factory, vuln type, FUN, site label) ground truth.
EXPECTED = [
    (HeartbleedService, VulnType.OVERFLOW, "malloc", "hb_request"),
    (HeartbleedService, VulnType.UNINIT_READ, "malloc", "hb_request"),
    (BcCalculator, VulnType.OVERFLOW, "malloc", "arrays"),
    (GhostXpsRenderer, VulnType.UNINIT_READ, "malloc", "glyph_buf"),
    (OptiPngOptimizer, VulnType.USE_AFTER_FREE, "malloc", "descriptor"),
    (TiffToPdf, VulnType.OVERFLOW, "malloc", "tf_object"),
    (WavPackDecoder, VulnType.USE_AFTER_FREE, "memalign",
     "channel_config"),
    (LibmingParser, VulnType.OVERFLOW, "realloc", "names_grow"),
    (SmbServer, VulnType.OVERFLOW, "malloc", "nt_fea"),
]


@pytest.mark.parametrize(
    "factory,vuln,fun,label", EXPECTED,
    ids=[f"{f.__name__}-{v.describe()}" for f, v, _, _ in EXPECTED])
def test_known_vulnerability_is_flagged(factory, vuln, fun, label):
    result = analyze_program(factory())
    matches = [f for f in result.findings
               if f.vuln is vuln and f.fun == fun and f.site_label == label]
    assert matches, result.render()


@pytest.mark.parametrize("case", all_samate_cases(),
                         ids=lambda case: case.name)
def test_samate_cases_flag_their_vulnerability(case):
    result = analyze_program(case)
    expected = case.spec.kind
    assert any(f.vuln & expected for f in result.findings), result.render()


def test_findings_are_ranked_best_first():
    for factory, *_ in EXPECTED:
        result = analyze_program(factory())
        scores = [f.score for f in result.findings]
        assert scores == sorted(scores, reverse=True)


def test_no_spurious_double_free_on_real_workloads():
    # The real workloads have exactly one bug class each (heartbleed has
    # two on the same edge); the analyzer should not drown the signal.
    result = analyze_program(BcCalculator())
    assert all(f.vuln is not VulnType.USE_AFTER_FREE
               for f in result.findings), result.render()


def test_render_mentions_each_finding():
    result = analyze_program(HeartbleedService())
    text = result.render()
    for finding in result.findings:
        assert finding.reason in text
