"""Static patch generation: lowering findings to {FUN, CCID, T} patches
and defeating attacks without ever replaying an attack input."""

import pytest

from repro.analysis import StaticPatchGenerator
from repro.core.pipeline import HeapTherapy
from repro.workloads.vulnerable import all_samate_cases, table2_programs


def _static_patches(system):
    generator = StaticPatchGenerator(system.program,
                                     system.instrumented.codec)
    return generator.generate()


@pytest.mark.parametrize("program", table2_programs(),
                         ids=lambda prog: prog.name)
def test_static_patches_find_the_root_cause_patch(program):
    """The attack replay and the static analysis must agree on the
    root-cause allocation: at least one dynamically generated patch key
    appears in the static set with its vuln bits covered.  (The dynamic
    set may additionally contain *collateral victim* patches — buffers
    an overflow sprayed into — which the static root-cause patch makes
    redundant, so a full superset is not required.)"""
    system = HeapTherapy(program)
    static = _static_patches(system)
    dynamic = system.generate_patches(program.attack_input())
    static_by_key = {patch.key: patch for patch in static.patches}
    shared = [patch for patch in dynamic.patches
              if patch.key in static_by_key]
    assert shared, (
        f"no overlap: dynamic {[p.render() for p in dynamic.patches]} vs "
        f"static {[p.render() for p in static.patches]}")
    for patch in shared:
        assert patch.vuln & static_by_key[patch.key].vuln == patch.vuln


@pytest.mark.parametrize("program", table2_programs(),
                         ids=lambda prog: prog.name)
def test_static_patches_defeat_attack_and_keep_benign(program):
    system = HeapTherapy(program)
    static = _static_patches(system)
    assert static.detected, static.render()

    defended = system.run_defended(static.patches, program.attack_input())
    outcome = None if defended.blocked else defended.result
    assert not program.attack_succeeded(outcome)

    benign = system.run_defended(static.patches, program.benign_input())
    assert not benign.blocked
    assert program.benign_works(benign.result)


def test_samate_suite_static_defense():
    cases = all_samate_cases()
    defeated = 0
    for case in cases:
        system = HeapTherapy(case)
        static = _static_patches(system)
        defended = system.run_defended(static.patches, case.attack_input())
        outcome = None if defended.blocked else defended.result
        benign = system.run_defended(static.patches, case.benign_input())
        if (not case.attack_succeeded(outcome) and not benign.blocked
                and case.benign_works(benign.result)):
            defeated += 1
    assert defeated == len(cases)


def test_generate_static_patches_pipeline_entry():
    program = table2_programs()[0]
    system = HeapTherapy(program)
    result = system.generate_static_patches()
    assert result.detected
    assert result.program_name == program.name
    # Every patch has a score and they are ranked best-first.
    scores = [result.scores[patch.key] for patch in result.patches]
    assert scores == sorted(scores, reverse=True)


def test_render_lists_patches():
    system = HeapTherapy(table2_programs()[0])
    result = system.generate_static_patches()
    text = result.render()
    for patch in result.patches:
        assert patch.render() in text
