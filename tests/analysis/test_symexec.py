"""The symbolic domain: units plus Hypothesis soundness laws.

Mirrors the interval-domain suite (``test_intervals.py``): every
symbolic operation is checked against concrete evaluation over sampled
assignments, and the solver's three verdicts (sat / unsat / abstain)
are each pinned against brute force on small problems.
"""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allocator.chunk import request_to_chunk_size
from repro.analysis.intervals import Interval
from repro.analysis.symexec import (
    ABSTAIN,
    Bounds,
    LinExpr,
    Problem,
    Relation,
    RelationalConstraint,
    SAT,
    UNSAT,
)

# ---------------------------------------------------------------------------
# Units: Bounds and LinExpr
# ---------------------------------------------------------------------------


def test_bounds_arithmetic():
    a = Bounds(2, 5)
    assert a.add(Bounds(1, 1)) == Bounds(3, 6)
    assert a.scale(-2) == Bounds(-10, -4)
    assert a.scale(0) == Bounds.point(0)
    assert Bounds(None, 4).add(Bounds(1, 1)) == Bounds(None, 5)
    assert Bounds(None, 4).scale(-1) == Bounds(-4, None)
    assert Bounds(2, None).contains(10**9)
    assert not Bounds(2, None).contains(1)
    assert Bounds(None, None).describe() == "[-inf,inf]"


def test_linexpr_algebra_and_describe():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    expr = x.scale(2).add(y).shift(3)
    assert expr.evaluate({"x": 5, "y": 1}) == 14
    assert expr.sub(expr) == LinExpr.of(0)
    assert expr.free_vars == ("x", "y")
    assert expr.describe() == "2*x + y + 3"
    assert x.sub(y).describe() == "x - y"
    assert LinExpr.of(-7).describe() == "-7"


def test_linexpr_cancellation_drops_terms():
    x = LinExpr.var("x")
    assert x.add(x.scale(-1)).terms == ()


def test_problem_rejects_duplicates_and_undeclared():
    problem = Problem()
    x = problem.add_var("x", Interval(0, 4))
    with pytest.raises(ValueError):
        problem.add_var("x", Interval(0, 4))
    with pytest.raises(ValueError):
        problem.require(x, Relation.LE, LinExpr.var("ghost"))
    with pytest.raises(ValueError):
        problem.define_monotone("ghost", lambda v: v, x, "id")


# ---------------------------------------------------------------------------
# Hypothesis: symbolic bounds vs concrete evaluation
# ---------------------------------------------------------------------------

_names = ("a", "b", "c")


@st.composite
def _expr_and_env(draw):
    """A random LinExpr plus bounded domains for its variables."""
    terms = []
    env = {}
    for name in _names:
        if draw(st.booleans()):
            continue
        terms.append((name, draw(st.integers(-4, 4))))
        lo = draw(st.integers(0, 20))
        env[name] = Interval(lo, lo + draw(st.integers(0, 10)))
    # Unmentioned variables may appear in env too; harmless.
    expr = LinExpr(tuple(sorted((n, c) for n, c in terms if c)),
                   draw(st.integers(-50, 50)))
    for name in expr.free_vars:
        env.setdefault(name, Interval(0, 5))
    return expr, env


@given(_expr_and_env(), st.data())
def test_bounds_sound_for_sampled_assignments(expr_env, data):
    """Any in-domain assignment evaluates inside the symbolic bounds."""
    expr, env = expr_env
    bounds = expr.bounds(env)
    assignment = {
        name: data.draw(st.integers(env[name].lo, env[name].hi),
                        label=name)
        for name in expr.free_vars}
    assert bounds.contains(expr.evaluate(assignment))


@given(_expr_and_env(), _expr_and_env(), st.data())
def test_algebra_matches_concrete(ee1, ee2, data):
    """add/sub/scale/shift commute with concrete evaluation."""
    e1, env1 = ee1
    e2, env2 = ee2
    env = {**env1, **env2}
    assignment = {
        name: data.draw(st.integers(env[name].lo, env[name].hi),
                        label=name)
        for name in env}
    factor = data.draw(st.integers(-3, 3), label="factor")
    delta = data.draw(st.integers(-10, 10), label="delta")
    v1, v2 = e1.evaluate(assignment), e2.evaluate(assignment)
    assert e1.add(e2).evaluate(assignment) == v1 + v2
    assert e1.sub(e2).evaluate(assignment) == v1 - v2
    assert e1.scale(factor).evaluate(assignment) == v1 * factor
    assert e1.shift(delta).evaluate(assignment) == v1 + delta


# ---------------------------------------------------------------------------
# Hypothesis: solver vs brute force on small random problems
# ---------------------------------------------------------------------------


@st.composite
def _small_problem(draw):
    """A 2-3 variable problem with small bounded domains."""
    count = draw(st.integers(2, 3))
    problem = Problem()
    for index in range(count):
        lo = draw(st.integers(0, 6))
        problem.add_var(_names[index],
                        Interval(lo, lo + draw(st.integers(0, 6))))
    for _ in range(draw(st.integers(1, 3))):
        lhs_terms = tuple(
            (name, draw(st.integers(-3, 3)))
            for name in list(problem.domains) if draw(st.booleans()))
        lhs = LinExpr(tuple(sorted((n, c) for n, c in lhs_terms if c)),
                      draw(st.integers(-10, 10)))
        rel = draw(st.sampled_from(list(Relation)))
        rhs = LinExpr.of(draw(st.integers(-10, 20)))
        problem.relations.append(RelationalConstraint(lhs, rel, rhs))
    return problem


def _brute_models(problem):
    names = list(problem.domains)
    ranges = [range(problem.domains[n].lo, problem.domains[n].hi + 1)
              for n in names]
    for values in itertools.product(*ranges):
        assignment = dict(zip(names, values))
        if all(c.holds(assignment) for c in problem.relations) and \
                all(c.holds(assignment) for c in problem.monotones):
            yield assignment


@given(_small_problem())
def test_solve_agrees_with_brute_force(problem):
    """sat ⇔ brute force finds a model; sat models satisfy everything."""
    result = problem.solve()
    models = list(_brute_models(problem))
    if result.sat:
        assignment = dict(result.assignment)
        for name, domain in problem.domains.items():
            assert domain.contains(assignment[name])
        assert all(c.holds(assignment) for c in problem.relations)
        assert models, "solver sat but brute force finds nothing"
    else:
        assert result.status == UNSAT
        assert not models, "solver unsat but brute force finds a model"
        assert result.reason


@given(_small_problem())
def test_minimize_is_optimal(problem):
    """The minimized objective equals the brute-force minimum."""
    names = list(problem.domains)
    objective = LinExpr(tuple((name, 1) for name in names), 0)
    result = problem.solve(minimize=objective)
    models = list(_brute_models(problem))
    if not models:
        assert result.status == UNSAT
        return
    assert result.sat
    best = min(objective.evaluate(m) for m in models)
    assert result.objective == best
    assert objective.evaluate(dict(result.assignment)) == best


@given(_small_problem())
def test_solve_is_deterministic(problem):
    """Same problem, same result — byte for byte."""
    first = problem.solve(minimize=LinExpr.var(next(iter(problem.domains))))
    second = problem.solve(minimize=LinExpr.var(next(iter(problem.domains))))
    assert first == second


# ---------------------------------------------------------------------------
# Abstention policy
# ---------------------------------------------------------------------------


def test_abstains_on_unbounded_domain():
    problem = Problem()
    problem.add_var("n", Interval.top())
    result = problem.solve()
    assert result.status == ABSTAIN
    assert "unbounded" in result.reason


def test_propagation_bounds_a_top_domain():
    """A <= constraint can rescue an unbounded variable."""
    problem = Problem()
    n = problem.add_var("n", Interval(0, None))
    problem.require(n, Relation.LE, LinExpr.of(5))
    result = problem.solve(minimize=n)
    assert result.sat
    assert result.value("n") == 0


def test_abstains_on_blown_budget():
    problem = Problem()
    for name in ("a", "b", "c"):
        problem.add_var(name, Interval(0, 99))
    # An unsatisfiable parity-free constraint propagation cannot refute:
    # a + b + c == 1000 is out of reach but each var alone can be pruned
    # no further than its domain.
    total = (LinExpr.var("a").add(LinExpr.var("b"))
             .add(LinExpr.var("c")))
    problem.require(total, Relation.GE, LinExpr.of(0))
    result = problem.solve(minimize=total, node_budget=10)
    assert result.status == ABSTAIN
    assert "budget" in result.reason
    assert result.nodes > 10


def test_unsat_detected_by_propagation():
    problem = Problem()
    n = problem.add_var("n", Interval(0, 4))
    problem.require(n, Relation.GE, LinExpr.of(10))
    result = problem.solve()
    assert result.status == UNSAT
    assert "infeasible" in result.reason


# ---------------------------------------------------------------------------
# Monotone (chunk-rounding) constraints
# ---------------------------------------------------------------------------


@given(st.integers(1, 4096))
def test_monotone_chunk_constraint_matches_allocator(size):
    """chunk == request_to_chunk_size(src) solves to the true geometry."""
    problem = Problem()
    problem.add_var("src", Interval.point(size))
    chunk_domain = Interval.point(size).map(request_to_chunk_size)
    problem.add_var("chunk", chunk_domain)
    problem.define_monotone("chunk", request_to_chunk_size,
                            LinExpr.var("src"), "request_to_chunk_size")
    result = problem.solve()
    assert result.sat
    assert result.value("chunk") == request_to_chunk_size(size)


def test_monotone_constraint_prunes_search():
    """The solved minimal overflow length matches hand geometry.

    src in [48, 64]: the 48-byte request rounds to a 64-byte chunk, so
    an overflow from a 48-byte payload must cross 64-48 header+slack
    bytes to touch the next chunk — l >= chunk - src + 1 minimizes at
    src=64 (chunk 80, l = 17).
    """
    problem = Problem()
    src = problem.add_var("src", Interval(48, 64))
    problem.add_var("chunk",
                    Interval(48, 64).map(request_to_chunk_size))
    problem.add_var("l", Interval(1, 64))
    problem.define_monotone("chunk", request_to_chunk_size, src,
                            "request_to_chunk_size")
    problem.require(LinExpr.var("l"), Relation.GE,
                    LinExpr.var("chunk").sub(src).shift(1))
    result = problem.solve(minimize=LinExpr.var("l"))
    assert result.sat
    src_val, chunk_val = result.value("src"), result.value("chunk")
    assert chunk_val == request_to_chunk_size(src_val)
    assert result.value("l") == chunk_val - src_val + 1
    # Exhaustive check that no smaller l exists anywhere in the domain.
    best = min(request_to_chunk_size(s) - s + 1 for s in range(48, 65))
    assert result.value("l") == best
