"""Allocation statistics counters."""

import pytest

from repro.allocator.stats import AllocationStats


def test_per_api_counters():
    stats = AllocationStats()
    stats.record_alloc("malloc", 100)
    stats.record_alloc("malloc", 50)
    stats.record_alloc("calloc", 200)
    stats.record_alloc("realloc", 10)
    stats.record_alloc("memalign", 64)
    stats.record_alloc("aligned_alloc", 64)
    assert stats.malloc_calls == 2
    assert stats.calloc_calls == 1
    assert stats.realloc_calls == 1
    assert stats.memalign_calls == 2
    assert stats.total_allocations == 6


def test_unknown_api_rejected():
    stats = AllocationStats()
    with pytest.raises(ValueError):
        stats.record_alloc("valloc", 8)


def test_live_and_peak_tracking():
    stats = AllocationStats()
    stats.record_alloc("malloc", 100)
    stats.record_alloc("malloc", 300)
    assert stats.bytes_live == 400
    assert stats.bytes_peak == 400
    assert stats.peak_buffers == 2
    stats.record_free(300)
    assert stats.bytes_live == 100
    assert stats.live_buffers == 1
    assert stats.bytes_peak == 400  # peak is sticky
    stats.record_alloc("malloc", 50)
    assert stats.bytes_peak == 400


def test_size_histogram_buckets_by_power_of_two():
    stats = AllocationStats()
    for size in (1, 2, 3, 4, 1000):
        stats.record_alloc("malloc", size)
    assert stats.size_histogram[1] == 1      # size 1
    assert stats.size_histogram[2] == 2      # sizes 2, 3
    assert stats.size_histogram[3] == 1      # size 4
    assert stats.size_histogram[10] == 1     # size 1000


def test_snapshot_round_trips_fields():
    stats = AllocationStats()
    stats.record_alloc("calloc", 128)
    snapshot = stats.snapshot()
    assert snapshot["calloc"] == 1
    assert snapshot["bytes_allocated"] == 128
    assert snapshot["live_buffers"] == 1
