"""Batched allocation runs: ``malloc_run``/``free_run`` equivalence.

The serving engine's request batches land on the allocators through the
batched entry points, whose uniform-shape fast paths (one size class,
one large length, all-plain metadata) must produce exactly the
addresses, stats and errors ``n`` scalar calls would.  Every test here
drives a batched allocator and a scalar twin and compares observables.
"""

import pytest

from repro.allocator.segregated import (
    MAX_CLASS,
    SegregatedAllocator,
)
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.machine import DoubleFree, InvalidFree, PAGE_SIZE
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.vulntypes import VulnType

LARGE = MAX_CLASS + 1000


def twin_run(sizes, map_cache=0):
    """Batched and scalar twins over fresh, deterministic memory."""
    batched = SegregatedAllocator(map_cache=map_cache)
    scalar = SegregatedAllocator(map_cache=map_cache)
    got = batched.malloc_run(sizes)
    want = [scalar.malloc(size) for size in sizes]
    return batched, scalar, got, want


class TestSegregatedMallocRun:
    @pytest.mark.parametrize("sizes", [
        [48] * 10,                 # uniform small (one class)
        [48] * 2000,               # uniform small across slab refills
        [LARGE] * 6,               # uniform large
        [48, 48, 64, LARGE, 48],   # mixed: generic loop
        [0, 1, 16],                # zero-size and boundary
        [],                        # empty run
    ])
    def test_matches_scalar_twin(self, sizes):
        batched, scalar, got, want = twin_run(sizes)
        assert got == want
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        assert batched.live_buffer_count == scalar.live_buffer_count

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            SegregatedAllocator().malloc_run([16, -1])

    def test_uniform_large_drains_map_cache_lifo(self):
        allocator = SegregatedAllocator(map_cache=8)
        first = allocator.malloc_run([LARGE] * 4)
        allocator.free_run(first)
        # The batched refill must reuse the cached mappings in the LIFO
        # order four scalar mallocs would (last freed first), then map
        # fresh for the remainder.
        again = allocator.malloc_run([LARGE] * 6)
        assert again[:4] == list(reversed(first))
        assert len(set(again)) == 6


class TestSegregatedFreeRun:
    def test_uniform_slot_run_returns_slots_for_reuse(self):
        batched, scalar, got, want = twin_run([48] * 20)
        batched.free_run(got)
        for address in want:
            scalar.free(address)
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        # Freed slots are reusable in the same (stack) order.
        assert batched.malloc_run([48] * 20) \
            == [scalar.malloc(48) for _ in range(20)]

    def test_uniform_large_run_unmaps_eagerly(self):
        allocator = SegregatedAllocator()
        addresses = allocator.malloc_run([LARGE] * 4)
        allocator.free_run(addresses)
        for address in addresses:
            assert not allocator.memory.is_mapped(address)

    def test_uniform_large_run_respects_cache_limit(self):
        allocator = SegregatedAllocator(map_cache=2)
        addresses = allocator.malloc_run([LARGE] * 5)
        allocator.free_run(addresses)
        cached = [address for address in addresses
                  if allocator.memory.is_mapped(address)]
        assert len(cached) == 2

    def test_mixed_run_matches_scalar_twin(self):
        sizes = [48, LARGE, 64, 48, LARGE]
        batched, scalar, got, want = twin_run(sizes)
        batched.free_run(got)
        for address in want:
            scalar.free(address)
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        assert batched.live_buffer_count == scalar.live_buffer_count == 0

    def test_null_addresses_skipped(self):
        """``free(NULL)`` is a no-op and doesn't count — run included."""
        allocator = SegregatedAllocator()
        address = allocator.malloc(48)
        allocator.free_run([0, address, 0])
        assert allocator.live_buffer_count == 0
        allocator.free_run([0, 0])
        assert allocator.stats.snapshot()["free"] == 1

    def test_double_free_within_run_is_canonical(self):
        """A duplicate inside one run raises exactly what scalar replay
        raises, with the prefix released and no entry lost."""
        allocator = SegregatedAllocator()
        a, b = allocator.malloc_run([48, 48])
        with pytest.raises(DoubleFree):
            allocator.free_run([a, b, a])
        assert allocator.live_buffer_count == 0

    def test_free_of_retired_address_raises_double_free(self):
        allocator = SegregatedAllocator()
        a = allocator.malloc(48)
        allocator.free(a)
        b = allocator.malloc(4096 * 4)
        with pytest.raises(DoubleFree):
            allocator.free_run([b, a])
        # The prefix (b) was released before the error, as scalar would.
        assert allocator.live_buffer_count == 0

    def test_invalid_free_raises_and_restores_state(self):
        allocator = SegregatedAllocator()
        addresses = allocator.malloc_run([48] * 3)
        bogus = 0x5EAF00D000
        with pytest.raises(InvalidFree):
            allocator.free_run([bogus] + addresses)
        # Nothing was released before the faulting first element; every
        # allocation is still live and individually freeable.
        assert allocator.live_buffer_count == 3
        allocator.free_run(addresses)
        assert allocator.live_buffer_count == 0


class _FixedContext(ContextSource):
    def __init__(self, ccid=0x42):
        self.ccid = ccid

    def current_ccid(self):
        return self.ccid


def defended_pair(table=None, ccid=0x42):
    def make():
        return DefendedAllocator(SegregatedAllocator(),
                                 table or PatchTable.empty(),
                                 context_source=_FixedContext(ccid))
    return make(), make()


class TestDefendedRuns:
    @pytest.mark.parametrize("sizes", [
        [120] * 16,              # uniform: list-repeat stamp fast path
        [120, 120, 64, 120],     # mixed sizes: per-element stamps
    ])
    def test_malloc_run_matches_scalar_twin(self, sizes):
        batched, scalar = defended_pair()
        got = batched.malloc_run(sizes)
        want = [scalar.malloc(size) for size in sizes]
        assert got == want
        for address, size in zip(got, sizes):
            assert batched.malloc_usable_size(address) == size

    def test_all_plain_free_run_matches_scalar_twin(self):
        batched, scalar = defended_pair()
        got = batched.malloc_run([120] * 16)
        want = [scalar.malloc(120) for _ in range(16)]
        batched.free_run(got)
        for address in want:
            scalar.free(address)
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        assert batched.underlying.live_buffer_count \
            == scalar.underlying.live_buffer_count

    def test_mixed_guarded_and_plain_free_run(self):
        """Patched (guarded) and plain buffers freed in one run: the
        decoding frees take the scalar path, the plain remainder the
        batched one, and every buffer ends up released."""
        table = PatchTable([HeapPatch("malloc", 0x42, VulnType.OVERFLOW)])
        batched, _ = defended_pair(table=table)
        guarded = [batched.malloc(100) for _ in range(3)]
        batched.context_source.ccid = 0x43  # subsequent allocs unpatched
        plain = batched.malloc_run([100] * 5)
        batched.free_run([plain[0], guarded[0], plain[1], guarded[1],
                          plain[2], guarded[2], plain[3], plain[4]])
        assert batched.underlying.live_buffer_count == 0
