"""LibcAllocator behaviour: API semantics, coalescing, reuse, errors."""

import pytest

from repro.allocator import (
    CHUNK_ALIGN,
    HEADER_SIZE,
    LibcAllocator,
    MIN_CHUNK_SIZE,
    SMALL_MAX,
    TRIM_THRESHOLD,
)
from repro.machine import DoubleFree, InvalidFree


class TestMallocFree:
    def test_malloc_returns_distinct_aligned_pointers(self, allocator):
        pointers = [allocator.malloc(n) for n in (0, 1, 15, 16, 17, 1000)]
        assert len(set(pointers)) == len(pointers)
        for pointer in pointers:
            assert pointer % CHUNK_ALIGN == 0

    def test_malloc_zero_returns_unique_pointer(self, allocator):
        a = allocator.malloc(0)
        b = allocator.malloc(0)
        assert a and b and a != b

    def test_data_survives_other_allocations(self, allocator):
        a = allocator.malloc(100)
        allocator.memory.write(a, b"A" * 100)
        b = allocator.malloc(200)
        allocator.memory.write(b, b"B" * 200)
        assert allocator.memory.read(a, 100) == b"A" * 100
        assert allocator.memory.read(b, 200) == b"B" * 200

    def test_free_null_is_noop(self, allocator):
        allocator.free(0)

    def test_free_makes_memory_reusable(self, allocator):
        a = allocator.malloc(64)
        allocator.free(a)
        b = allocator.malloc(64)
        assert b == a  # LIFO bin reuse

    def test_live_buffer_count(self, allocator):
        pointers = [allocator.malloc(32) for _ in range(5)]
        assert allocator.live_buffer_count == 5
        for pointer in pointers:
            allocator.free(pointer)
        assert allocator.live_buffer_count == 0

    def test_usable_size_at_least_requested(self, allocator):
        pointer = allocator.malloc(100)
        assert allocator.malloc_usable_size(pointer) >= 100
        assert allocator.malloc_usable_size(0) == 0


class TestErrors:
    def test_double_free_detected(self, allocator):
        pointer = allocator.malloc(64)
        allocator.free(pointer)
        with pytest.raises(DoubleFree):
            allocator.free(pointer)

    def test_free_of_foreign_pointer_rejected(self, allocator):
        with pytest.raises(InvalidFree):
            allocator.free(0x1234_5678)

    def test_free_of_interior_pointer_rejected(self, allocator):
        pointer = allocator.malloc(256)
        with pytest.raises(InvalidFree):
            allocator.free(pointer + 8)

    def test_realloc_of_foreign_pointer_rejected(self, allocator):
        with pytest.raises(InvalidFree):
            allocator.realloc(0xDEAD_0000, 10)

    def test_calloc_rejects_negative(self, allocator):
        with pytest.raises(ValueError):
            allocator.calloc(-1, 8)

    def test_memalign_rejects_non_power_of_two(self, allocator):
        with pytest.raises(ValueError):
            allocator.memalign(24, 64)


class TestCoalescing:
    def test_adjacent_frees_coalesce(self, allocator):
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        c = allocator.malloc(64)  # keeps the top region away
        allocator.memory.write(c, b"c")
        allocator.free(a)
        allocator.free(b)
        allocator.check_consistency()
        # The two freed chunks merged into one; a request spanning both
        # is served from it without growing the heap.
        merged = allocator.malloc(128)
        assert merged == a
        allocator.check_consistency()

    def test_backward_coalesce(self, allocator):
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        c = allocator.malloc(64)
        allocator.memory.write(c, b"c")
        allocator.free(b)
        allocator.free(a)  # must merge into the free b-chunk
        allocator.check_consistency()
        merged = allocator.malloc(128)
        assert merged == a

    def test_free_adjacent_to_top_merges_into_top(self, allocator):
        a = allocator.malloc(64)
        top_before = allocator.top
        allocator.free(a)
        assert allocator.top < top_before
        assert allocator.free_chunk_count == 0

    def test_split_leaves_usable_remainder(self, allocator):
        a = allocator.malloc(1024)
        sentinel = allocator.malloc(16)
        allocator.memory.write(sentinel, b"s")
        allocator.free(a)
        small = allocator.malloc(100)
        assert small == a  # split of the freed chunk
        second = allocator.malloc(64)
        assert a < second < sentinel
        allocator.check_consistency()


class TestRealloc:
    def test_realloc_null_is_malloc(self, allocator):
        pointer = allocator.realloc(0, 64)
        assert pointer != 0
        assert allocator.live_buffer_count == 1

    def test_realloc_zero_is_free(self, allocator):
        pointer = allocator.malloc(64)
        assert allocator.realloc(pointer, 0) == 0
        assert allocator.live_buffer_count == 0

    def test_realloc_shrink_in_place(self, allocator):
        pointer = allocator.malloc(1024)
        allocator.memory.write(pointer, b"payload!")
        assert allocator.realloc(pointer, 64) == pointer
        assert allocator.memory.read(pointer, 8) == b"payload!"
        allocator.check_consistency()

    def test_realloc_grow_into_top(self, allocator):
        pointer = allocator.malloc(64)
        allocator.memory.write(pointer, b"grow-me!")
        grown = allocator.realloc(pointer, 4096)
        assert grown == pointer  # last chunk extends in place
        assert allocator.memory.read(grown, 8) == b"grow-me!"

    def test_realloc_grow_absorbs_free_neighbour(self, allocator):
        a = allocator.malloc(64)
        b = allocator.malloc(256)
        c = allocator.malloc(64)
        allocator.memory.write(a, b"keep-a!!")
        allocator.memory.write(c, b"keep-c!!")
        allocator.free(b)
        grown = allocator.realloc(a, 200)
        assert grown == a
        assert allocator.memory.read(c, 8) == b"keep-c!!"
        allocator.check_consistency()

    def test_realloc_move_copies_data(self, allocator):
        a = allocator.malloc(64)
        blocker = allocator.malloc(64)
        allocator.memory.write(a, bytes(range(64)))
        allocator.memory.write(blocker, b"x" * 64)
        moved = allocator.realloc(a, 8 * 1024)
        assert moved != a
        assert allocator.memory.read(moved, 64) == bytes(range(64))
        assert allocator.memory.read(blocker, 64) == b"x" * 64
        allocator.check_consistency()


class TestCalloc:
    def test_calloc_zeroes(self, allocator):
        dirty = allocator.malloc(512)
        allocator.memory.write(dirty, b"\xff" * 512)
        allocator.free(dirty)
        pointer = allocator.calloc(8, 64)
        assert allocator.memory.read(pointer, 512) == bytes(512)

    def test_calloc_counts_in_stats(self, allocator):
        allocator.calloc(4, 16)
        assert allocator.stats.calloc_calls == 1
        assert allocator.stats.malloc_calls == 0


class TestMemalign:
    @pytest.mark.parametrize("alignment", [8, 16, 32, 64, 256, 4096])
    def test_alignment_honoured(self, allocator, alignment):
        pointer = allocator.memalign(alignment, 100)
        assert pointer % alignment == 0
        allocator.memory.write(pointer, b"z" * 100)
        allocator.check_consistency()

    def test_memalign_free_roundtrip(self, allocator):
        pointers = [allocator.memalign(64, 100) for _ in range(8)]
        for pointer in pointers:
            allocator.free(pointer)
        allocator.check_consistency()
        assert allocator.live_buffer_count == 0

    def test_aligned_alloc_alias(self, allocator):
        pointer = allocator.aligned_alloc(128, 50)
        assert pointer % 128 == 0

    def test_posix_memalign_requires_word_multiple(self, allocator):
        with pytest.raises(ValueError):
            allocator.posix_memalign(4, 64)


class TestHeapDiscipline:
    def test_walk_tiles_heap_exactly(self, allocator):
        for n in (10, 200, 3000, 64):
            allocator.malloc(n)
        chunks = allocator.walk_heap()
        cursor = allocator.heap_start
        for chunk in chunks:
            assert chunk.base == cursor
            cursor = chunk.next_base
        assert cursor == allocator.top

    def test_trim_returns_memory_to_system(self, allocator):
        # Several sub-mmap-threshold chunks grow the brk heap; freeing
        # them all leaves a huge top region that must be trimmed.
        chunks = [allocator.malloc(100 * 1024) for _ in range(6)]
        brk_high = allocator.memory.brk
        for chunk in chunks:
            allocator.free(chunk)
        assert allocator.memory.brk < brk_high

    def test_large_bin_best_fit(self, allocator):
        big = allocator.malloc(SMALL_MAX * 4)
        separator = allocator.malloc(64)
        small = allocator.malloc(SMALL_MAX * 2)
        keeper = allocator.malloc(64)
        allocator.memory.write(separator, b"s")
        allocator.memory.write(keeper, b"k")
        allocator.free(big)
        allocator.free(small)
        # Best fit should pick the smaller of the two free chunks.
        taken = allocator.malloc(SMALL_MAX + SMALL_MAX // 2)
        assert taken == small
        allocator.check_consistency()
