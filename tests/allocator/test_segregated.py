"""Segregated-storage allocator and allocator-independence."""

import pytest

from repro.allocator.segregated import (
    MAX_CLASS,
    MIN_CLASS,
    SegregatedAllocator,
    _size_class,
)
from repro.machine import DoubleFree, InvalidFree, PAGE_SIZE


class TestSizeClasses:
    def test_rounding(self):
        assert _size_class(1) == MIN_CLASS
        assert _size_class(16) == 16
        assert _size_class(17) == 32
        assert _size_class(100) == 128
        assert _size_class(4096) == 4096


class TestBasicApi:
    def test_malloc_free_reuse_within_class(self):
        allocator = SegregatedAllocator()
        a = allocator.malloc(50)
        allocator.free(a)
        b = allocator.malloc(60)  # same 64-byte class
        assert b == a

    def test_distinct_classes_distinct_slabs(self):
        allocator = SegregatedAllocator()
        small = allocator.malloc(16)
        big = allocator.malloc(2000)
        assert abs(small - big) >= PAGE_SIZE

    def test_data_integrity(self):
        allocator = SegregatedAllocator()
        pointers = {}
        for i, size in enumerate((10, 100, 1000, 5000, 100_000)):
            address = allocator.malloc(size)
            pattern = bytes((i + j) % 251 for j in range(size))
            allocator.memory.write(address, pattern)
            pointers[address] = pattern
        for address, pattern in pointers.items():
            assert allocator.memory.read(address, len(pattern)) == pattern

    def test_large_objects_unmapped_on_free(self):
        allocator = SegregatedAllocator()
        address = allocator.malloc(100_000)
        allocator.memory.write(address, b"x")
        allocator.free(address)
        assert not allocator.memory.is_mapped(address)

    def test_calloc_zeroes(self):
        allocator = SegregatedAllocator()
        a = allocator.malloc(64)
        allocator.memory.write(a, b"\xff" * 64)
        allocator.free(a)
        b = allocator.calloc(4, 16)
        assert allocator.memory.read(b, 64) == bytes(64)

    def test_realloc_copies(self):
        allocator = SegregatedAllocator()
        a = allocator.malloc(32)
        allocator.memory.write(a, bytes(range(32)))
        b = allocator.realloc(a, 8192)
        assert allocator.memory.read(b, 32) == bytes(range(32))

    @pytest.mark.parametrize("alignment", [16, 64, 1024, 4096, 16384])
    def test_memalign(self, alignment):
        allocator = SegregatedAllocator()
        address = allocator.memalign(alignment, 100)
        assert address % alignment == 0
        allocator.memory.write(address, b"y" * 100)
        allocator.free(address)

    def test_usable_size(self):
        allocator = SegregatedAllocator()
        assert allocator.malloc_usable_size(allocator.malloc(50)) == 64
        big = allocator.malloc(MAX_CLASS + 1)
        assert allocator.malloc_usable_size(big) >= MAX_CLASS + 1

    def test_double_free(self):
        allocator = SegregatedAllocator()
        a = allocator.malloc(32)
        allocator.free(a)
        with pytest.raises(DoubleFree):
            allocator.free(a)

    def test_invalid_free(self):
        allocator = SegregatedAllocator()
        with pytest.raises(InvalidFree):
            allocator.free(0x1234)

    def test_live_count(self):
        allocator = SegregatedAllocator()
        pointers = [allocator.malloc(64) for _ in range(10)]
        assert allocator.live_buffer_count == 10
        for pointer in pointers:
            allocator.free(pointer)
        assert allocator.live_buffer_count == 0


class TestAllocatorIndependence:
    """Paper property (5): the same pipeline over different allocators."""

    def test_full_pipeline_over_segregated_heap(self):
        from repro.core.pipeline import HeapTherapy
        from repro.workloads.vulnerable import HeartbleedService

        program = HeartbleedService()
        system = HeapTherapy(program,
                             allocator_factory=SegregatedAllocator)
        native = system.run_native(HeartbleedService.attack_input())
        assert program.attack_succeeded(native.result)
        generation = system.generate_patches(
            HeartbleedService.attack_input())
        assert generation.detected
        defended = system.run_defended(generation.patches,
                                       HeartbleedService.attack_input())
        outcome = None if defended.blocked else defended.result
        assert not program.attack_succeeded(outcome)
        benign = system.run_defended(generation.patches,
                                     HeartbleedService.benign_input())
        assert program.benign_works(benign.result)

    def test_patches_are_allocator_portable(self):
        """The same config file protects over either allocator: patches
        key on calling contexts, which are a property of the program."""
        from repro.allocator.libc import LibcAllocator
        from repro.core.pipeline import HeapTherapy
        from repro.workloads.vulnerable import GhostXpsRenderer

        program = GhostXpsRenderer()
        libc_system = HeapTherapy(program,
                                  allocator_factory=LibcAllocator)
        patches = libc_system.generate_patches(
            GhostXpsRenderer.attack_input()).patches

        seg_system = HeapTherapy(program,
                                 allocator_factory=SegregatedAllocator)
        run = seg_system.run_defended(patches,
                                      GhostXpsRenderer.attack_input())
        outcome = None if run.blocked else run.result
        assert not program.attack_succeeded(outcome)

    @pytest.mark.parametrize("case_index", [0, 9, 16])
    def test_samate_cases_over_segregated_heap(self, case_index):
        from repro.core.pipeline import HeapTherapy
        from repro.workloads.vulnerable import all_samate_cases

        case = all_samate_cases()[case_index]
        system = HeapTherapy(case, allocator_factory=SegregatedAllocator)
        generation = system.generate_patches(case.attack_input())
        assert generation.detected
        defended = system.run_defended(generation.patches,
                                       case.attack_input())
        outcome = None if defended.blocked else defended.result
        assert not case.attack_succeeded(outcome)
