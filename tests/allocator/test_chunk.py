"""Chunk header encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allocator.chunk import (
    CHUNK_ALIGN,
    HEADER_SIZE,
    MIN_CHUNK_SIZE,
    read_chunk,
    request_to_chunk_size,
    set_in_use,
    set_prev_size,
    write_chunk,
)
from repro.machine.memory import VirtualMemory


@pytest.fixture
def heap_page(memory):
    return memory.mmap(4096)


def test_request_to_chunk_size_minimum():
    assert request_to_chunk_size(0) == MIN_CHUNK_SIZE
    assert request_to_chunk_size(1) == MIN_CHUNK_SIZE
    assert request_to_chunk_size(16) == MIN_CHUNK_SIZE


def test_request_to_chunk_size_alignment():
    assert request_to_chunk_size(17) == 48
    assert request_to_chunk_size(48) == 64
    assert request_to_chunk_size(100) % CHUNK_ALIGN == 0


def test_request_to_chunk_size_rejects_negative():
    with pytest.raises(ValueError):
        request_to_chunk_size(-1)


@given(st.integers(min_value=0, max_value=1 << 20))
def test_request_size_properties(request):
    size = request_to_chunk_size(request)
    assert size >= request + HEADER_SIZE
    assert size % CHUNK_ALIGN == 0
    assert size >= MIN_CHUNK_SIZE
    # Never wastes more than one alignment quantum beyond the header.
    assert size <= max(request + HEADER_SIZE + CHUNK_ALIGN - 1,
                       MIN_CHUNK_SIZE)


def test_write_read_roundtrip(memory, heap_page):
    write_chunk(memory, heap_page, 64, 32, in_use=True)
    chunk = read_chunk(memory, heap_page)
    assert chunk.base == heap_page
    assert chunk.size == 64
    assert chunk.prev_size == 32
    assert chunk.in_use
    assert chunk.user_address == heap_page + HEADER_SIZE
    assert chunk.user_size == 64 - HEADER_SIZE
    assert chunk.next_base == heap_page + 64
    assert chunk.prev_base == heap_page - 32


def test_write_chunk_rejects_illegal_size(memory, heap_page):
    with pytest.raises(ValueError):
        write_chunk(memory, heap_page, 24, 0, in_use=True)
    with pytest.raises(ValueError):
        write_chunk(memory, heap_page, 40, 0, in_use=True)


def test_set_in_use_flips_only_flag(memory, heap_page):
    write_chunk(memory, heap_page, 96, 48, in_use=False)
    set_in_use(memory, heap_page, True)
    chunk = read_chunk(memory, heap_page)
    assert chunk.in_use and chunk.size == 96 and chunk.prev_size == 48
    set_in_use(memory, heap_page, False)
    assert not read_chunk(memory, heap_page).in_use


def test_set_prev_size(memory, heap_page):
    write_chunk(memory, heap_page, 96, 48, in_use=True)
    set_prev_size(memory, heap_page, 112)
    chunk = read_chunk(memory, heap_page)
    assert chunk.prev_size == 112 and chunk.size == 96


@given(size=st.integers(min_value=2, max_value=1 << 16).map(lambda n: n * 16),
       prev=st.integers(min_value=0, max_value=1 << 20).map(lambda n: n * 16),
       in_use=st.booleans())
def test_roundtrip_property(size, prev, in_use):
    memory = VirtualMemory()
    base = memory.mmap(1 << 21)
    write_chunk(memory, base, size, prev, in_use)
    chunk = read_chunk(memory, base)
    assert (chunk.size, chunk.prev_size, chunk.in_use) == (size, prev, in_use)
