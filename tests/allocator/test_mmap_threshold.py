"""Large allocations via dedicated mappings (M_MMAP_THRESHOLD)."""

import pytest

from repro.allocator.libc import MMAP_THRESHOLD, LibcAllocator
from repro.machine import DoubleFree, HEAP_BASE, MMAP_BASE


BIG = MMAP_THRESHOLD + 1024
SMALL = 4096


@pytest.fixture
def allocator():
    return LibcAllocator()


def test_big_allocations_live_in_mmap_area(allocator):
    address = allocator.malloc(BIG)
    assert address >= MMAP_BASE
    small = allocator.malloc(SMALL)
    assert HEAP_BASE <= small < MMAP_BASE


def test_big_free_unmaps_immediately(allocator):
    address = allocator.malloc(BIG)
    allocator.memory.write(address, b"x" * BIG)
    resident_before = allocator.memory.resident_pages
    allocator.free(address)
    assert allocator.memory.resident_pages < resident_before
    assert not allocator.memory.is_mapped(address)


def test_big_calloc_is_zero_without_touching_pages(allocator):
    address = allocator.calloc(1, BIG)
    assert allocator.memory.read(address, 4096) == bytes(4096)
    # The zero guarantee came from fresh pages, not a memset.
    assert allocator.memory.resident_pages <= 2


def test_usable_size_spans_mapping(allocator):
    address = allocator.malloc(BIG)
    assert allocator.malloc_usable_size(address) >= BIG


def test_double_free_of_mmapped_detected(allocator):
    address = allocator.malloc(BIG)
    allocator.free(address)
    with pytest.raises((DoubleFree, Exception)):
        allocator.free(address)


def test_realloc_heap_to_mmap_and_back(allocator):
    small = allocator.malloc(1024)
    allocator.memory.write(small, b"m" * 1024)
    big = allocator.realloc(small, BIG)
    assert big >= MMAP_BASE
    assert allocator.memory.read(big, 1024) == b"m" * 1024
    back = allocator.realloc(big, 2048)
    assert back < MMAP_BASE
    assert allocator.memory.read(back, 1024) == b"m" * 1024
    allocator.check_consistency()


def test_realloc_mmap_to_mmap(allocator):
    first = allocator.malloc(BIG)
    allocator.memory.write(first, b"q" * 64)
    second = allocator.realloc(first, BIG * 2)
    assert second >= MMAP_BASE
    assert allocator.memory.read(second, 64) == b"q" * 64
    assert not allocator.memory.is_mapped(first)


def test_stats_cover_mmapped(allocator):
    address = allocator.malloc(BIG)
    assert allocator.stats.bytes_live == BIG
    allocator.free(address)
    assert allocator.stats.bytes_live == 0
    assert allocator.live_buffer_count == 0


def test_heap_consistency_untouched_by_mmapped_traffic(allocator):
    pointers = [allocator.malloc(s) for s in (100, BIG, 200, BIG * 2, 300)]
    allocator.check_consistency()
    for pointer in pointers:
        allocator.free(pointer)
    allocator.check_consistency()


def test_defense_over_mmapped_buffers():
    """A patched buffer big enough for the mmap path still gets its
    guard page and survives free (pi recovery works on mappings)."""
    from repro.defense.interpose import DefendedAllocator
    from repro.defense.patch_table import PatchTable
    from repro.patch.model import HeapPatch
    from repro.vulntypes import VulnType
    from repro.machine.errors import SegmentationFault
    from repro.program.context import ContextSource

    class Fixed(ContextSource):
        def current_ccid(self):
            return 0x42

    table = PatchTable([HeapPatch("malloc", 0x42, VulnType.OVERFLOW)])
    defended = DefendedAllocator(LibcAllocator(), table,
                                 context_source=Fixed())
    address = defended.malloc(BIG)
    defended.memory.write(address, b"g" * BIG)
    with pytest.raises(SegmentationFault):
        defended.memory.write(address, b"g" * (BIG + 8192))
    defended.free(address)
