"""Property-based allocator torture: invariants under random op sequences.

Hypothesis drives arbitrary interleavings of the allocation API while the
test maintains a model of live buffers and their contents.  After every
step the heap must tile exactly, ``prev_size`` links must agree, the free
index must match the headers, and no live buffer's data may change.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.allocator.libc import LibcAllocator

_sizes = st.integers(min_value=0, max_value=5000)
_alignments = st.sampled_from([8, 16, 32, 64, 128, 4096])


def _pattern(address: int, size: int) -> bytes:
    return bytes((address + i) % 251 for i in range(size))


class AllocatorMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.allocator = LibcAllocator()
        self.live: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(size=_sizes)
    def malloc(self, size):
        address = self.allocator.malloc(size)
        assert address not in self.live
        self._fill(address, size)

    @rule(size=st.integers(min_value=0, max_value=600),
          count=st.integers(min_value=1, max_value=8))
    def calloc(self, size, count):
        address = self.allocator.calloc(count, size)
        total = count * size
        assert self.allocator.memory.read(address, max(total, 1))[:total] \
            == bytes(total)
        self._fill(address, total)

    @rule(alignment=_alignments, size=_sizes)
    def memalign(self, alignment, size):
        address = self.allocator.memalign(alignment, size)
        assert address % alignment == 0
        self._fill(address, size)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(min_value=0), size=_sizes)
    def realloc(self, index, size):
        address = sorted(self.live)[index % len(self.live)]
        old_size = self.live.pop(address)
        new_address = self.allocator.realloc(address, size)
        if size == 0:
            assert new_address == 0
            return
        kept = min(old_size, size)
        assert (self.allocator.memory.read(new_address, max(kept, 1))[:kept]
                == _pattern(address, old_size)[:kept])
        # Restore the canonical pattern for the new identity.
        self._fill(new_address, size)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(min_value=0))
    def free(self, index):
        address = sorted(self.live)[index % len(self.live)]
        del self.live[address]
        self.allocator.free(address)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def heap_is_consistent(self):
        self.allocator.check_consistency()

    @invariant()
    def live_data_is_intact(self):
        for address, size in self.live.items():
            if size:
                assert (self.allocator.memory.read(address, size)
                        == _pattern(address, size))

    @invariant()
    def live_count_matches(self):
        assert self.allocator.live_buffer_count == len(self.live)

    # ------------------------------------------------------------------

    def _fill(self, address: int, size: int) -> None:
        if size:
            self.allocator.memory.write(address, _pattern(address, size))
        self.live[address] = size


AllocatorMachine.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)

TestAllocatorMachine = AllocatorMachine.TestCase


@given(st.lists(st.integers(min_value=0, max_value=2000),
                min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_alloc_all_then_free_all_returns_heap_to_pristine(sizes):
    allocator = LibcAllocator()
    pointers = [allocator.malloc(size) for size in sizes]
    for pointer in reversed(pointers):
        allocator.free(pointer)
    allocator.check_consistency()
    assert allocator.live_buffer_count == 0
    assert allocator.free_chunk_count == 0  # everything merged into top
    assert allocator.top == allocator.heap_start
