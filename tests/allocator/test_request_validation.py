"""Request validation at the allocation API: ``calloc`` product
overflow (glibc's size_t check) and the ``posix_memalign`` alignment
contract — in the base allocators and through the defense interposer.
"""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.allocator.segregated import SegregatedAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.machine.errors import OutOfMemoryError
from repro.machine.layout import SIZE_MAX


def _defended():
    return DefendedAllocator(LibcAllocator(), PatchTable.empty())


ALLOCATORS = {
    "libc": LibcAllocator,
    "segregated": SegregatedAllocator,
    "defended": _defended,
}


@pytest.fixture(params=sorted(ALLOCATORS))
def heap(request):
    return ALLOCATORS[request.param]()


class TestCallocOverflow:
    def test_product_over_size_max_rejected(self, heap):
        with pytest.raises(OutOfMemoryError):
            heap.calloc(SIZE_MAX, 2)

    def test_just_over_the_edge_rejected(self, heap):
        nmemb = (SIZE_MAX // 8) + 1
        with pytest.raises(OutOfMemoryError):
            heap.calloc(nmemb, 8)

    def test_negative_arguments_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.calloc(-1, 8)
        with pytest.raises(ValueError):
            heap.calloc(8, -1)

    def test_reasonable_product_still_works(self, heap):
        address = heap.calloc(16, 16)
        assert address != 0
        assert heap.memory.read(address, 256) == bytes(256)
        heap.free(address)

    def test_zero_members_is_legal(self, heap):
        address = heap.calloc(0, SIZE_MAX)  # product is 0: no overflow
        heap.free(address)


class TestPosixMemalignAlignment:
    @pytest.mark.parametrize("alignment", [24, 40, 48, 56, 72, 1000])
    def test_non_power_of_two_rejected(self, heap, alignment):
        assert alignment % 8 == 0  # multiple-of-pointer-size, yet invalid
        with pytest.raises(ValueError):
            heap.posix_memalign(alignment, 64)

    @pytest.mark.parametrize("alignment", [1, 2, 4, 7, 12])
    def test_non_multiple_of_pointer_size_rejected(self, heap, alignment):
        with pytest.raises(ValueError):
            heap.posix_memalign(alignment, 64)

    def test_zero_and_negative_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.posix_memalign(0, 64)
        with pytest.raises(ValueError):
            heap.posix_memalign(-16, 64)

    @pytest.mark.parametrize("alignment", [8, 16, 64, 256, 4096])
    def test_valid_alignments_honoured(self, heap, alignment):
        address = heap.posix_memalign(alignment, 100)
        assert address % alignment == 0
        heap.free(address)

    def test_failed_call_allocates_nothing(self, heap):
        before = heap.stats.live_buffers
        with pytest.raises(ValueError):
            heap.posix_memalign(24, 64)
        assert heap.stats.live_buffers == before
