"""Offline patch generation by attack replay."""

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.machine.errors import SegmentationFault
from repro.patch.generator import OfflinePatchGenerator
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program
from repro.shadow.report import AnalysisReport, BufferRecord, ShadowWarning
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import HeartbleedService


def generator_for(program, strategy=Strategy.INCREMENTAL):
    plan = InstrumentationPlan.build(program.graph,
                                     program.graph.allocation_targets,
                                     strategy)
    codec = SCHEMES["pcc"].build(plan)
    return OfflinePatchGenerator(program, codec)


class TestReplay:
    def test_heartbleed_attack_yields_mixed_patch(self):
        program = HeartbleedService()
        generator = generator_for(program)
        result = generator.replay(HeartbleedService.attack_input())
        assert result.detected
        assert result.crashed is None
        mixed = [p for p in result.patches
                 if p.vuln & VulnType.UNINIT_READ
                 and p.vuln & VulnType.OVERFLOW]
        assert mixed, "Heartbleed is a UR+overread mix (paper §VIII-A)"

    def test_benign_input_yields_no_patches(self):
        program = HeartbleedService()
        generator = generator_for(program)
        result = generator.replay(HeartbleedService.benign_input())
        assert not result.detected
        assert result.patches == []

    def test_patch_ccids_match_encoding(self):
        """The patch CCID must be reproducible by statically encoding the
        vulnerable allocation context under the same codec."""
        program = HeartbleedService()
        generator = generator_for(program)
        result = generator.replay(HeartbleedService.attack_input())
        implicated = result.report.buffers_implicated()
        static = {generator.codec.encode_context_ids(buf.context)
                  for buf in implicated}
        assert {p.ccid for p in result.patches} <= static

    def test_same_attack_same_patches_across_replays(self):
        program = HeartbleedService()
        generator = generator_for(program)
        first = generator.replay(HeartbleedService.attack_input())
        second = generator.replay(HeartbleedService.attack_input())
        assert first.patches == second.patches

    def test_crash_still_yields_patches(self):
        class Crasher(Program):
            name = "crasher"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "malloc")
                return graph

            def main(self, p):
                buf = p.malloc(8)
                p.write(buf, b"x" * 16)      # warned, resumed
                p.monitor.memory.read(0, 8)  # hard fault outside guest API

        generator = generator_for(Crasher())
        result = generator.replay()
        assert result.crashed is not None
        assert result.detected


class TestReportPostprocessing:
    def test_patches_from_report_groups_and_sorts(self):
        report = AnalysisReport()
        buf_a = BufferRecord(0, "malloc", 0x2, 0x1000, 64)
        buf_b = BufferRecord(1, "calloc", 0x1, 0x2000, 64)
        report.add(ShadowWarning(VulnType.OVERFLOW, 0, "write", buf_a))
        report.add(ShadowWarning(VulnType.UNINIT_READ, 0, "use:syscall",
                                 buf_a))
        report.add(ShadowWarning(VulnType.USE_AFTER_FREE, 0, "read", buf_b))
        patches = OfflinePatchGenerator.patches_from_report(report)
        assert [p.fun for p in patches] == ["calloc", "malloc"]
        assert patches[1].vuln == VulnType.OVERFLOW | VulnType.UNINIT_READ
