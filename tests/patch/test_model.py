"""HeapPatch model."""

import pytest

from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType


def test_key_is_fun_and_ccid():
    patch = HeapPatch("malloc", 0x123, VulnType.OVERFLOW)
    assert patch.key == ("malloc", 0x123)


def test_rejects_non_allocation_fun():
    with pytest.raises(ValueError):
        HeapPatch("printf", 1, VulnType.OVERFLOW)


def test_rejects_empty_vuln_mask():
    with pytest.raises(ValueError):
        HeapPatch("malloc", 1, VulnType.NONE)


def test_render_format():
    patch = HeapPatch("realloc", 0xBEEF,
                      VulnType.OVERFLOW | VulnType.UNINIT_READ)
    assert patch.render() == "fun=realloc ccid=0xbeef type=overflow|uninit"
    assert str(patch) == patch.render()


def test_params_round_trip():
    patch = HeapPatch("malloc", 5, VulnType.USE_AFTER_FREE,
                      params=(("quota", "1048576"),))
    assert patch.param("quota") == "1048576"
    assert patch.param("missing") is None
    assert "quota=1048576" in patch.render()


def test_vulntype_parse_and_describe():
    assert VulnType.parse("overflow|uaf") == (VulnType.OVERFLOW
                                              | VulnType.USE_AFTER_FREE)
    assert VulnType.parse("uninitialized-read") == VulnType.UNINIT_READ
    assert VulnType.parse("none") == VulnType.NONE
    with pytest.raises(ValueError):
        VulnType.parse("sql-injection")
    assert (VulnType.OVERFLOW | VulnType.UNINIT_READ).describe() \
        == "overflow|uninit"
    assert VulnType.NONE.describe() == "none"
