"""Section IX multi-execution replay (CCID-subspace partitioning)."""

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.patch.generator import OfflinePatchGenerator
from repro.workloads.vulnerable import OptiPngOptimizer, WavPackDecoder


def generator_for(program, quota=None):
    plan = InstrumentationPlan.build(program.graph,
                                     program.graph.allocation_targets,
                                     Strategy.INCREMENTAL)
    codec = SCHEMES["pcc"].build(plan)
    kwargs = {"quarantine_quota": quota} if quota else {}
    return OfflinePatchGenerator(program, codec, **kwargs)


def test_partitioned_replay_finds_the_same_patches():
    program = OptiPngOptimizer()
    generator = generator_for(program)
    single = generator.replay(OptiPngOptimizer.attack_input())
    partitioned = generator.replay_partitioned(
        4, OptiPngOptimizer.attack_input())
    assert partitioned.detected
    assert partitioned.executions == 4
    assert {p.key for p in partitioned.patches} \
        == {p.key for p in single.patches}


def test_each_execution_quarantines_a_subset():
    program = WavPackDecoder()
    generator = generator_for(program)
    partitioned = generator.replay_partitioned(
        3, WavPackDecoder.attack_input())
    # Every free is deferred by exactly one of the subspace executions.
    pushed = [run.report for run in partitioned.runs]
    assert len(pushed) == 3
    # The union of detections covers the single-run result.
    single = generator.replay(WavPackDecoder.attack_input())
    assert {p.key for p in partitioned.patches} \
        >= {p.key for p in single.patches}


def test_subspace_bounds_quarantine_memory():
    """With N subspaces each run holds roughly 1/N of the freed bytes."""
    from repro.allocator.libc import LibcAllocator
    from repro.program.callgraph import CallGraph
    from repro.program.process import Process
    from repro.program.program import Program
    from repro.shadow.analyzer import ShadowAnalyzer

    class Churn(Program):
        name = "churn"

        def build_graph(self):
            graph = CallGraph()
            graph.add_call_site("main", "malloc")
            graph.add_call_site("main", "free")
            return graph

        def main(self, p):
            for index in range(40):
                # Distinct sizes -> distinct serials; CCIDs all 0 here,
                # so use the size parity as a stand-in via two sites is
                # overkill — instead give the analyzer real CCIDs by
                # using the encoding-free context (all zero) and verify
                # the subspace filter wholesale below.
                buf = p.malloc(256)
                p.free(buf)

    # All CCIDs are 0 (no encoder): subspace (0, 2) defers everything,
    # subspace (1, 2) defers nothing — the extremes bound the behaviour.
    totals = {}
    for subspace in ((0, 2), (1, 2)):
        analyzer = ShadowAnalyzer(LibcAllocator(),
                                  ccid_subspaces=subspace)
        program = Churn()
        Process(program.graph, monitor=analyzer).run(program)
        totals[subspace] = analyzer.quarantine.held_bytes
    assert totals[(0, 2)] > 0
    assert totals[(1, 2)] == 0


def test_invalid_execution_count():
    generator = generator_for(OptiPngOptimizer())
    with pytest.raises(ValueError):
        generator.replay_partitioned(0, OptiPngOptimizer.attack_input())
