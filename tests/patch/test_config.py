"""Patch configuration file format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allocator.base import ALLOCATION_FUNCTIONS
from repro.patch.config import PatchConfigError, dumps, load, loads, save
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType


def test_dumps_includes_header_and_lines():
    text = dumps([HeapPatch("malloc", 0x10, VulnType.OVERFLOW)])
    assert text.startswith("# HeapTherapy+")
    assert "fun=malloc ccid=0x10 type=overflow" in text


def test_loads_roundtrip():
    patches = [
        HeapPatch("malloc", 0x10, VulnType.OVERFLOW),
        HeapPatch("realloc", 0x20,
                  VulnType.USE_AFTER_FREE | VulnType.UNINIT_READ),
    ]
    assert loads(dumps(patches)) == patches


def test_comments_and_blanks_ignored():
    text = """
# a comment

fun=malloc ccid=0x1 type=uaf
   # indented comment
"""
    patches = loads(text)
    assert len(patches) == 1
    assert patches[0].vuln == VulnType.USE_AFTER_FREE


def test_duplicate_keys_merge_masks():
    text = ("fun=malloc ccid=0x1 type=overflow\n"
            "fun=malloc ccid=0x1 type=uaf\n")
    patches = loads(text)
    assert len(patches) == 1
    assert patches[0].vuln == VulnType.OVERFLOW | VulnType.USE_AFTER_FREE


def test_extra_params_preserved():
    patches = loads("fun=malloc ccid=0x1 type=uaf quota=4096\n")
    assert patches[0].param("quota") == "4096"


def test_decimal_ccid_accepted():
    assert loads("fun=malloc ccid=255 type=overflow\n")[0].ccid == 255


@pytest.mark.parametrize("bad_line", [
    "fun=malloc ccid=0x1",                    # missing type
    "ccid=0x1 type=overflow",                 # missing fun
    "fun=malloc type=overflow",               # missing ccid
    "fun=malloc ccid=zzz type=overflow",      # bad ccid
    "fun=malloc ccid=0x1 type=overflow junk", # token without '='
    "fun=malloc fun=malloc ccid=0x1 type=uaf",# duplicate field
])
def test_malformed_lines_rejected(bad_line):
    with pytest.raises(PatchConfigError):
        loads(bad_line + "\n")


def test_file_round_trip(tmp_path):
    path = tmp_path / "patches.conf"
    patches = [HeapPatch("memalign", 0xFEED, VulnType.OVERFLOW)]
    save(patches, path)
    assert load(path) == patches


_vulns = st.integers(min_value=1, max_value=7).map(VulnType)


@given(st.lists(
    st.builds(HeapPatch,
              st.sampled_from(ALLOCATION_FUNCTIONS),
              st.integers(min_value=0, max_value=(1 << 64) - 1),
              _vulns),
    max_size=20, unique_by=lambda p: p.key))
def test_roundtrip_property(patches):
    assert loads(dumps(patches)) == patches
