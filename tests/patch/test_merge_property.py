"""Property tests for the deterministic patch merge.

The parallel diagnosis engine's bit-identity guarantee rests on
``merge_patches`` being a commutative, associative, idempotent fold
whose conflict policy (widest vulnerability mask, unioned params) is
order-independent.  Hypothesis searches for counterexamples over
arbitrary patch groups; equality is judged on the *serialized* table —
the same byte-level criterion the engine's determinism contract uses.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.allocator.base import ALLOCATION_FUNCTIONS  # noqa: E402
from repro.defense.patch_table import PatchTable  # noqa: E402
from repro.patch.model import (  # noqa: E402
    HeapPatch,
    merge_patches,
    patch_sort_key,
)
from repro.vulntypes import VulnType  # noqa: E402

#: Small key spaces force (fun, ccid) collisions, the interesting case.
_funs = st.sampled_from(ALLOCATION_FUNCTIONS[:4])
_ccids = st.integers(min_value=0, max_value=3)
_masks = st.integers(min_value=1, max_value=7).map(VulnType)
_params = st.lists(
    st.tuples(st.sampled_from(["quota", "scope", "ttl"]),
              st.sampled_from(["1", "2", "4096"])),
    max_size=2).map(tuple)

_patches = st.builds(HeapPatch, fun=_funs, ccid=_ccids, vuln=_masks,
                     params=_params)
_groups = st.lists(st.lists(_patches, max_size=5), max_size=4)


def _table_text(groups):
    return PatchTable.merged(groups).serialize()


@given(_groups)
def test_merge_is_sorted_and_collision_free(groups):
    merged = merge_patches(groups)
    keys = [patch.key for patch in merged]
    assert keys == sorted(set(keys))
    assert merged == sorted(merged, key=patch_sort_key)


@given(_groups)
def test_merge_is_commutative(groups):
    assert _table_text(groups) == _table_text(list(reversed(groups)))


@given(_groups, _groups, _groups)
def test_merge_is_associative(a, b, c):
    # Fold shape must not matter: merge(merge(a, b), c) == merge(a,
    # merge(b, c)), with the intermediate result re-entering as one
    # group — exactly how per-shard tables combine into the final one.
    left = merge_patches([merge_patches(a + b), *c])
    right = merge_patches([*a, merge_patches(b + c)])
    assert (PatchTable(left).serialize()
            == PatchTable(right).serialize())


@given(_groups)
def test_merge_is_idempotent(groups):
    once = merge_patches(groups)
    assert merge_patches([once]) == once
    assert merge_patches([once, once]) == once


@given(_groups)
def test_collisions_take_the_widest_mask_and_unioned_params(groups):
    merged = {patch.key: patch for patch in merge_patches(groups)}
    for group in groups:
        for patch in group:
            survivor = merged[patch.key]
            # A wider mask only adds defenses, never removes one.
            assert survivor.vuln & patch.vuln == patch.vuln
            for param in patch.params:
                assert param in survivor.params
            assert survivor.params == tuple(sorted(set(survivor.params)))


@given(_groups)
def test_merged_table_matches_incremental_adds(groups):
    # ``PatchTable.merged`` must agree with the serial path of feeding
    # every patch through ``add`` (whose collision policy concatenates
    # params before canonicalization) once both are serialized.
    flat = [patch for group in groups for patch in group]
    incremental = PatchTable(merge_patches([flat]))
    assert PatchTable.merged(groups).serialize() \
        == incremental.serialize()
