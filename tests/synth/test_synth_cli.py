"""The ``repro synth`` subcommand and its diagnose-chain integration."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.fuzz.generator import spec_for_seed


def test_smoke_run_exits_zero(capsys):
    assert main(["synth", "--seed", "0", "--count", "4"]) == 0
    out = capsys.readouterr().out
    assert "4 seed(s)" in out
    assert "abstention(s)" in out  # abstentions reported even when 0


def test_json_artifact_is_canonical(tmp_path, capsys):
    artifact = tmp_path / "synth.json"
    assert main(["synth", "--count", "3",
                 "--json", str(artifact)]) == 0
    capsys.readouterr()
    doc = json.loads(artifact.read_text())
    assert doc["schema"] == 1
    assert doc["seeds"] == 3
    assert doc["gaps"] == []
    assert len(doc["results"]) == 3


def test_jobs_do_not_change_the_artifact(tmp_path, capsys):
    serial = tmp_path / "serial.json"
    sharded = tmp_path / "sharded.json"
    assert main(["synth", "--count", "6", "--json", str(serial)]) == 0
    assert main(["synth", "--count", "6", "--jobs", "2",
                 "--json", str(sharded)]) == 0
    capsys.readouterr()
    assert serial.read_text() == sharded.read_text()


def test_spec_file_input(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(
        {"spec": dataclasses.asdict(spec_for_seed(0))}))
    assert main(["synth", "--spec", str(spec_file)]) == 0
    out = capsys.readouterr().out
    assert "1 seed(s)" in out


def test_plan_filter_restricts_kinds(tmp_path, capsys):
    artifact = tmp_path / "seq.json"
    assert main(["synth", "--count", "2", "--plan", "sequential",
                 "--json", str(artifact)]) == 0
    capsys.readouterr()
    doc = json.loads(artifact.read_text())
    assert doc["plan_kinds"] == ["sequential"]
    for result in doc["results"]:
        for attempt in result["attempts"]:
            assert attempt["plan_kind"] == "sequential"


def test_corpus_output_replays_through_diagnose(tmp_path, capsys):
    """The synthesized corpus feeds `repro diagnose --corpus` directly."""
    assert main(["synth", "--count", "3", "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    corpus = tmp_path / "synth_corpus.json"
    assert corpus.exists()
    doc = json.loads(corpus.read_text())
    assert doc["schema_version"] == 2
    assert doc["entries"], "expected at least one synthesized attack"
    assert main(["diagnose", "--corpus", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "DETECTED" in out
    assert "MISSED" not in out


@pytest.mark.parametrize("argv", [
    ["synth", "--count", "0"],
    ["synth", "--jobs", "-1"],
    ["synth", "--spec", "/nonexistent/spec.json"],
])
def test_usage_errors_exit_two(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


def test_malformed_spec_file_exits_two(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"spec": {"nope": 1}}')
    with pytest.raises(SystemExit) as excinfo:
        main(["synth", "--spec", str(bad)])
    assert excinfo.value.code == 2
