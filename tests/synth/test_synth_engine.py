"""The symbolic attack-synthesis engine: the closed loop, end to end.

The acceptance bar of the synthesis pipeline, pinned as tests:

* at least 80% of fuzz-validated layout plans concretize into attacks
  (in practice: all of them, on the deterministic seed range used here);
* every concretized attack's native run reproduces the predicted
  adjacency (validated) and is defeated after one diagnose round;
* solver abstentions are reported in the rendered output, never silent;
* sharded synthesis is byte-identical to serial.
"""

import json

import pytest

from repro.fuzz.adjacency import observe_adjacency
from repro.fuzz.generator import spec_for_seed
from repro.synth import (
    STATUS_ABSTAINED,
    STATUS_CONCRETIZED,
    corpus_of,
    synthesize_range,
    synthesize_seed,
    synthesize_specs,
)

#: The deterministic seed window every closed-loop test shares.  24
#: seeds cover all six planted bug kinds four times; the three overflow
#: kinds (seed % 6 in {0, 1, 2}) produce ground-truth adjacency.
SEED_COUNT = 24


@pytest.fixture(scope="module")
def report():
    return synthesize_range(0, SEED_COUNT, jobs=1)


def test_most_validated_plans_concretize(report):
    """>= 80% of fuzz-validated plans become executable attacks."""
    assert report.plans_attempted > 0
    assert report.concretized >= 0.8 * report.plans_attempted


def test_every_concretized_attack_validates_natively(report):
    """The native oracle reproduces each synthesized adjacency."""
    assert report.validated == report.concretized


def test_every_concretized_attack_is_defeated(report):
    """One diagnose round neutralizes 100% of synthesized attacks."""
    assert report.defeated == report.concretized
    assert not report.gaps


def test_synthesized_overflow_is_minimal_and_sufficient(report):
    """Solved overflow lengths stay within the oracle's attack span."""
    for result in report.results:
        observed = observe_adjacency(spec_for_seed(result.seed))
        for attack in result.attacks:
            assert 1 <= attack.overflow_len
            assert observed is not None
            assert attack.overflow_len <= observed.overflow_len
            assert attack.direction == observed.direction


def test_abstentions_are_counted_not_silent(report):
    """Every abstained attempt carries the solver's reason verbatim."""
    for result in report.results:
        for attempt in result.attempts:
            if attempt.status == STATUS_ABSTAINED:
                assert attempt.reason
    rendered = report.render(verbose=False)
    assert f"{report.abstentions} solver abstention(s)" in rendered


def test_jobs_sharding_is_byte_identical(report):
    sharded = synthesize_range(0, SEED_COUNT, jobs=2)
    assert sharded.render_json() == report.render_json()
    assert sharded.render(verbose=True) == report.render(verbose=True)


def test_report_json_round_trips(report):
    doc = json.loads(report.render_json())
    assert doc["schema"] == 1
    assert doc["plans_attempted"] == report.plans_attempted
    assert doc["concretized"] == report.concretized
    assert doc["abstentions"] == report.abstentions
    assert len(doc["results"]) == SEED_COUNT


def test_corpus_entries_reference_fuzz_seeds(report):
    corpus = corpus_of(report)
    assert len(corpus) == report.concretized
    for entry in corpus:
        assert entry.workload.startswith("fuzz:")
        assert entry.input_name == "attack"


def test_non_adjacent_seed_synthesizes_nothing():
    """A seed whose bug kind has no ground-truth adjacency is skipped."""
    for seed in range(SEED_COUNT):
        if observe_adjacency(spec_for_seed(seed)) is None:
            result = synthesize_seed(seed)
            assert not result.observed
            assert result.attempts == ()
            return
    pytest.fail("no non-adjacent seed in range")


def test_plan_kind_filter_restricts_attempts():
    full = synthesize_seed(0)
    sequential_only = synthesize_specs([spec_for_seed(0)], jobs=1,
                                       plan_kinds=("sequential",))
    kinds = {a.plan_kind
             for a in sequential_only.results[0].attempts}
    assert kinds <= {"sequential"}
    assert len(sequential_only.results[0].attempts) <= len(full.attempts)


def test_unbounded_site_abstains_with_reason():
    """An unbounded size interval makes the solver abstain, visibly."""
    from repro.analysis.intervals import Interval
    from repro.synth.engine import _geometry_problem

    problem, objective = _geometry_problem(
        "forward", Interval.top(), Interval.point(96))
    solved = problem.solve(minimize=objective)
    assert solved.abstained
    assert "unbounded" in solved.reason


def test_concretized_attacks_have_steps_and_sizes(report):
    for result in report.results:
        for attempt in result.attempts:
            if attempt.status != STATUS_CONCRETIZED:
                continue
            attack = attempt.attack
            assert attack is not None
            assert attack.steps, "interleaving must not be empty"
            actions = [step.action for step in attack.steps]
            assert actions.count("overflow") == 1
            assert attack.sizes, "solved sizes must be recorded"
