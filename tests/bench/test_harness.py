"""Smoke and unit tests for the perf-regression harness.

The suites run here at a tiny scale — the point is schema and gate
correctness, not timing stability.
"""

import json

from repro.bench.harness import (
    SCHEMA_VERSION,
    BenchResult,
    SuiteReport,
    _load_baselines,
    compare_to_baseline,
    run_bench,
    run_diagnosis_suite,
    run_substrate_suite,
)


class TestSubstrateSuite:
    def test_smoke_runs_and_reports_all_benchmarks(self):
        report = run_substrate_suite(scale=0.01, repeat=1)
        names = {r.name for r in report.results}
        assert names == {
            "malloc_free",
            "malloc_free_segregated",
            "defended_malloc_free",
            "vm_word_ops",
            "vm_word_ops_scalar",
            "guest_instruction_rate",
        }
        for result in report.results:
            assert result.ops > 0
            assert result.seconds > 0
            assert result.ops_per_sec > 0

    def test_json_schema(self):
        report = run_substrate_suite(scale=0.01, repeat=1)
        doc = report.to_json()
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "substrate"
        for payload in doc["results"].values():
            assert {"ops", "seconds", "ops_per_sec"} <= set(payload)
        json.dumps(doc)  # must be serializable

    def test_defended_overhead_extra_present(self):
        report = run_substrate_suite(scale=0.01, repeat=1)
        defended = report.result("defended_malloc_free")
        assert "overhead_vs_raw_pct" in defended.extras


class TestRegressionGate:
    @staticmethod
    def _report(rate):
        return SuiteReport("substrate", 1.0, 1,
                           [BenchResult("malloc_free", int(rate), 1.0)])

    @staticmethod
    def _baseline(rate):
        return {"suite": "substrate",
                "results": {"malloc_free": {"ops_per_sec": rate}}}

    def test_no_regression_passes(self):
        failures = compare_to_baseline(self._report(100_000),
                                       self._baseline(95_000))
        assert failures == []

    def test_within_tolerance_passes(self):
        failures = compare_to_baseline(self._report(95_000),
                                       self._baseline(100_000))
        assert failures == []  # ~5.3% down, under the 10% gate

    def test_large_regression_fails(self):
        failures = compare_to_baseline(self._report(50_000),
                                       self._baseline(100_000))
        assert len(failures) == 1
        assert "malloc_free" in failures[0]

    def test_unknown_benchmarks_ignored(self):
        baseline = {"suite": "substrate",
                    "results": {"other_bench": {"ops_per_sec": 1e9}}}
        assert compare_to_baseline(self._report(1), baseline) == []


class TestRunBench:
    def test_writes_artifact_and_gates(self, tmp_path):
        status = run_bench(suites="substrate", scale=0.01, repeat=1,
                           out_dir=str(tmp_path))
        assert status == 0
        artifact = tmp_path / "BENCH_substrate.json"
        assert artifact.exists()
        doc = json.loads(artifact.read_text())
        assert doc["suite"] == "substrate"

        # Re-run against our own artifact as baseline: cannot regress
        # >10% against itself at identical scale in any sane run, but
        # timing noise exists — so gate with a huge tolerance instead.
        status = run_bench(suites="substrate", scale=0.01, repeat=1,
                           out_dir=str(tmp_path),
                           baseline=str(artifact),
                           max_regression_pct=10_000.0)
        assert status == 0

    def test_profile_writes_hotspot_artifact(self, tmp_path):
        status = run_bench(suites="substrate", scale=0.01, repeat=1,
                           out_dir=str(tmp_path), profile=True)
        assert status == 0
        profile = tmp_path / "profile_substrate.txt"
        assert profile.exists()
        text = profile.read_text()
        assert "cumulative" in text
        assert "tottime" in text
        # The JSON artifact is still produced alongside the profile.
        assert (tmp_path / "BENCH_substrate.json").exists()

    def test_regression_exit_status(self, tmp_path):
        artifact = tmp_path / "BENCH_substrate.json"
        artifact.write_text(json.dumps({
            "suite": "substrate",
            "results": {"malloc_free": {"ops_per_sec": 1e12}},
        }))
        status = run_bench(suites="substrate", scale=0.01, repeat=1,
                           out_dir=str(tmp_path),
                           baseline=str(artifact))
        assert status == 1


class TestEquivalenceVerifier:
    def test_batched_matches_validator_on_smoke_workload(self):
        from repro.bench.harness import verify_substrate_equivalence

        assert verify_substrate_equivalence(scale=0.02) == []

    def test_run_bench_verify_flag_passes(self, tmp_path, capsys):
        status = run_bench(suites="substrate", scale=0.01, repeat=1,
                           out_dir=str(tmp_path),
                           verify_equivalence=True)
        assert status == 0
        assert "validator" in capsys.readouterr().out


class TestDiagnosisSuite:
    def test_smoke_sweep_and_schema(self):
        report = run_diagnosis_suite(scale=0.02, repeat=1,
                                     jobs_sweep=(1, 2))
        names = [r.name for r in report.results]
        assert names == ["diagnosis_jobs1", "diagnosis_jobs2",
                         "diagnosis_merge"]
        for result in report.results:
            assert result.ops > 0
            assert result.ops_per_sec > 0
        jobs2 = report.result("diagnosis_jobs2")
        assert jobs2.extras["jobs"] == 2
        assert "speedup_vs_jobs1" in jobs2.extras

        doc = report.to_json()
        assert doc["suite"] == "diagnosis"
        assert doc["meta"]["cpus"] >= 1
        json.dumps(doc)

    def test_gate_skips_parallel_results_across_cpu_counts(self):
        report = SuiteReport(
            "diagnosis", 1.0, 1,
            [BenchResult("diagnosis_jobs1", 100, 1.0,
                         extras={"jobs": 1}),
             BenchResult("diagnosis_jobs4", 100, 1.0,
                         extras={"jobs": 4})],
            meta={"cpus": 1})
        baseline = {
            "suite": "diagnosis",
            "meta": {"cpus": 4},
            "results": {
                "diagnosis_jobs1": {"ops_per_sec": 1e9},
                "diagnosis_jobs4": {"ops_per_sec": 1e9},
            },
        }
        failures = compare_to_baseline(report, baseline)
        # jobs=1 is host-independent and must still gate; jobs=4 is a
        # property of the baseline host's parallelism and must not.
        assert len(failures) == 1
        assert "diagnosis_jobs1" in failures[0]

    def test_gate_compares_parallel_results_on_same_cpu_count(self):
        report = SuiteReport(
            "diagnosis", 1.0, 1,
            [BenchResult("diagnosis_jobs4", 100, 1.0,
                         extras={"jobs": 4})],
            meta={"cpus": 4})
        baseline = {
            "suite": "diagnosis",
            "meta": {"cpus": 4},
            "results": {"diagnosis_jobs4": {"ops_per_sec": 1e9}},
        }
        failures = compare_to_baseline(report, baseline)
        assert len(failures) == 1


class TestBaselineLoading:
    def test_single_file(self, tmp_path):
        artifact = tmp_path / "BENCH_substrate.json"
        artifact.write_text(json.dumps({"suite": "substrate",
                                        "results": {}}))
        docs = _load_baselines(str(artifact))
        assert set(docs) == {"substrate"}

    def test_directory_of_artifacts(self, tmp_path):
        for suite in ("substrate", "diagnosis"):
            (tmp_path / f"BENCH_{suite}.json").write_text(
                json.dumps({"suite": suite, "results": {}}))
        (tmp_path / "unrelated.json").write_text("{}")
        docs = _load_baselines(str(tmp_path))
        assert set(docs) == {"substrate", "diagnosis"}

    def test_run_bench_gates_diagnosis_against_directory(self, tmp_path):
        status = run_bench(suites="diagnosis", scale=0.02, repeat=1,
                           out_dir=str(tmp_path))
        assert status == 0
        assert (tmp_path / "BENCH_diagnosis.json").exists()
        # Gate the same run against its own artifact directory with a
        # huge tolerance (timing noise), which must pass.
        status = run_bench(suites="diagnosis", scale=0.02, repeat=1,
                           out_dir=str(tmp_path),
                           baseline=str(tmp_path),
                           max_regression_pct=10_000.0)
        assert status == 0


class TestFuzzSuite:
    def test_smoke_sweep_and_schema(self):
        from repro.bench.harness import run_fuzz_suite

        report = run_fuzz_suite(scale=0.02, repeat=1)
        names = {r.name for r in report.results}
        assert names == {"fuzz_generation", "fuzz_jobs1", "fuzz_jobs2"}
        assert report.meta["cpus"] >= 1
        jobs2 = report.result("fuzz_jobs2")
        assert jobs2.extras["jobs"] == 2
        assert "speedup_vs_jobs1" in jobs2.extras
        doc = report.to_json()
        assert doc["suite"] == "fuzz"
        assert doc["schema"] == SCHEMA_VERSION

    def test_run_bench_emits_fuzz_artifact(self, tmp_path):
        status = run_bench(suites="fuzz", scale=0.02, repeat=1,
                           out_dir=str(tmp_path))
        assert status == 0
        doc = json.loads((tmp_path / "BENCH_fuzz.json").read_text())
        assert doc["suite"] == "fuzz"
        assert doc["results"]["fuzz_jobs1"]["ops"] >= 6


class TestLayoutSuite:
    def test_smoke_and_schema(self):
        from repro.bench.harness import run_layout_suite

        report = run_layout_suite(scale=0.05, repeat=1)
        names = {r.name for r in report.results}
        assert names == {"layout_workloads", "layout_generated"}
        workloads = report.result("layout_workloads")
        assert workloads.ops >= 30  # all builtin workloads analyzed
        doc = report.to_json()
        assert doc["suite"] == "layout"
        assert doc["schema"] == SCHEMA_VERSION

    def test_run_bench_emits_layout_artifact(self, tmp_path):
        status = run_bench(suites="layout", scale=0.05, repeat=1,
                           out_dir=str(tmp_path))
        assert status == 0
        doc = json.loads((tmp_path / "BENCH_layout.json").read_text())
        assert doc["suite"] == "layout"
        assert doc["results"]["layout_generated"]["ops"] >= 10


class TestServingSuite:
    def test_smoke_sweep_and_schema(self):
        from repro.bench.harness import run_serving_suite

        report = run_serving_suite(scale=0.01, repeat=1,
                                   workers_sweep=(1, 2))
        names = [r.name for r in report.results]
        assert names == ["serving_sequential", "serving_workers1",
                         "serving_workers2"]
        for result in report.results:
            assert result.ops > 0
            assert result.ops_per_sec > 0
        sequential = report.result("serving_sequential")
        assert "cycle_overhead_pct" in sequential.extras
        workers2 = report.result("serving_workers2")
        assert workers2.extras["workers"] == 2
        assert "speedup_vs_sequential" in workers2.extras
        assert "cycle_overhead_pct" in workers2.extras

        doc = report.to_json()
        assert doc["suite"] == "serving"
        assert doc["meta"]["cpus"] >= 1
        json.dumps(doc)

    def test_gate_skips_multiworker_results_across_cpu_counts(self):
        report = SuiteReport(
            "serving", 1.0, 1,
            [BenchResult("serving_sequential", 100, 1.0),
             BenchResult("serving_workers1", 100, 1.0,
                         extras={"workers": 1}),
             BenchResult("serving_workers8", 100, 1.0,
                         extras={"workers": 8})],
            meta={"cpus": 1})
        baseline = {
            "suite": "serving",
            "meta": {"cpus": 8},
            "results": {
                "serving_sequential": {"ops_per_sec": 1e9},
                "serving_workers1": {"ops_per_sec": 1e9},
                "serving_workers8": {"ops_per_sec": 1e9},
            },
        }
        failures = compare_to_baseline(report, baseline)
        # Sequential and workers=1 are host-independent and still gate;
        # workers=8 is a property of the baseline host's parallelism.
        assert len(failures) == 2
        assert any("serving_sequential" in f for f in failures)
        assert any("serving_workers1" in f for f in failures)
        assert not any("serving_workers8" in f for f in failures)

    def test_gate_compares_multiworker_results_on_same_cpu_count(self):
        report = SuiteReport(
            "serving", 1.0, 1,
            [BenchResult("serving_workers8", 100, 1.0,
                         extras={"workers": 8})],
            meta={"cpus": 8})
        baseline = {
            "suite": "serving",
            "meta": {"cpus": 8},
            "results": {"serving_workers8": {"ops_per_sec": 1e9}},
        }
        assert len(compare_to_baseline(report, baseline)) == 1
