"""Property tests: the defense preserves data under arbitrary activity.

Hypothesis drives random allocation/free/realloc sequences (with random
patch coverage across all three vulnerability types) through the
defended allocator while the test maintains a model of every buffer's
contents.  Nothing the defense does — metadata words, guard pages,
zero-fill, deferred free — may ever corrupt a live buffer or leak one
buffer's defenses onto another.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.allocator.libc import LibcAllocator
from repro.allocator.segregated import SegregatedAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.vulntypes import VulnType


class CyclingContext(ContextSource):
    """Deterministically cycles through a small CCID space, so random
    sequences hit both patched and unpatched contexts."""

    def __init__(self, modulus=7):
        self.counter = 0
        self.modulus = modulus

    def current_ccid(self):
        self.counter += 1
        return self.counter % self.modulus


def _patch_table():
    """Patches covering a few CCIDs with each vulnerability type."""
    return PatchTable([
        HeapPatch("malloc", 1, VulnType.OVERFLOW),
        HeapPatch("malloc", 2, VulnType.USE_AFTER_FREE),
        HeapPatch("malloc", 3, VulnType.UNINIT_READ),
        HeapPatch("malloc", 4, VulnType.OVERFLOW | VulnType.USE_AFTER_FREE
                  | VulnType.UNINIT_READ),
        HeapPatch("memalign", 5, VulnType.OVERFLOW),
        HeapPatch("realloc", 6, VulnType.UNINIT_READ),
    ])


def _pattern(address: int, size: int) -> bytes:
    return bytes((address + i) % 249 + 1 for i in range(size))


class DefendedMachine(RuleBasedStateMachine):
    underlying_factory = LibcAllocator

    def __init__(self):
        super().__init__()
        self.allocator = DefendedAllocator(
            self.underlying_factory(), _patch_table(),
            context_source=CyclingContext(),
            quarantine_quota=64 * 1024)
        self.live: dict[int, int] = {}

    @rule(size=st.integers(min_value=0, max_value=2000))
    def malloc(self, size):
        address = self.allocator.malloc(size)
        assert address not in self.live
        self._fill(address, size)

    @rule(size=st.integers(min_value=0, max_value=500),
          alignment=st.sampled_from([16, 32, 128]))
    def memalign(self, size, alignment):
        address = self.allocator.memalign(alignment, size)
        assert address % alignment == 0
        self._fill(address, size)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(min_value=0),
          size=st.integers(min_value=0, max_value=2000))
    def realloc(self, index, size):
        address = sorted(self.live)[index % len(self.live)]
        old_size = self.live.pop(address)
        new_address = self.allocator.realloc(address, size)
        if size == 0:
            assert new_address == 0
            return
        keep = min(old_size, size)
        assert (self.allocator.memory.read(new_address, max(keep, 1))[:keep]
                == _pattern(address, old_size)[:keep])
        self._fill(new_address, size)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(min_value=0))
    def free(self, index):
        address = sorted(self.live)[index % len(self.live)]
        del self.live[address]
        self.allocator.free(address)

    @invariant()
    def live_data_intact(self):
        for address, size in self.live.items():
            if size:
                assert (self.allocator.memory.read(address, size)
                        == _pattern(address, size))

    @invariant()
    def usable_sizes_exact(self):
        for address, size in self.live.items():
            assert self.allocator.malloc_usable_size(address) == size

    @invariant()
    def quarantine_within_quota(self):
        assert (self.allocator.quarantine.held_bytes
                <= self.allocator.quarantine.quota_bytes)

    def _fill(self, address, size):
        if size:
            self.allocator.memory.write(address, _pattern(address, size))
        self.live[address] = size


DefendedMachine.TestCase.settings = settings(
    max_examples=20,
    stateful_step_count=30,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)

TestDefendedOverLibc = DefendedMachine.TestCase


class DefendedOverSegregated(DefendedMachine):
    underlying_factory = SegregatedAllocator


DefendedOverSegregated.TestCase.settings = DefendedMachine.TestCase.settings
TestDefendedOverSegregated = DefendedOverSegregated.TestCase


@given(st.integers(min_value=0, max_value=6))
@settings(deadline=None)
def test_zero_fill_only_on_patched_uninit_contexts(ccid):
    """Dirty reused memory is zeroed exactly when the context's patch
    carries the UNINIT bit."""
    table = _patch_table()

    class Fixed(ContextSource):
        def current_ccid(self):
            return ccid

    allocator = DefendedAllocator(LibcAllocator(), table,
                                  context_source=Fixed())
    dirty = allocator.malloc(128)
    allocator.memory.write(dirty, b"\xdd" * 128)
    allocator.free(dirty)
    address = allocator.malloc(128)
    data = allocator.memory.read(address, 128)
    patch = table.lookup("malloc", ccid)
    if patch is not None and patch.vuln & VulnType.UNINIT_READ:
        assert data == bytes(128)
    # (Unpatched contexts may or may not see stale bytes depending on
    # reuse; no assertion the other way.)
