"""Read-only patch hash table."""

import pytest

from repro.defense.patch_table import PatchTable, PatchTableFrozen
from repro.patch.config import save
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType


def test_lookup_hit_and_miss():
    table = PatchTable([HeapPatch("malloc", 0x1, VulnType.OVERFLOW)])
    hit = table.lookup("malloc", 0x1)
    assert hit is not None and hit.vuln == VulnType.OVERFLOW
    assert table.lookup("malloc", 0x2) is None
    assert table.lookup("calloc", 0x1) is None


def test_frozen_after_init():
    table = PatchTable([])
    assert table.frozen
    with pytest.raises(PatchTableFrozen):
        table.add(HeapPatch("malloc", 1, VulnType.OVERFLOW))


def test_key_collision_merges_masks():
    table = PatchTable([
        HeapPatch("malloc", 0x1, VulnType.OVERFLOW),
        HeapPatch("malloc", 0x1, VulnType.USE_AFTER_FREE),
    ])
    assert len(table) == 1
    assert table.lookup("malloc", 0x1).vuln == (
        VulnType.OVERFLOW | VulnType.USE_AFTER_FREE)


def test_from_config_file(tmp_path):
    path = tmp_path / "patches.conf"
    save([HeapPatch("memalign", 0xAA, VulnType.UNINIT_READ)], path)
    table = PatchTable.from_config_file(path)
    assert table.frozen
    assert ("memalign", 0xAA) in table
    assert table.lookup("memalign", 0xAA).vuln == VulnType.UNINIT_READ


def test_empty_table():
    table = PatchTable.empty()
    assert len(table) == 0
    assert table.lookup("malloc", 0) is None


def test_patches_listing():
    patches = [HeapPatch("malloc", i, VulnType.OVERFLOW) for i in range(3)]
    table = PatchTable(patches)
    assert sorted(p.ccid for p in table.patches) == [0, 1, 2]
