"""The interposer's Structure-1 fast path must be indistinguishable
from the generic plan/place/encode path for unpatched buffers, and the
per-function patch-map cache must never miss a patched context.
"""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.metadata import METADATA_SIZE, BufferMetadata
from repro.defense.patch_table import PatchTable, PatchTableFrozen
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.program.cost import CycleMeter
from repro.vulntypes import VulnType


class FixedContext(ContextSource):
    def __init__(self, ccid):
        self.ccid = ccid

    def current_ccid(self):
        return self.ccid


class TestFastPathEquivalence:
    def test_metadata_word_matches_generic_encoding(self):
        """The directly-stamped word must equal what the generic path
        would have produced via BufferMetadata.encode()."""
        defended = DefendedAllocator(LibcAllocator(), PatchTable.empty())
        for size in (0, 1, 8, 24, 100, 4096, 1 << 20):
            user = defended.malloc(size)
            word = defended.memory.read_word(user - METADATA_SIZE)
            expected = BufferMetadata(
                vuln=VulnType.NONE, aligned=False, align_log2=0,
                guard_page=0, user_size=size).encode()
            assert word == expected == size << 4
            defended.free(user)

    def test_free_and_usable_size_on_fast_path_buffers(self):
        defended = DefendedAllocator(LibcAllocator(), PatchTable.empty())
        user = defended.malloc(100)
        assert defended.malloc_usable_size(user) == 100
        defended.free(user)
        assert defended.stats.live_buffers == 0

    def test_realloc_preserves_fast_path_contents(self):
        defended = DefendedAllocator(LibcAllocator(), PatchTable.empty())
        user = defended.malloc(32)
        defended.memory.write(user, b"0123456789abcdef" * 2)
        bigger = defended.realloc(user, 128)
        assert defended.memory.read(bigger, 32) == b"0123456789abcdef" * 2
        defended.free(bigger)

    def test_patched_context_bypasses_fast_path(self):
        """A patch on (malloc, ccid) must still get its guard page even
        though unpatched allocations take the short path."""
        table = PatchTable([HeapPatch("malloc", 0x77, VulnType.OVERFLOW)])
        defended = DefendedAllocator(LibcAllocator(), table,
                                     context_source=FixedContext(0x77))
        user = defended.malloc(64)
        word = defended.memory.read_word(user - METADATA_SIZE)
        assert BufferMetadata.decode(word).has_guard
        assert defended.enhanced_counts[VulnType.OVERFLOW] == 1

    def test_unpatched_context_same_function_takes_fast_path(self):
        table = PatchTable([HeapPatch("malloc", 0x77, VulnType.OVERFLOW)])
        defended = DefendedAllocator(LibcAllocator(), table,
                                     context_source=FixedContext(0x99))
        user = defended.malloc(64)
        word = defended.memory.read_word(user - METADATA_SIZE)
        assert word == 64 << 4  # plain Structure 1, no guard
        defended.free(user)

    def test_meter_charges_identical_to_generic_path(self):
        """Fast path and generic path charge the same interposition
        categories for an unpatched malloc."""
        meter = CycleMeter()
        defended = DefendedAllocator(LibcAllocator(), PatchTable.empty(),
                                     meter=meter)
        defended.malloc(64)
        model = meter.model
        assert meter.category("interpose") == model.interpose
        assert meter.category("metadata") == model.metadata
        assert meter.category("lookup") == model.hash_lookup
        assert meter.category("defense") == 0


class TestPerFunIndex:
    def test_per_fun_reflects_lookup(self):
        patches = [
            HeapPatch("malloc", 1, VulnType.OVERFLOW),
            HeapPatch("malloc", 2, VulnType.UNINIT_READ),
            HeapPatch("calloc", 1, VulnType.USE_AFTER_FREE),
        ]
        table = PatchTable(patches)
        for patch in patches:
            assert table.per_fun(patch.fun).get(patch.ccid) == \
                table.lookup(patch.fun, patch.ccid)
        assert table.per_fun("realloc") == {}
        assert table.per_fun("malloc").get(999) is None

    def test_per_fun_requires_frozen_table(self):
        table = PatchTable.empty()
        # Bypass normal construction to get an unfrozen table.
        table._frozen = False
        with pytest.raises(PatchTableFrozen):
            table.per_fun("malloc")
