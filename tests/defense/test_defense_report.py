"""Defense run reports."""

from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.defense.report import DefenseReport
from repro.workloads.vulnerable import HeartbleedService, OptiPngOptimizer


def test_report_counts_enhancements():
    program = HeartbleedService()
    system = HeapTherapy(program)
    generation = system.generate_patches(HeartbleedService.attack_input())
    run = system.run_defended(generation.patches,
                              HeartbleedService.uninit_only_input())
    report = DefenseReport.from_allocator(run.allocator)
    assert report.patches_installed == len(generation.patches)
    assert report.allocations >= 3
    assert report.guarded_buffers >= 1        # overflow bit present
    assert report.zero_filled_buffers >= 1    # uninit bit present
    assert report.mprotect_calls >= report.guarded_buffers
    assert 0 < report.enhancement_rate <= 1


def test_report_quarantine_for_uaf():
    program = OptiPngOptimizer()
    system = HeapTherapy(program)
    generation = system.generate_patches(OptiPngOptimizer.attack_input())
    run = system.run_defended(generation.patches,
                              OptiPngOptimizer.attack_input())
    report = DefenseReport.from_allocator(run.allocator)
    assert report.deferral_marked_buffers >= 1
    assert report.quarantine_blocks >= 1
    assert report.quarantine_bytes > 0


def test_empty_table_report_is_quiet():
    program = HeartbleedService()
    system = HeapTherapy(program)
    run = system.run_defended(PatchTable.empty(),
                              HeartbleedService.benign_input())
    report = DefenseReport.from_allocator(run.allocator)
    assert report.patches_installed == 0
    assert report.enhanced_buffers == 0
    assert report.enhancement_rate == 0.0
    assert report.quarantine_blocks == 0


def test_render_contains_key_lines():
    program = HeartbleedService()
    system = HeapTherapy(program)
    generation = system.generate_patches(HeartbleedService.attack_input())
    run = system.run_defended(generation.patches,
                              HeartbleedService.benign_input())
    text = DefenseReport.from_allocator(run.allocator).render()
    assert "patches installed" in text
    assert "guard pages installed" in text
    assert "cost decomposition" in text
    assert "interpose" in text
