"""The read-only sealed patch table (Figure 5's hardening note)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.base import ALLOCATION_FUNCTIONS
from repro.defense.interpose import DefendedAllocator
from repro.defense.sealed_table import SealedPatchTable
from repro.allocator.libc import LibcAllocator
from repro.machine.errors import SegmentationFault
from repro.machine.memory import VirtualMemory
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.vulntypes import VulnType


def make(patches):
    memory = VirtualMemory()
    return memory, SealedPatchTable(memory, patches)


class TestLookup:
    def test_hit_and_miss(self):
        _, table = make([HeapPatch("malloc", 0xAB, VulnType.OVERFLOW)])
        hit = table.lookup("malloc", 0xAB)
        assert hit is not None and hit.vuln == VulnType.OVERFLOW
        assert table.lookup("malloc", 0xAC) is None
        assert table.lookup("calloc", 0xAB) is None
        assert table.lookup("not_an_api", 0xAB) is None

    def test_duplicate_keys_merge(self):
        _, table = make([
            HeapPatch("malloc", 0x1, VulnType.OVERFLOW),
            HeapPatch("malloc", 0x1, VulnType.UNINIT_READ),
        ])
        assert table.lookup("malloc", 0x1).vuln == (
            VulnType.OVERFLOW | VulnType.UNINIT_READ)

    def test_many_entries_with_collisions(self):
        patches = [HeapPatch("malloc", ccid, VulnType.USE_AFTER_FREE)
                   for ccid in range(200)]
        _, table = make(patches)
        assert len(table) == 200
        for ccid in range(200):
            assert table.lookup("malloc", ccid) is not None
        assert table.lookup("malloc", 500) is None

    def test_empty_table(self):
        _, table = make([])
        assert table.lookup("malloc", 0) is None
        assert len(table) == 0


class TestSealing:
    def test_pages_are_read_only(self):
        memory, table = make([HeapPatch("malloc", 0x7, VulnType.OVERFLOW)])
        with pytest.raises(SegmentationFault):
            memory.write_word(table.base, 0)

    def test_arbitrary_write_primitive_cannot_disable_patch(self):
        """The attacker scenario the sealing defends against: flipping
        the vuln mask or the tag of an installed patch must fault."""
        memory, table = make([HeapPatch("malloc", 0x7, VulnType.OVERFLOW)])
        # Locate the occupied slot by scanning readable memory.
        for index in range(table.slot_count):
            address = table.base + index * 32
            if memory.read_word(address) != 0:
                break
        with pytest.raises(SegmentationFault):
            memory.write_word(address + 16, 0)   # clear the mask
        with pytest.raises(SegmentationFault):
            memory.write_word(address, 0)        # delete the entry
        # The patch still matches.
        assert table.lookup("malloc", 0x7).vuln == VulnType.OVERFLOW


class TestIntegration:
    def test_defended_allocator_accepts_sealed_table(self):
        """The interposer only needs lookup/frozen/len — a sealed table
        drops in."""

        class Fixed(ContextSource):
            def current_ccid(self):
                return 0x33

        underlying = LibcAllocator()
        table = SealedPatchTable(
            underlying.memory,
            [HeapPatch("malloc", 0x33, VulnType.UNINIT_READ)])
        defended = DefendedAllocator(underlying, table,
                                     context_source=Fixed())
        dirty = defended.malloc(64)
        defended.memory.write(dirty, b"\xcc" * 64)
        defended.free(dirty)
        address = defended.malloc(64)
        assert defended.memory.read(address, 64) == bytes(64)


@given(st.lists(
    st.builds(HeapPatch,
              st.sampled_from(ALLOCATION_FUNCTIONS),
              st.integers(min_value=0, max_value=(1 << 64) - 1),
              st.integers(min_value=1, max_value=7).map(VulnType)),
    max_size=64, unique_by=lambda p: p.key))
@settings(max_examples=40, deadline=None)
def test_sealed_lookup_matches_dict_semantics(patches):
    _, table = make(patches)
    reference = {p.key: p for p in patches}
    for patch in patches:
        found = table.lookup(patch.fun, patch.ccid)
        assert found == reference[patch.key]
    assert table.lookup("malloc", (1 << 64) - 12345) in (
        None, reference.get(("malloc", (1 << 64) - 12345)))
