"""Metadata word bit layout (paper Figure 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.defense.metadata import BufferMetadata, MetadataError
from repro.machine.layout import PAGE_SIZE
from repro.vulntypes import VulnType


def test_plain_buffer_word():
    meta = BufferMetadata(VulnType.NONE, aligned=False, align_log2=0,
                          guard_page=0, user_size=1234)
    word = meta.encode()
    assert word & 0b1111 == 0          # type field + aligned bit clear
    assert (word >> 4) & ((1 << 48) - 1) == 1234
    assert BufferMetadata.decode(word) == meta


def test_vuln_bits_match_vulntype_values():
    meta = BufferMetadata(VulnType.USE_AFTER_FREE | VulnType.UNINIT_READ,
                          aligned=False, align_log2=0, guard_page=0,
                          user_size=8)
    word = meta.encode()
    assert word & 0b0111 == 0b110


def test_aligned_bit():
    meta = BufferMetadata(VulnType.USE_AFTER_FREE, aligned=True,
                          align_log2=6, guard_page=0, user_size=64)
    word = meta.encode()
    assert word & 0b1000
    decoded = BufferMetadata.decode(word)
    assert decoded.aligned and decoded.alignment == 64


def test_guard_frame_uses_36_bits():
    guard = (1 << 47) - PAGE_SIZE  # highest canonical page
    meta = BufferMetadata(VulnType.OVERFLOW, aligned=False, align_log2=0,
                          guard_page=guard, user_size=0)
    decoded = BufferMetadata.decode(meta.encode())
    assert decoded.guard_page == guard
    assert decoded.has_guard


def test_guard_page_must_be_page_aligned():
    meta = BufferMetadata(VulnType.OVERFLOW, aligned=False, align_log2=0,
                          guard_page=PAGE_SIZE + 8, user_size=0)
    with pytest.raises(MetadataError):
        meta.encode()


def test_user_size_range_checked():
    meta = BufferMetadata(VulnType.NONE, aligned=False, align_log2=0,
                          guard_page=0, user_size=1 << 48)
    with pytest.raises(MetadataError):
        meta.encode()


def test_align_log2_range_checked():
    meta = BufferMetadata(VulnType.NONE, aligned=True, align_log2=64,
                          guard_page=0, user_size=8)
    with pytest.raises(MetadataError):
        meta.encode()


def test_word_fits_in_64_bits_all_fields_max():
    meta = BufferMetadata(VulnType.OVERFLOW | VulnType.USE_AFTER_FREE
                          | VulnType.UNINIT_READ,
                          aligned=True, align_log2=63,
                          guard_page=((1 << 36) - 1) << 12, user_size=0)
    assert meta.encode() < (1 << 64)


_plain = st.builds(
    BufferMetadata,
    vuln=st.sampled_from([VulnType.NONE, VulnType.USE_AFTER_FREE,
                          VulnType.UNINIT_READ,
                          VulnType.USE_AFTER_FREE | VulnType.UNINIT_READ]),
    aligned=st.booleans(),
    align_log2=st.integers(min_value=0, max_value=63),
    guard_page=st.just(0),
    user_size=st.integers(min_value=0, max_value=(1 << 48) - 1),
)

_guarded = st.builds(
    BufferMetadata,
    vuln=st.sampled_from([VulnType.OVERFLOW,
                          VulnType.OVERFLOW | VulnType.USE_AFTER_FREE,
                          VulnType.OVERFLOW | VulnType.UNINIT_READ]),
    aligned=st.booleans(),
    align_log2=st.integers(min_value=0, max_value=63),
    guard_page=st.integers(min_value=0, max_value=(1 << 36) - 1)
        .map(lambda frame: frame << 12),
    user_size=st.just(0),
)


@given(st.one_of(_plain, _guarded))
def test_roundtrip_property(meta):
    word = meta.encode()
    assert 0 <= word < (1 << 64)
    assert BufferMetadata.decode(word) == meta
