"""The online defense interposer (paper Section VI, Figures 5-7)."""

import pytest

from repro.allocator.base import Allocator
from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.metadata import METADATA_SIZE, BufferMetadata
from repro.defense.patch_table import PatchTable
from repro.machine.errors import SegmentationFault
from repro.machine.layout import PAGE_SIZE
from repro.machine.memory import PROT_NONE
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.program.cost import CycleMeter
from repro.vulntypes import VulnType


class FixedContext(ContextSource):
    """Context source returning a settable CCID."""

    def __init__(self, ccid=0):
        self.ccid = ccid

    def current_ccid(self):
        return self.ccid


def defended(patches=(), ccid=0, **kwargs):
    underlying = LibcAllocator()
    context = FixedContext(ccid)
    allocator = DefendedAllocator(underlying, PatchTable(patches),
                                  context_source=context, **kwargs)
    return allocator, underlying, context


class TestUnpatchedBuffers:
    def test_malloc_free_roundtrip(self):
        allocator, underlying, _ = defended()
        address = allocator.malloc(100)
        allocator.memory.write(address, b"x" * 100)
        allocator.free(address)
        assert underlying.live_buffer_count == 0

    def test_metadata_word_precedes_every_buffer(self):
        allocator, _, _ = defended()
        address = allocator.malloc(100)
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        assert meta.vuln == VulnType.NONE
        assert not meta.aligned
        assert meta.user_size == 100

    def test_usable_size_is_exact(self):
        allocator, _, _ = defended()
        address = allocator.malloc(100)
        assert allocator.malloc_usable_size(address) == 100
        assert allocator.malloc_usable_size(0) == 0

    def test_calloc_zeroes(self):
        allocator, underlying, _ = defended()
        dirty = underlying.malloc(512)
        allocator.memory.write(dirty, b"\xff" * 512)
        underlying.free(dirty)
        address = allocator.calloc(8, 64)
        assert allocator.memory.read(address, 512) == bytes(512)

    def test_free_null_noop(self):
        allocator, _, _ = defended()
        allocator.free(0)

    def test_memalign_alignment_and_metadata(self):
        allocator, _, _ = defended()
        address = allocator.memalign(256, 80)
        assert address % 256 == 0
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        assert meta.aligned and meta.alignment == 256
        allocator.free(address)

    def test_stats_track_api(self):
        allocator, _, _ = defended()
        allocator.malloc(10)
        allocator.calloc(1, 10)
        p = allocator.memalign(32, 10)
        allocator.free(p)
        assert allocator.stats.malloc_calls == 1
        assert allocator.stats.calloc_calls == 1
        assert allocator.stats.memalign_calls == 1
        assert allocator.stats.free_calls == 1


class TestOverflowDefense:
    PATCH = [HeapPatch("malloc", 0x77, VulnType.OVERFLOW)]

    def test_guard_page_installed_for_patched_context(self):
        allocator, _, context = defended(self.PATCH, ccid=0x77)
        address = allocator.malloc(100)
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        assert meta.has_guard
        assert allocator.memory.protection_of(meta.guard_page) == PROT_NONE

    def test_contiguous_overflow_faults_at_guard(self):
        allocator, _, _ = defended(self.PATCH, ccid=0x77)
        address = allocator.malloc(100)
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address, b"A" * (PAGE_SIZE + 200))

    def test_in_bounds_access_unaffected(self):
        allocator, _, _ = defended(self.PATCH, ccid=0x77)
        address = allocator.malloc(100)
        allocator.memory.write(address, b"B" * 100)
        assert allocator.memory.read(address, 100) == b"B" * 100

    def test_other_contexts_not_enhanced(self):
        allocator, _, context = defended(self.PATCH, ccid=0x78)
        address = allocator.malloc(100)
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        assert not meta.has_guard

    def test_free_releases_guard_and_memory(self):
        allocator, underlying, _ = defended(self.PATCH, ccid=0x77)
        address = allocator.malloc(100)
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        allocator.free(address)
        assert underlying.live_buffer_count == 0
        # Guard page accessible again so the allocator can recycle it.
        assert allocator.memory.is_accessible(meta.guard_page, 8)

    def test_usable_size_reads_size_from_guard_page(self):
        allocator, _, _ = defended(self.PATCH, ccid=0x77)
        address = allocator.malloc(100)
        assert allocator.malloc_usable_size(address) == 100
        # ... and re-seals the guard afterwards.
        meta = BufferMetadata.decode(
            allocator.memory.read_word(address - METADATA_SIZE))
        assert allocator.memory.protection_of(meta.guard_page) == PROT_NONE

    def test_aligned_overflow_buffer_structure4(self):
        patches = [HeapPatch("memalign", 0x9, VulnType.OVERFLOW)]
        allocator, _, _ = defended(patches, ccid=0x9)
        address = allocator.memalign(64, 100)
        assert address % 64 == 0
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address, b"C" * (PAGE_SIZE + 200))
        allocator.free(address)

    def test_guard_pages_cost_no_rss(self):
        allocator, _, _ = defended(self.PATCH, ccid=0x77)
        before = allocator.memory.resident_pages
        address = allocator.malloc(100)
        # Only the metadata/size words became resident; the guard did not.
        assert allocator.memory.resident_pages - before <= 2


class TestUninitDefense:
    PATCH = [HeapPatch("malloc", 0x5, VulnType.UNINIT_READ)]

    def test_patched_buffer_is_zeroed(self):
        allocator, underlying, context = defended(self.PATCH, ccid=0x5)
        # Dirty the heap then free, so reuse would expose stale bytes.
        context.ccid = 0
        dirty = allocator.malloc(256)
        allocator.memory.write(dirty, b"\xee" * 256)
        allocator.free(dirty)
        context.ccid = 0x5
        address = allocator.malloc(256)
        assert allocator.memory.read(address, 256) == bytes(256)

    def test_unpatched_buffer_not_zeroed(self):
        allocator, _, context = defended(self.PATCH, ccid=0)
        dirty = allocator.malloc(256)
        allocator.memory.write(dirty, b"\xee" * 256)
        allocator.free(dirty)
        address = allocator.malloc(256)
        stale = allocator.memory.read(address, 256)
        assert any(byte for byte in stale)


class TestUafDefense:
    PATCH = [HeapPatch("malloc", 0xA, VulnType.USE_AFTER_FREE)]

    def test_freed_patched_buffer_not_reused(self):
        allocator, underlying, _ = defended(self.PATCH, ccid=0xA)
        first = allocator.malloc(64)
        allocator.memory.write(first, b"legit!!!")
        allocator.free(first)
        second = allocator.malloc(64)
        assert second != first
        # The quarantined memory still holds the original data.
        assert allocator.memory.read(first, 8) == b"legit!!!"
        assert len(allocator.quarantine) == 1

    def test_unpatched_buffer_reused_immediately(self):
        allocator, _, _ = defended(self.PATCH, ccid=0)
        first = allocator.malloc(64)
        allocator.free(first)
        second = allocator.malloc(64)
        assert second == first

    def test_quota_eviction_really_frees(self):
        allocator, underlying, _ = defended(self.PATCH, ccid=0xA,
                                            quarantine_quota=1024)
        for _ in range(16):
            allocator.free(allocator.malloc(256))
        assert allocator.quarantine.evicted > 0
        assert allocator.quarantine.held_bytes <= 1024


class TestCombinedDefenses:
    def test_all_three_bits_on_one_buffer(self):
        patches = [HeapPatch("malloc", 0xF, VulnType.OVERFLOW
                             | VulnType.USE_AFTER_FREE
                             | VulnType.UNINIT_READ)]
        allocator, underlying, _ = defended(patches, ccid=0xF)
        address = allocator.malloc(128)
        # Zero-filled:
        assert allocator.memory.read(address, 128) == bytes(128)
        # Guarded:
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address, b"D" * (PAGE_SIZE + 256))
        # Deferred on free:
        allocator.free(address)
        assert len(allocator.quarantine) == 1
        assert allocator.malloc(128) != address


class TestRealloc:
    def test_realloc_preserves_data_and_metadata(self):
        allocator, _, _ = defended()
        address = allocator.malloc(32)
        allocator.memory.write(address, bytes(range(32)))
        grown = allocator.realloc(address, 128)
        assert allocator.memory.read(grown, 32) == bytes(range(32))
        assert allocator.malloc_usable_size(grown) == 128

    def test_realloc_null_and_zero(self):
        allocator, underlying, _ = defended()
        address = allocator.realloc(0, 64)
        assert address
        assert allocator.realloc(address, 0) == 0
        assert underlying.live_buffer_count == 0

    def test_realloc_of_guarded_buffer(self):
        patches = [HeapPatch("malloc", 0x3, VulnType.OVERFLOW)]
        allocator, _, context = defended(patches, ccid=0x3)
        address = allocator.malloc(64)
        allocator.memory.write(address, b"E" * 64)
        context.ccid = 0  # realloc context is not patched
        grown = allocator.realloc(address, 256)
        assert allocator.memory.read(grown, 64) == b"E" * 64
        meta = BufferMetadata.decode(
            allocator.memory.read_word(grown - METADATA_SIZE))
        assert not meta.has_guard

    def test_realloc_lookup_uses_realloc_fun(self):
        patches = [HeapPatch("realloc", 0x4, VulnType.UNINIT_READ)]
        allocator, _, context = defended(patches, ccid=0x4)
        address = allocator.malloc(16)
        allocator.memory.write(address, b"\xaa" * 16)
        grown = allocator.realloc(address, 64)
        # Kept prefix was copied back over the zero-fill...
        assert allocator.memory.read(grown, 16) == b"\xaa" * 16
        # ...but the grown tail was zeroed by the patch.
        assert allocator.memory.read(grown + 16, 48) == bytes(48)


class RecordingAllocator(Allocator):
    """Mock underlying allocator that records public-API calls only."""

    def __init__(self):
        self.inner = LibcAllocator()
        self.memory = self.inner.memory
        self.calls = []

    def malloc(self, size):
        self.calls.append(("malloc", size))
        return self.inner.malloc(size)

    def calloc(self, nmemb, size):
        self.calls.append(("calloc", nmemb, size))
        return self.inner.calloc(nmemb, size)

    def realloc(self, address, size):
        self.calls.append(("realloc", address, size))
        return self.inner.realloc(address, size)

    def free(self, address):
        self.calls.append(("free", address))
        self.inner.free(address)

    def memalign(self, alignment, size):
        self.calls.append(("memalign", alignment, size))
        return self.inner.memalign(alignment, size)

    def malloc_usable_size(self, address):
        self.calls.append(("malloc_usable_size", address))
        return self.inner.malloc_usable_size(address)


class TestAllocatorTransparency:
    """The paper's property (5): no dependency on allocator internals."""

    def test_only_public_api_touched(self):
        recorder = RecordingAllocator()
        table = PatchTable([HeapPatch("malloc", 0, VulnType.OVERFLOW
                                      | VulnType.USE_AFTER_FREE
                                      | VulnType.UNINIT_READ)])
        allocator = DefendedAllocator(recorder, table,
                                      context_source=FixedContext(0))
        a = allocator.malloc(100)
        b = allocator.memalign(64, 50)
        c = allocator.calloc(2, 30)
        allocator.realloc(c, 200)
        allocator.free(a)
        allocator.free(b)
        assert all(call[0] in ("malloc", "calloc", "realloc", "free",
                               "memalign", "malloc_usable_size")
                   for call in recorder.calls)
        # Underlying malloc was asked for *more* than the user size
        # (metadata + guard slack) — interposition, not pass-through.
        first_malloc = next(call for call in recorder.calls
                            if call[0] == "malloc")
        assert first_malloc[1] > 100

    def test_works_over_recording_allocator_end_to_end(self):
        recorder = RecordingAllocator()
        allocator = DefendedAllocator(recorder, PatchTable.empty(),
                                      context_source=FixedContext())
        address = allocator.malloc(64)
        allocator.memory.write(address, b"F" * 64)
        assert allocator.memory.read(address, 64) == b"F" * 64
        allocator.free(address)
        assert recorder.inner.live_buffer_count == 0


class TestCostDecomposition:
    def test_categories_charged(self):
        meter = CycleMeter()
        underlying = LibcAllocator()
        table = PatchTable([HeapPatch("malloc", 0, VulnType.OVERFLOW)])
        allocator = DefendedAllocator(underlying, table,
                                      context_source=FixedContext(0),
                                      meter=meter)
        address = allocator.malloc(64)
        allocator.free(address)
        assert meter.category("interpose") == 2 * meter.model.interpose
        assert meter.category("metadata") == 2 * meter.model.metadata
        assert meter.category("lookup") == meter.model.hash_lookup
        assert meter.category("defense") >= 2 * meter.model.mprotect

    def test_unfrozen_table_rejected(self):
        table = PatchTable.empty()
        table._frozen = False
        with pytest.raises(ValueError):
            DefendedAllocator(LibcAllocator(), table)
