"""Defense robustness against hostile or malformed free/realloc input.

The interposer is self-describing via the metadata word; these tests pin
what happens when that assumption is violated — pointers that never came
from the defended allocator, wild addresses, junk where the metadata
word should be.  The defense need not *recover* (real interposers abort
too) but must fail with a diagnosable error, never silent corruption.
"""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.machine.errors import InvalidFree, MachineError, SegmentationFault


@pytest.fixture
def defended():
    return DefendedAllocator(LibcAllocator(), PatchTable.empty())


def test_free_of_wild_pointer_raises(defended):
    with pytest.raises(MachineError):
        defended.free(0x4141_4141_4000)


def test_free_of_underlying_interior_pointer_raises(defended):
    address = defended.malloc(128)
    with pytest.raises(MachineError):
        defended.free(address + 24)
    # The legitimate buffer is still usable afterwards.
    defended.memory.write(address, b"ok")
    defended.free(address)


def test_free_survives_junk_metadata_detectably(defended):
    """A buffer whose metadata word was clobbered by the program (e.g.
    an underflow) produces an allocator-level error, not silence."""
    address = defended.malloc(64)
    defended.memory.write_word(address - 8, 0xFFFF_FFFF_FFFF_FFFF)
    with pytest.raises(MachineError):
        defended.free(address)


def test_double_free_detected_through_interposer(defended):
    address = defended.malloc(64)
    defended.free(address)
    with pytest.raises(MachineError):
        defended.free(address)


def test_realloc_of_foreign_pointer_raises(defended):
    with pytest.raises(MachineError):
        defended.realloc(0x5151_0000_0000, 32)


def test_usable_size_of_foreign_pointer_raises(defended):
    with pytest.raises(MachineError):
        defended.malloc_usable_size(0x5151_0000_0000)


def test_defense_state_consistent_after_errors(defended):
    """Errors must not leave the interposer half-updated."""
    good = defended.malloc(64)
    try:
        defended.free(0xBAD0_0000_0000)
    except MachineError:
        pass
    assert defended.stats.free_calls == 0
    defended.memory.write(good, b"still fine")
    assert defended.memory.read(good, 10) == b"still fine"
    defended.free(good)
    assert defended.stats.free_calls == 1