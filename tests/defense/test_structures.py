"""Buffer structures 1-4 (paper Figure 6, Table I)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.defense.metadata import METADATA_SIZE
from repro.defense.structures import (
    MIN_DEFENSE_ALIGNMENT,
    StructureError,
    buffer_start,
    place_buffer,
    plan_request,
    structure_for,
)
from repro.machine.layout import PAGE_SIZE
from repro.vulntypes import VulnType


class TestTableI:
    """Table I: structure chosen per vulnerability type × alignment."""

    @pytest.mark.parametrize("vuln,aligned,expected", [
        (VulnType.NONE, False, 1),
        (VulnType.USE_AFTER_FREE, False, 1),
        (VulnType.UNINIT_READ, False, 1),
        (VulnType.USE_AFTER_FREE | VulnType.UNINIT_READ, False, 1),
        (VulnType.OVERFLOW, False, 2),
        (VulnType.OVERFLOW | VulnType.USE_AFTER_FREE, False, 2),
        (VulnType.OVERFLOW | VulnType.UNINIT_READ, False, 2),
        (VulnType.NONE, True, 3),
        (VulnType.USE_AFTER_FREE, True, 3),
        (VulnType.OVERFLOW, True, 4),
        (VulnType.OVERFLOW | VulnType.USE_AFTER_FREE
         | VulnType.UNINIT_READ, True, 4),
    ])
    def test_structure_selection(self, vuln, aligned, expected):
        assert structure_for(vuln, aligned) == expected


class TestPlanRequest:
    def test_structure1_request(self):
        plan = plan_request(VulnType.NONE, False, 0, 100)
        assert plan.structure == 1
        assert plan.request_size == METADATA_SIZE + 100
        assert plan.request_alignment == 0
        assert plan.user_alignment == 1

    def test_structure2_request_accommodates_guard(self):
        plan = plan_request(VulnType.OVERFLOW, False, 0, 100)
        assert plan.structure == 2
        assert plan.request_size >= METADATA_SIZE + 100 + PAGE_SIZE

    def test_structure3_alignment_floor(self):
        plan = plan_request(VulnType.NONE, True, 8, 100)
        assert plan.structure == 3
        assert plan.request_alignment == MIN_DEFENSE_ALIGNMENT

    def test_structure4(self):
        plan = plan_request(VulnType.OVERFLOW, True, 64, 100)
        assert plan.structure == 4
        assert plan.request_alignment == 64
        assert plan.request_size >= 64 + 100 + PAGE_SIZE

    def test_rejects_negative_size(self):
        with pytest.raises(StructureError):
            plan_request(VulnType.NONE, False, 0, -1)

    def test_rejects_bad_alignment(self):
        with pytest.raises(StructureError):
            plan_request(VulnType.NONE, True, 24, 8)


class TestPlacement:
    def test_structure1_layout(self):
        plan = plan_request(VulnType.NONE, False, 0, 100)
        placed = place_buffer(plan, 0x10000, 100)
        assert placed.user == 0x10000 + METADATA_SIZE
        assert placed.metadata_address == 0x10000
        assert placed.guard == 0
        assert placed.region_size == METADATA_SIZE + 100

    def test_structure2_guard_is_page_aligned_after_user(self):
        plan = plan_request(VulnType.OVERFLOW, False, 0, 100)
        placed = place_buffer(plan, 0x10010, 100)
        assert placed.guard % PAGE_SIZE == 0
        assert placed.guard >= placed.user + 100
        assert placed.guard - (placed.user + 100) < PAGE_SIZE
        assert placed.region_end == placed.guard + PAGE_SIZE
        # Everything fits inside what was requested.
        assert placed.region_end <= placed.raw + plan.request_size

    def test_structure3_user_is_aligned(self):
        plan = plan_request(VulnType.NONE, True, 64, 40)
        raw = 0x40000  # what memalign would return (64-aligned)
        placed = place_buffer(plan, raw, 40)
        assert placed.user == raw + 64
        assert placed.user % 64 == 0
        assert placed.metadata_address == placed.user - METADATA_SIZE

    def test_structure4_combines_alignment_and_guard(self):
        plan = plan_request(VulnType.OVERFLOW, True, 128, 100)
        raw = 0x80000
        placed = place_buffer(plan, raw, 100)
        assert placed.user % 128 == 0
        assert placed.guard % PAGE_SIZE == 0
        assert placed.guard >= placed.user + 100
        assert placed.region_end <= raw + plan.request_size


class TestBufferStart:
    def test_plain_pi(self):
        """Figure 7: pi = p - sizeof(void*) for plain buffers."""
        assert buffer_start(0x1008, aligned=False, alignment=1) == 0x1000

    def test_aligned_pi(self):
        """Figure 7: pi = p - A for aligned buffers."""
        assert buffer_start(0x2040, aligned=True, alignment=64) == 0x2000

    def test_placement_and_pi_agree(self):
        for aligned, alignment in ((False, 0), (True, 32), (True, 4096)):
            for vuln in (VulnType.NONE, VulnType.OVERFLOW):
                plan = plan_request(vuln, aligned, alignment, 64)
                raw = 0x100000  # aligned enough for every case here
                placed = place_buffer(plan, raw, 64)
                recovered = buffer_start(placed.user, aligned,
                                         plan.user_alignment)
                assert recovered == raw


@given(
    vuln=st.sampled_from([VulnType.NONE, VulnType.OVERFLOW,
                          VulnType.USE_AFTER_FREE,
                          VulnType.OVERFLOW | VulnType.UNINIT_READ]),
    aligned=st.booleans(),
    alignment=st.sampled_from([0, 8, 16, 64, 512, 4096]),
    size=st.integers(min_value=0, max_value=1 << 16),
)
def test_layout_invariants(vuln, aligned, alignment, size):
    if aligned and alignment == 0:
        alignment = 16
    plan = plan_request(vuln, aligned, alignment, size)
    raw = 0x7000_0000  # multiple of every alignment used here
    placed = place_buffer(plan, raw, size)
    # Metadata word sits fully inside the region, before the user data.
    assert placed.metadata_address >= raw
    assert placed.metadata_address + METADATA_SIZE == placed.user
    # The user buffer fits before any guard page.
    if placed.guard:
        assert placed.user + size <= placed.guard
        assert placed.guard % PAGE_SIZE == 0
    # The region never exceeds the underlying request.
    assert placed.region_end <= raw + plan.request_size
    # The user buffer honours the requested alignment.
    if aligned:
        assert placed.user % max(alignment, MIN_DEFENSE_ALIGNMENT) == 0
