"""Structure layout at extreme parameters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.defense.structures import plan_request, place_buffer
from repro.machine.errors import SegmentationFault
from repro.machine.layout import PAGE_SIZE
from repro.patch.model import HeapPatch
from repro.program.context import ContextSource
from repro.vulntypes import VulnType


class Fixed(ContextSource):
    """Constant-CCID context source for direct interposer tests."""

    def __init__(self, ccid=0):
        self.ccid = ccid

    def current_ccid(self):
        return self.ccid


def guarded_allocator(ccid=1):
    table = PatchTable([HeapPatch("malloc", ccid, VulnType.OVERFLOW),
                        HeapPatch("memalign", ccid, VulnType.OVERFLOW)])
    return DefendedAllocator(LibcAllocator(), table,
                             context_source=Fixed(ccid))


class TestExtremeSizes:
    def test_zero_byte_guarded_buffer(self):
        allocator = guarded_allocator()
        address = allocator.malloc(0)
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address, b"x" * (2 * PAGE_SIZE))
        allocator.free(address)

    def test_multi_megabyte_guarded_buffer(self):
        allocator = guarded_allocator()
        size = 4 * 1024 * 1024
        address = allocator.malloc(size)
        allocator.memory.write(address + size - 8, b"tail-ok!")
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address + size - 8,
                                   b"y" * (PAGE_SIZE + 16))
        allocator.free(address)

    def test_page_multiple_sizes_guard_still_beyond(self):
        allocator = guarded_allocator()
        for size in (PAGE_SIZE, 2 * PAGE_SIZE, 3 * PAGE_SIZE):
            address = allocator.malloc(size)
            allocator.memory.write(address, b"z" * size)  # flush fill OK
            allocator.free(address)

    def test_huge_alignment_guarded(self):
        allocator = guarded_allocator()
        address = allocator.memalign(1 << 16, 100)
        assert address % (1 << 16) == 0
        with pytest.raises(SegmentationFault):
            allocator.memory.write(address, b"w" * (2 * PAGE_SIZE))
        allocator.free(address)


@given(size=st.integers(min_value=0, max_value=1 << 18),
       alignment=st.sampled_from([0, 16, 256, PAGE_SIZE, 1 << 14]),
       vuln=st.sampled_from([VulnType.NONE, VulnType.OVERFLOW]))
@settings(max_examples=60, deadline=None)
def test_plan_and_place_hold_for_extremes(size, alignment, vuln):
    aligned = alignment > 0
    plan = plan_request(vuln, aligned, alignment, size)
    raw = 1 << 30  # aligned to every alignment used here
    placed = place_buffer(plan, raw, size)
    assert placed.user >= raw + 8
    assert placed.region_end <= raw + plan.request_size
    if placed.guard:
        assert placed.guard % PAGE_SIZE == 0
        assert placed.user + size <= placed.guard
    if aligned:
        assert placed.user % alignment == 0
