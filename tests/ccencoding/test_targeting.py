"""Targeted site-selection strategies (paper Section IV, Figure 2)."""

import pytest

from repro.ccencoding.targeting import (
    Strategy,
    branching_nodes,
    incremental_sites,
    relevant_sites,
    select_sites,
    sites_reaching_target,
    slim_sites,
)
from repro.program.callgraph import CallGraph


def figure2_graph():
    """The paper's running example (reconstructed from the text):

    A calls B and C; B calls D and T2; C calls E and F; D calls T1 and H;
    E and F call T1; H calls I.  Targets are T1 and T2.
    """
    graph = CallGraph(entry="A")
    graph.add_call_site("A", "B")
    graph.add_call_site("A", "C")
    graph.add_call_site("B", "D")
    graph.add_call_site("B", "T2")
    graph.add_call_site("C", "E")
    graph.add_call_site("C", "F")
    graph.add_call_site("D", "T1")
    graph.add_call_site("D", "H")
    graph.add_call_site("E", "T1")
    graph.add_call_site("F", "T1")
    graph.add_call_site("H", "I")
    return graph


def names(graph, site_ids):
    return sorted(f"{graph.site_by_id(s).caller}->{graph.site_by_id(s).callee}"
                  for s in site_ids)


TARGETS = ["T1", "T2"]


class TestFigure2:
    def test_fcs_instruments_everything(self):
        graph = figure2_graph()
        sites = select_sites(graph, TARGETS, Strategy.FCS)
        assert len(sites) == graph.site_count

    def test_tcs_prunes_unreaching_edges(self):
        """Figure 2(b): DH and HI cannot reach a target."""
        graph = figure2_graph()
        sites = select_sites(graph, TARGETS, Strategy.TCS)
        assert names(graph, sites) == [
            "A->B", "A->C", "B->D", "B->T2", "C->E", "C->F",
            "D->T1", "E->T1", "F->T1",
        ]

    def test_slim_drops_non_branching_nodes(self):
        """Figure 2(c): D, E, F have one relevant out-edge each."""
        graph = figure2_graph()
        sites = select_sites(graph, TARGETS, Strategy.SLIM)
        assert names(graph, sites) == [
            "A->B", "A->C", "B->D", "B->T2", "C->E", "C->F",
        ]

    def test_incremental_keeps_only_true_branching(self):
        """§IV-C: only AB, AC, CE, CF need to be instrumented."""
        graph = figure2_graph()
        sites = select_sites(graph, TARGETS, Strategy.INCREMENTAL)
        assert names(graph, sites) == ["A->B", "A->C", "C->E", "C->F"]

    def test_branching_nodes(self):
        graph = figure2_graph()
        assert branching_nodes(graph, TARGETS) == frozenset({"A", "B", "C"})

    def test_sites_reaching_single_target(self):
        graph = figure2_graph()
        reaching_t2 = sites_reaching_target(graph, "T2")
        assert names(graph, reaching_t2) == ["A->B", "B->T2"]


class TestStrategyLattice:
    def test_subset_chain(self):
        """Incremental ⊆ Slim ⊆ TCS ⊆ FCS on any graph."""
        graph = figure2_graph()
        fcs = select_sites(graph, TARGETS, Strategy.FCS)
        tcs = select_sites(graph, TARGETS, Strategy.TCS)
        slim = select_sites(graph, TARGETS, Strategy.SLIM)
        incremental = select_sites(graph, TARGETS, Strategy.INCREMENTAL)
        assert incremental <= slim <= tcs <= fcs

    def test_multigraph_parallel_sites_count_as_branching(self):
        """Two call sites to the same callee are two relevant edges."""
        graph = CallGraph()
        graph.add_call_site("main", "work")
        graph.add_call_site("work", "malloc", "first")
        graph.add_call_site("work", "malloc", "second")
        slim = slim_sites(graph, ["malloc"])
        assert len(slim) == 2  # work is branching via parallel edges
        incremental = incremental_sites(graph, ["malloc"])
        assert len(incremental) == 2  # both edges reach the same target

    def test_false_branching_node_skipped_by_incremental(self):
        """A node whose edges reach different targets only."""
        graph = CallGraph()
        graph.add_call_site("main", "malloc")
        graph.add_call_site("main", "calloc")
        slim = slim_sites(graph, ["malloc", "calloc"])
        assert len(slim) == 2  # branching by the combined-target view
        incremental = incremental_sites(graph, ["malloc", "calloc"])
        assert incremental == frozenset()

    def test_recursive_graph_handled(self):
        """Back edges must not hang or break the per-target BFS."""
        graph = CallGraph()
        graph.add_call_site("main", "rec")
        graph.add_call_site("rec", "rec", "self")
        graph.add_call_site("rec", "malloc")
        for strategy in Strategy:
            sites = select_sites(graph, ["malloc"], strategy)
            assert graph.site("rec", "malloc").site_id in sites

    def test_no_targets_present(self):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        assert relevant_sites(graph, ["malloc"]) == frozenset()
        assert select_sites(graph, [], Strategy.TCS) == frozenset()

    def test_strategy_from_name(self):
        assert Strategy.from_name("slim") is Strategy.SLIM
        assert Strategy.from_name("FCS") is Strategy.FCS
        with pytest.raises(ValueError):
            Strategy.from_name("bogus")
