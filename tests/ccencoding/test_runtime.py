"""Encoding runtime: the V state machine driven by a process."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import SCHEMES, EncodingRuntime, InstrumentationPlan, Strategy
from repro.ccencoding.runtime import WalkedContextSource
from repro.program.cost import CycleMeter
from repro.program.callgraph import CallGraph
from repro.program.process import Process
from repro.program.program import Program


class DeepProgram(Program):
    """main -> {parse, render} -> helper -> malloc (two contexts)."""

    name = "deep"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "parse")
        graph.add_call_site("main", "render")
        graph.add_call_site("parse", "helper")
        graph.add_call_site("render", "helper")
        graph.add_call_site("helper", "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p):
        a = p.call("parse", self._mid)
        b = p.call("render", self._mid)
        p.free(a)
        p.free(b)

    def _mid(self, p):
        return p.call("helper", self._helper)

    def _helper(self, p):
        return p.malloc(32)


@pytest.fixture
def program():
    return DeepProgram()


def run_with(program, strategy, scheme="pcc"):
    plan = InstrumentationPlan.build(program.graph, ["malloc"], strategy)
    codec = SCHEMES[scheme].build(plan)
    meter = CycleMeter()
    runtime = EncodingRuntime(codec, meter)
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=runtime, meter=meter)
    process.run(program)
    return process, runtime, codec, meter


class TestRuntimeAgreesWithStaticEncoding:
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("scheme", ["pcc", "pcce", "deltapath"])
    def test_runtime_ccid_equals_static_encode(self, program, strategy,
                                               scheme):
        process, _, codec, _ = run_with(program, strategy, scheme)
        for event in process.allocations:
            assert event.ccid == codec.encode_context_ids(event.context)

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_two_contexts_get_two_ccids(self, program, strategy):
        process, _, _, _ = run_with(program, strategy)
        ccids = {event.ccid for event in process.allocations}
        assert len(ccids) == 2

    def test_ccids_stable_across_runs(self, program):
        first, _, _, _ = run_with(program, Strategy.INCREMENTAL)
        second, _, _, _ = run_with(program, Strategy.INCREMENTAL)
        assert ([e.ccid for e in first.allocations]
                == [e.ccid for e in second.allocations])


class TestRuntimeCosts:
    def test_fewer_instrumented_sites_cost_less(self, program):
        _, _, _, fcs_meter = run_with(program, Strategy.FCS)
        _, _, _, slim_meter = run_with(program, Strategy.SLIM)
        assert (slim_meter.category("encoding")
                < fcs_meter.category("encoding"))

    def test_update_counters(self, program):
        _, runtime, _, _ = run_with(program, Strategy.FCS)
        # Six call-site crossings: 2 × (main->mid, mid->helper,
        # helper->malloc).  free() is intercepted by address, not via an
        # encoded call site, so it does not cross one.
        assert runtime.sites_crossed == 6
        assert runtime.updates_executed <= runtime.sites_crossed

    def test_uninstrumented_site_does_not_charge(self, program):
        plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                         Strategy.INCREMENTAL)
        codec = SCHEMES["pcc"].build(plan)
        meter = CycleMeter()
        runtime = EncodingRuntime(codec, meter)
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=runtime, meter=meter)
        process.run(program)
        expected = (runtime.updates_executed * meter.model.encode_site)
        prologue_part = meter.category("encoding") - expected
        # Remaining charge is only instrumented-function prologues.
        assert prologue_part >= 0
        assert prologue_part % meter.model.encode_prologue == 0


class TestVRestoreSemantics:
    def test_sibling_subtree_does_not_pollute(self):
        """The history-independence property V-restore guarantees: the
        CCID observed in the second sibling is identical whether or not
        the first sibling executed (original PCC under pruning would
        leak the first subtree's V)."""

        class Siblings(Program):
            name = "siblings"

            def __init__(self, run_first):
                super().__init__()
                self.run_first = run_first
                self.observed = []

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "first")
                graph.add_call_site("first", "deep")
                graph.add_call_site("deep", "malloc")
                graph.add_call_site("main", "second")
                graph.add_call_site("second", "calloc")
                return graph

            def main(self, p):
                if self.run_first:
                    p.call("first",
                           lambda p2: p2.call("deep",
                                              lambda p3: p3.malloc(8)))
                p.call("second", lambda p2: p2.calloc(1, 8))

        ccids = []
        for run_first in (True, False):
            program = Siblings(run_first)
            plan = InstrumentationPlan.build(
                program.graph, ["malloc", "calloc"], Strategy.INCREMENTAL)
            codec = SCHEMES["pcc"].build(plan)
            runtime = EncodingRuntime(codec)
            process = Process(program.graph, heap=LibcAllocator(),
                              context_source=runtime)
            process.run(program)
            ccids.append(process.allocations[-1].ccid)
        assert ccids[0] == ccids[1]


class TestWalkedContextSource:
    def test_walker_distinguishes_contexts(self, program):
        meter = CycleMeter()
        walker = WalkedContextSource(meter)
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=walker, meter=meter)
        process.run(program)
        ccids = {event.ccid for event in process.allocations}
        assert len(ccids) == 2
        assert walker.walks_performed == 2

    def test_walker_is_much_more_expensive(self, program):
        _, _, _, encoded_meter = run_with(program, Strategy.FCS)
        meter = CycleMeter()
        walker = WalkedContextSource(meter)
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=walker, meter=meter)
        process.run(program)
        assert (meter.category("encoding")
                > encoded_meter.category("encoding") * 3)

    def test_walker_ccids_stable(self, program):
        results = []
        for _ in range(2):
            walker = WalkedContextSource()
            process = Process(program.graph, heap=LibcAllocator(),
                              context_source=walker)
            process.run(program)
            results.append([e.ccid for e in process.allocations])
        assert results[0] == results[1]
