"""Instrumentation plans and the static-size model (Table III basis)."""

import pytest

from repro.ccencoding.instrumentation import (
    BYTES_PER_PROLOGUE,
    BYTES_PER_SITE,
    InstrumentationPlan,
    plans_for_all_strategies,
)
from repro.ccencoding.targeting import Strategy
from repro.program.callgraph import CallGraph


@pytest.fixture
def graph():
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "malloc")
    graph.add_call_site("b", "malloc")
    graph.add_call_site("main", "logger")
    graph.add_call_site("logger", "io")
    return graph


def test_build_selects_per_strategy(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    assert plan.site_count == 4
    assert plan.instrumented_functions == frozenset({"main", "a", "b"})


def test_build_rejects_unknown_target(graph):
    with pytest.raises(ValueError):
        InstrumentationPlan.build(graph, ["calloc"], Strategy.TCS)


def test_is_instrumented(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    assert plan.is_instrumented(graph.site("a", "malloc"))
    assert not plan.is_instrumented(graph.site("logger", "io"))


def test_inserted_bytes_model(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    expected = 4 * BYTES_PER_SITE + 3 * BYTES_PER_PROLOGUE
    assert plan.inserted_bytes == expected


def test_size_increase_fraction(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    assert plan.size_increase(plan.inserted_bytes * 10) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        plan.size_increase(0)


def test_size_decreases_with_stronger_strategies(graph):
    plans = plans_for_all_strategies(graph, ["malloc"])
    sizes = [plans[s].inserted_bytes for s in
             (Strategy.FCS, Strategy.TCS, Strategy.SLIM,
              Strategy.INCREMENTAL)]
    assert sizes == sorted(sizes, reverse=True)


def test_summary_fields(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.SLIM)
    summary = plan.summary()
    assert summary["strategy"] == "slim"
    assert summary["total_sites"] == graph.site_count
    assert summary["instrumented_sites"] == plan.site_count
    assert summary["inserted_bytes"] == plan.inserted_bytes
