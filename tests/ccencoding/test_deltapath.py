"""DeltaPath codec: virtual dispatch edges and the wide value space."""

import pytest

from repro.ccencoding.deltapath import DeltaPathScheme
from repro.ccencoding.instrumentation import InstrumentationPlan
from repro.ccencoding.targeting import Strategy
from repro.program.callgraph import CallGraph


def virtual_call_graph():
    """A dispatch site with three possible receivers, as DeltaPath models
    virtual calls: one labelled edge per (site, resolved callee)."""
    graph = CallGraph()
    for receiver in ("ImplA", "ImplB", "ImplC"):
        graph.add_call_site("main", receiver, "vcall")
        graph.add_call_site(receiver, "malloc")
    return graph


def test_virtual_dispatch_contexts_distinguished():
    graph = virtual_call_graph()
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.FCS)
    codec = DeltaPathScheme().build(plan)
    ids = {codec.encode_path(ctx)
           for ctx in graph.enumerate_contexts("malloc")}
    assert len(ids) == 3
    assert sorted(ids) == [0, 1, 2]


def test_decode_resolves_receiver():
    graph = virtual_call_graph()
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    codec = DeltaPathScheme().build(plan)
    for context in graph.enumerate_contexts("malloc"):
        decoded = codec.decode("malloc", codec.encode_path(context))
        assert decoded == context
        assert decoded[0].callee in ("ImplA", "ImplB", "ImplC")


def test_wide_value_space():
    """DeltaPath's raison d'être: context counts beyond 64 bits."""
    graph = CallGraph()
    previous = "main"
    # 80 consecutive diamonds: 2**80 contexts — overflows 64 bits.
    for level in range(80):
        left, right, join = f"l{level}", f"r{level}", f"j{level}"
        graph.add_call_site(previous, left)
        graph.add_call_site(previous, right)
        graph.add_call_site(left, join)
        graph.add_call_site(right, join)
        previous = join
    graph.add_call_site(previous, "malloc")
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.FCS)
    codec = DeltaPathScheme().build(plan)
    assert codec.num_contexts["malloc"] == 2 ** 80
    # Take one deep context and round-trip it through the wide space.
    path = []
    node = "main"
    while node != "malloc":
        site = graph.out_sites(node)[0]
        path.append(site)
        node = site.callee
    ccid = codec.encode_path(path)
    assert codec.decode("malloc", ccid) == tuple(path)


def test_value_bits():
    assert DeltaPathScheme().build(
        InstrumentationPlan.build(virtual_call_graph(), ["malloc"],
                                  Strategy.FCS)).value_bits == 128
