"""Deep-call-chain regression: graph analyses must not recurse.

The synthetic workload generators produce call chains far deeper than
CPython's default recursion limit (1000); every traversal the encoding
stack depends on — acyclicity, back edges, topological order, context
enumeration, dense constant assignment — must therefore be iterative.
The old recursive ``_topological_order`` (and the ``is_acyclic`` guard
in front of it) crashed with ``RecursionError`` on these graphs.
"""

import sys

import pytest

from repro.ccencoding import SCHEMES, InstrumentationPlan, Strategy
from repro.program.callgraph import CallGraph, CallGraphError


def chain_graph(depth):
    """main -> f0 -> f1 -> ... -> f<depth-1> -> malloc."""
    graph = CallGraph()
    parent = "main"
    for level in range(depth):
        child = f"f{level}"
        graph.add_call_site(parent, child)
        parent = child
    graph.add_call_site(parent, "malloc")
    return graph


#: Comfortably past the default recursion limit.
DEPTH = 3 * sys.getrecursionlimit()


@pytest.fixture(scope="module")
def deep_graph():
    return chain_graph(DEPTH)


def test_is_acyclic_on_deep_chain(deep_graph):
    assert deep_graph.is_acyclic()


def test_back_edges_on_deep_chain(deep_graph):
    assert deep_graph.back_edges() == frozenset()


def test_topological_order_on_deep_chain(deep_graph):
    order = deep_graph.topological_order()
    assert len(order) == len(deep_graph.function_names)
    position = {name: index for index, name in enumerate(order)}
    for site in deep_graph.sites:
        assert position[site.caller] < position[site.callee]


def test_topological_order_rejects_cycles():
    graph = CallGraph()
    graph.add_call_site("main", "rec")
    graph.add_call_site("rec", "rec", "self")
    with pytest.raises(CallGraphError):
        graph.topological_order()


def test_enumerate_contexts_on_deep_chain(deep_graph):
    contexts = deep_graph.enumerate_contexts("malloc")
    assert len(contexts) == 1
    assert len(contexts[0]) == DEPTH + 1


def test_pcce_dense_build_and_decode_on_deep_chain(deep_graph):
    plan = InstrumentationPlan.build(deep_graph, ["malloc"], Strategy.FCS)
    codec = SCHEMES["pcce"].build(plan)
    assert codec.num_contexts["malloc"] == 1
    (context,) = deep_graph.enumerate_contexts("malloc")
    ccid = codec.encode_path(context)
    assert codec.decode("malloc", ccid) == context


def test_deep_cycle_detected_without_recursion():
    graph = chain_graph(DEPTH)
    graph.add_call_site(f"f{DEPTH - 1}", "f0", "loop")
    assert not graph.is_acyclic()
    assert len(graph.back_edges()) == 1
