"""PCCE additive precise codec: dense numbering and decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccencoding.base import EncodingError
from repro.ccencoding.instrumentation import InstrumentationPlan
from repro.ccencoding.pcce import PCCEScheme, _topological_order
from repro.ccencoding.targeting import Strategy
from repro.program.callgraph import CallGraph


def diamond_graph():
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "c")
    graph.add_call_site("b", "c")
    graph.add_call_site("c", "malloc")
    graph.add_call_site("main", "logger")
    return graph


def build(graph, strategy):
    plan = InstrumentationPlan.build(graph, ["malloc"], strategy)
    return PCCEScheme().build(plan)


class TestDenseNumbering:
    def test_ids_are_dense_under_fcs(self):
        graph = diamond_graph()
        codec = build(graph, Strategy.FCS)
        ids = sorted(codec.encode_path(ctx)
                     for ctx in graph.enumerate_contexts("malloc"))
        assert ids == [0, 1]
        assert codec.num_contexts["malloc"] == 2

    def test_ids_are_dense_under_tcs(self):
        graph = diamond_graph()
        codec = build(graph, Strategy.TCS)
        ids = sorted(codec.encode_path(ctx)
                     for ctx in graph.enumerate_contexts("malloc"))
        assert ids == [0, 1]

    def test_num_contexts_multiplies_through_diamonds(self):
        graph = CallGraph()
        for mid in ("a", "b", "c"):
            graph.add_call_site("main", mid)
            graph.add_call_site(mid, "join")
        graph.add_call_site("join", "malloc")
        codec = build(graph, Strategy.FCS)
        assert codec.num_contexts["malloc"] == 3
        ids = sorted(codec.encode_path(ctx)
                     for ctx in graph.enumerate_contexts("malloc"))
        assert ids == [0, 1, 2]


class TestDecoding:
    @pytest.mark.parametrize("strategy",
                             [Strategy.FCS, Strategy.TCS])
    def test_closed_form_decode_roundtrip(self, strategy):
        graph = diamond_graph()
        codec = build(graph, strategy)
        for context in graph.enumerate_contexts("malloc"):
            ccid = codec.encode_path(context)
            assert codec.decode("malloc", ccid) == context

    @pytest.mark.parametrize("strategy",
                             [Strategy.SLIM, Strategy.INCREMENTAL])
    def test_enumeration_decode_roundtrip(self, strategy):
        graph = diamond_graph()
        codec = build(graph, strategy)
        for context in graph.enumerate_contexts("malloc"):
            ccid = codec.encode_path(context)
            assert codec.decode("malloc", ccid) == context

    def test_decode_rejects_invalid_id(self):
        graph = diamond_graph()
        codec = build(graph, Strategy.FCS)
        with pytest.raises(EncodingError):
            codec.decode("malloc", 999)

    def test_decode_rejects_unknown_target(self):
        graph = diamond_graph()
        codec = build(graph, Strategy.FCS)
        with pytest.raises(EncodingError):
            codec.decode("nothere", 0)

    def test_supports_decoding_flag(self):
        assert build(diamond_graph(), Strategy.FCS).supports_decoding


class TestRestrictions:
    def test_cyclic_graph_rejected(self):
        graph = CallGraph()
        graph.add_call_site("main", "rec")
        graph.add_call_site("rec", "rec", "self")
        graph.add_call_site("rec", "malloc")
        with pytest.raises(EncodingError):
            build(graph, Strategy.FCS)

    def test_topological_order_parents_first(self):
        graph = diamond_graph()
        order = _topological_order(graph)
        position = {name: i for i, name in enumerate(order)}
        for site in graph.sites:
            assert position[site.caller] < position[site.callee]


@st.composite
def layered_dag(draw):
    graph = CallGraph()
    widths = draw(st.lists(st.integers(min_value=1, max_value=3),
                           min_size=1, max_size=3))
    previous = ["main"]
    for level, width in enumerate(widths):
        current = [f"f{level}_{i}" for i in range(width)]
        for callee in current:
            count = draw(st.integers(min_value=1, max_value=len(previous)))
            for caller in draw(st.permutations(previous))[:count]:
                graph.add_call_site(caller, callee)
        previous = current
    for node in previous:
        graph.add_call_site(node, "malloc")
    return graph


@given(layered_dag(),
       st.sampled_from([Strategy.FCS, Strategy.TCS, Strategy.SLIM,
                        Strategy.INCREMENTAL]))
@settings(max_examples=40, deadline=None)
def test_injectivity_and_decode_on_random_dags(graph, strategy):
    plan = InstrumentationPlan.build(graph, ["malloc"], strategy)
    codec = PCCEScheme().build(plan)
    contexts = graph.enumerate_contexts("malloc")
    ids = {}
    for context in contexts:
        ccid = codec.encode_path(context)
        assert ccid not in ids, "PCCE must be exactly injective"
        ids[ccid] = context
        assert codec.decode("malloc", ccid) == context
    if strategy in (Strategy.FCS, Strategy.TCS):
        assert sorted(ids) == list(range(len(contexts)))
