"""PCC hashing codec."""

import pytest

from repro.ccencoding.base import MASK64, splitmix64
from repro.ccencoding.instrumentation import InstrumentationPlan
from repro.ccencoding.pcc import PCCCodec, PCCScheme
from repro.ccencoding.targeting import Strategy
from repro.program.callgraph import CallGraph


@pytest.fixture
def graph():
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "malloc")
    graph.add_call_site("b", "malloc")
    return graph


@pytest.fixture
def codec(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.FCS)
    return PCCScheme().build(plan)


def test_mix_is_3v_plus_c(codec, graph):
    site = graph.site("a", "malloc")
    t = 12345
    expected = (3 * t + codec.site_constant(site)) & MASK64
    assert codec.mix(t, site) == expected


def test_site_constants_dispersed(codec, graph):
    constants = [codec.site_constant(site) for site in graph.sites]
    assert len(set(constants)) == len(constants)
    # SplitMix64 output should not be tiny sequential values.
    assert all(constant > 1 << 32 for constant in constants)


def test_distinct_contexts_distinct_ids(codec, graph):
    table = codec.context_table("malloc")
    assert len(table) == 2
    assert codec.is_injective_for("malloc")
    assert codec.collisions("malloc") == []


def test_encode_path_folds_in_order(codec, graph):
    context = graph.enumerate_contexts("malloc")[0]
    value = codec.seed()
    for site in context:
        value = codec.mix(value, site)
    assert codec.encode_path(context) == value


def test_encode_skips_uninstrumented_sites(graph):
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.SLIM)
    codec = PCCScheme().build(plan)
    # Slim prunes a->malloc and b->malloc (non-branching nodes); only
    # main's two sites encode.
    context = graph.enumerate_contexts("malloc")[0]
    encoded = codec.encode_path(context)
    main_site = context[0]
    assert encoded == codec.mix(codec.seed(), main_site)


def test_no_decoding(codec):
    assert not codec.supports_decoding
    from repro.ccencoding.base import EncodingError
    with pytest.raises(EncodingError):
        codec.decode("malloc", 123)


def test_collision_is_tolerated_not_fatal():
    """A hash collision may only cause spurious enhancement (paper §IV).

    Encoding two contexts to one id is representable: context_table just
    groups them.  This test pins the API contract the defense relies on —
    collisions() reports rather than raises.
    """
    graph = CallGraph()
    graph.add_call_site("main", "malloc", "only")
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.FCS)
    codec = PCCScheme().build(plan)
    assert codec.collisions("malloc") == []


def test_splitmix64_known_vector():
    # SplitMix64 with seed 0 produces this well-known first output.
    assert splitmix64(0) == 0xE220A8397B1DCDAF


def test_seed_is_zero(codec):
    assert codec.seed() == 0


def test_recursion_supported():
    graph = CallGraph()
    graph.add_call_site("main", "rec")
    graph.add_call_site("rec", "rec", "self")
    graph.add_call_site("rec", "malloc")
    plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
    codec = PCCScheme().build(plan)
    # Depth-1 and depth-2 recursive contexts hash differently.
    main_rec = graph.site("main", "rec")
    self_rec = graph.site("rec", "rec", "self")
    leaf = graph.site("rec", "malloc")
    shallow = codec.encode_path([main_rec, leaf])
    deep = codec.encode_path([main_rec, self_rec, leaf])
    assert shallow != deep
