"""The distinguishability invariant on random DAGs.

The correctness claim behind every pruning strategy (DESIGN.md §5): for a
target ``t``, the *sequence of instrumented call sites* along a calling
context determines the context uniquely — under TCS trivially, under Slim
because all branch decisions are recorded, under Incremental because all
true-branching decisions w.r.t. ``t`` are recorded and false-branching
decisions are implied by the target's identity.

Hypothesis builds random layered DAG multigraphs and checks the
injectivity of context -> instrumented-subsequence for every target and
strategy, which in turn guarantees any injective-per-sequence encoder
(PCC modulo hash collisions, the additive codecs exactly) distinguishes
contexts.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccencoding.targeting import Strategy, select_sites
from repro.program.callgraph import CallGraph

TARGETS = ("malloc", "calloc")


@st.composite
def layered_dag(draw):
    """A random layered multigraph with allocation targets at the bottom."""
    layer_sizes = draw(st.lists(st.integers(min_value=1, max_value=4),
                                min_size=2, max_size=4))
    graph = CallGraph()
    layers: List[List[str]] = [["main"]]
    for level, width in enumerate(layer_sizes):
        layers.append([f"f{level}_{i}" for i in range(width)])
    # Wire consecutive layers; every node gets at least one caller.
    for upper, lower in zip(layers, layers[1:]):
        for callee in lower:
            caller_count = draw(st.integers(min_value=1,
                                            max_value=len(upper)))
            callers = draw(st.permutations(upper))[:caller_count]
            for caller in callers:
                # Occasionally add parallel edges (distinct labels).
                edges = draw(st.integers(min_value=1, max_value=2))
                for k in range(edges):
                    graph.add_call_site(caller, callee, f"e{k}")
    # Bottom layer (and occasionally middle nodes) call targets.
    for node in layers[-1]:
        for target in TARGETS:
            if draw(st.booleans()):
                graph.add_call_site(node, target, "t")
    if not graph.allocation_targets:
        graph.add_call_site(layers[-1][0], "malloc", "forced")
    return graph


@given(layered_dag())
@settings(max_examples=60, deadline=None)
def test_instrumented_subsequence_distinguishes_contexts(graph):
    targets = graph.allocation_targets
    for strategy in Strategy:
        instrumented = select_sites(graph, targets, strategy)
        for target in targets:
            seen: dict = {}
            for context in graph.enumerate_contexts(target):
                key: Tuple[int, ...] = tuple(
                    site.site_id for site in context
                    if site.site_id in instrumented)
                assert key not in seen, (
                    f"{strategy.value}: contexts {seen[key]} and {context} "
                    f"of {target} share instrumented subsequence {key}")
                seen[key] = context


@given(layered_dag())
@settings(max_examples=60, deadline=None)
def test_strategy_subset_chain_holds_generally(graph):
    targets = graph.allocation_targets
    fcs = select_sites(graph, targets, Strategy.FCS)
    tcs = select_sites(graph, targets, Strategy.TCS)
    slim = select_sites(graph, targets, Strategy.SLIM)
    incremental = select_sites(graph, targets, Strategy.INCREMENTAL)
    assert incremental <= slim <= tcs <= fcs


@given(layered_dag())
@settings(max_examples=60, deadline=None)
def test_pruned_selection_still_distinguishes_contexts(graph):
    """The static pre-pass (dead-code drop + default-edge elision) must
    preserve the distinguishability invariant for every strategy."""
    targets = graph.allocation_targets
    for strategy in Strategy:
        instrumented = select_sites(graph, targets, strategy, prune=True)
        for target in targets:
            seen: dict = {}
            for context in graph.enumerate_contexts(target):
                key: Tuple[int, ...] = tuple(
                    site.site_id for site in context
                    if site.site_id in instrumented)
                assert key not in seen, (
                    f"{strategy.value}+prune: contexts {seen[key]} and "
                    f"{context} of {target} share instrumented "
                    f"subsequence {key}")
                seen[key] = context


@given(layered_dag())
@settings(max_examples=60, deadline=None)
def test_pruned_selection_is_a_subset_of_unpruned(graph):
    """Pruning never adds sites; in particular pruned counts are <= TCS
    for every strategy below FCS in the subset chain."""
    targets = graph.allocation_targets
    tcs = select_sites(graph, targets, Strategy.TCS)
    for strategy in Strategy:
        unpruned = select_sites(graph, targets, strategy)
        pruned = select_sites(graph, targets, strategy, prune=True)
        assert pruned <= unpruned
        if strategy is not Strategy.FCS:
            assert len(pruned) <= len(tcs)
