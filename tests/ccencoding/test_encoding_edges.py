"""Encoding edge cases: odd graphs the algorithms must survive."""

import pytest

from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
    plans_for_all_strategies,
)
from repro.ccencoding.base import EncodingError, decode_by_enumeration
from repro.program.callgraph import CallGraph


class TestUnusualGraphs:
    def test_target_is_entry_neighbour(self):
        """Shortest possible program: main -> malloc."""
        graph = CallGraph()
        graph.add_call_site("main", "malloc")
        for strategy, plan in plans_for_all_strategies(
                graph, ["malloc"]).items():
            codec = SCHEMES["pcce"].build(plan)
            contexts = graph.enumerate_contexts("malloc")
            assert len(contexts) == 1
            ccid = codec.encode_path(contexts[0])
            assert codec.decode("malloc", ccid) == contexts[0]

    def test_unreachable_target_region(self):
        """A target no path from main reaches: nothing to distinguish,
        nothing to break."""
        graph = CallGraph()
        graph.add_call_site("main", "work")
        graph.add_call_site("orphan", "malloc")  # orphan unreachable
        plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
        codec = SCHEMES["pcce"].build(plan)
        assert graph.enumerate_contexts("malloc") == []
        # The orphan edge is relevant (it reaches malloc) but carries no
        # dense constant since its caller has no contexts.
        assert codec.num_contexts.get("malloc", 0) == 0

    def test_disconnected_components_tolerated(self):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        graph.add_call_site("island1", "island2")
        graph.add_call_site("a", "malloc")
        for strategy in Strategy:
            plan = InstrumentationPlan.build(graph, ["malloc"], strategy)
            codec = SCHEMES["pcc"].build(plan)
            assert codec.is_injective_for("malloc")

    def test_wide_multigraph_parallel_edges(self):
        """Sixteen parallel call sites between one pair."""
        graph = CallGraph()
        for k in range(16):
            graph.add_call_site("main", "f", f"p{k}")
        graph.add_call_site("f", "malloc")
        plan = InstrumentationPlan.build(graph, ["malloc"],
                                         Strategy.INCREMENTAL)
        codec = SCHEMES["pcce"].build(plan)
        contexts = graph.enumerate_contexts("malloc")
        assert len(contexts) == 16
        ccids = {codec.encode_path(ctx) for ctx in contexts}
        assert len(ccids) == 16

    def test_deep_chain_constant_depth_state(self):
        """A 200-deep chain must not blow recursion or state."""
        graph = CallGraph()
        parent = "main"
        for level in range(200):
            child = f"f{level}"
            graph.add_call_site(parent, child)
            parent = child
        graph.add_call_site(parent, "malloc")
        plan = InstrumentationPlan.build(graph, ["malloc"],
                                         Strategy.SLIM)
        assert plan.site_count == 0  # pure chain: nothing to distinguish
        codec = SCHEMES["pcc"].build(plan)
        assert codec.is_injective_for("malloc")


class TestDecodeErrors:
    def test_enumeration_decode_reports_ambiguity(self):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        graph.add_call_site("main", "b")
        graph.add_call_site("a", "malloc")
        graph.add_call_site("b", "malloc")
        plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)

        class Constant(SCHEMES["pcc"].build(plan).__class__):
            def mix(self, value, site):
                return 7

        codec = Constant(plan)
        with pytest.raises(EncodingError, match="ambiguous"):
            decode_by_enumeration(codec, "malloc", 7)

    def test_enumeration_decode_reports_miss(self):
        graph = CallGraph()
        graph.add_call_site("main", "malloc")
        plan = InstrumentationPlan.build(graph, ["malloc"], Strategy.TCS)
        codec = SCHEMES["pcc"].build(plan)
        with pytest.raises(EncodingError, match="no context"):
            decode_by_enumeration(codec, "malloc", 0xDEAD)


class TestRuntimeEdges:
    def test_runtime_survives_zero_instrumentation(self):
        """A plan with nothing instrumented: every CCID is the seed."""
        graph = CallGraph()
        parent = "main"
        for level in range(3):
            child = f"f{level}"
            graph.add_call_site(parent, child)
            parent = child
        graph.add_call_site(parent, "malloc")
        plan = InstrumentationPlan.build(graph, ["malloc"],
                                         Strategy.INCREMENTAL)
        assert plan.site_count == 0
        codec = SCHEMES["pcc"].build(plan)
        runtime = EncodingRuntime(codec)
        runtime.enter_function("main")
        for site in graph.sites:
            runtime.at_call_site(site)
            runtime.enter_function(site.callee)
        assert runtime.current_ccid() == codec.seed()
        assert runtime.updates_executed == 0
