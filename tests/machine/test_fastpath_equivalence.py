"""Fast-path equivalence: the optimized memory paths must be
observation-identical to the slow validator (``fast_paths=False``) —
same fault addresses, same residency accounting, same cycle totals.
"""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.machine import (
    PAGE_SIZE,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    SegmentationFault,
    VirtualMemory,
)
from repro.program.callgraph import CallGraph
from repro.program.process import Process, ProgramLike


def _pair():
    return VirtualMemory(fast_paths=True), VirtualMemory(fast_paths=False)


def _fault_address(fn):
    with pytest.raises(SegmentationFault) as exc:
        fn()
    return exc.value.address


class TestFaultEquivalence:
    """Every fault the fast path raises matches the slow path exactly."""

    def test_unmapped_read_same_fault_address(self):
        fast, slow = _pair()
        for mem in (fast, slow):
            mem.mmap(PAGE_SIZE)
        target = 0x7000_0000_0123
        assert (_fault_address(lambda: fast.read(target, 8))
                == _fault_address(lambda: slow.read(target, 8))
                == target)
        assert fast.fault_count == slow.fault_count == 1

    def test_protection_fault_same_address(self):
        fast, slow = _pair()
        addrs = []
        for mem in (fast, slow):
            a = mem.mmap(2 * PAGE_SIZE, prot=PROT_RW)
            mem.mprotect(a, PAGE_SIZE, PROT_READ)
            addrs.append(a)
        fa = _fault_address(lambda: fast.write(addrs[0] + 5, b"x"))
        sa = _fault_address(lambda: slow.write(addrs[1] + 5, b"x"))
        assert fa - addrs[0] == sa - addrs[1] == 5

    def test_cross_page_fault_at_second_page(self):
        """A straddling access faults at the *second* page's base when
        only the first page is accessible — both modes agree."""
        fast, slow = _pair()
        offsets = []
        for mem in (fast, slow):
            a = mem.mmap(2 * PAGE_SIZE, prot=PROT_RW)
            mem.mprotect(a + PAGE_SIZE, PAGE_SIZE, PROT_NONE)
            start = a + PAGE_SIZE - 4
            offsets.append(_fault_address(lambda: mem.read(start, 8)) - a)
        assert offsets[0] == offsets[1] == PAGE_SIZE

    def test_negative_and_huge_addresses(self):
        fast, slow = _pair()
        for target in (-8, (1 << 48) - 4):
            fa = _fault_address(lambda: fast.read(target, 8))
            sa = _fault_address(lambda: slow.read(target, 8))
            assert fa == sa

    def test_fill_invalid_size_rejected_in_both(self):
        from repro.machine import MapError
        fast, slow = _pair()
        for mem in (fast, slow):
            a = mem.mmap(PAGE_SIZE, prot=PROT_RW)
            with pytest.raises(MapError):
                mem.fill(a, -4, 0)


class TestTlbInvalidation:
    """The one-entry translation cache never serves stale state."""

    def test_munmap_invalidates(self):
        mem = VirtualMemory()
        a = mem.mmap(PAGE_SIZE, prot=PROT_RW)
        mem.write(a, b"hello")
        mem.munmap(a, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            mem.read(a, 4)

    def test_mprotect_invalidates(self):
        mem = VirtualMemory()
        a = mem.mmap(PAGE_SIZE, prot=PROT_RW)
        mem.write(a, b"hello")
        mem.mprotect(a, PAGE_SIZE, PROT_NONE)
        with pytest.raises(SegmentationFault):
            mem.read(a, 4)

    def test_sbrk_shrink_invalidates(self):
        mem = VirtualMemory()
        base = mem.sbrk(0)
        mem.sbrk(PAGE_SIZE)
        mem.write(base, b"data")
        mem.sbrk(-PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            mem.read(base, 4)

    def test_materialize_refreshes_cached_frame(self):
        """Reading a zero page caches frame=None; a subsequent write
        materializes the frame, and the next read must see the data."""
        mem = VirtualMemory()
        a = mem.mmap(PAGE_SIZE, prot=PROT_RW)
        assert mem.read(a, 8) == bytes(8)  # cached as zero page
        mem.write(a, b"\x01\x02\x03")
        assert mem.read(a, 3) == b"\x01\x02\x03"

    def test_write_then_read_other_page_then_back(self):
        mem = VirtualMemory()
        a = mem.mmap(2 * PAGE_SIZE, prot=PROT_RW)
        mem.write(a, b"first")
        mem.write(a + PAGE_SIZE, b"second")
        assert mem.read(a, 5) == b"first"
        assert mem.read(a + PAGE_SIZE, 6) == b"second"


class TestObservationEquivalence:
    """Whole-workload equivalence between the two modes."""

    def _workout(self, mem):
        a = mem.mmap(8 * PAGE_SIZE, prot=PROT_RW)
        # Word traffic inside one page, across pages, and fills.
        for i in range(0, 3 * PAGE_SIZE, 40):
            mem.write_word(a + i, i)
        total = 0
        for i in range(0, 3 * PAGE_SIZE, 40):
            total += mem.read_word(a + i)
        mem.fill(a + 4 * PAGE_SIZE, PAGE_SIZE + 100, 0xAB)
        cross = mem.read(a + PAGE_SIZE - 8, 16)
        mem.write(a + 2 * PAGE_SIZE - 3, b"straddle")
        mem.mprotect(a + 6 * PAGE_SIZE, PAGE_SIZE, PROT_READ)
        ro = mem.read(a + 6 * PAGE_SIZE, 32)
        mem.munmap(a + 7 * PAGE_SIZE, PAGE_SIZE)
        return (total, cross, ro, mem.resident_pages,
                mem.peak_resident_pages, mem.mapped_bytes,
                mem.fault_count, list(mem.iter_mappings()))

    def test_same_observations(self):
        fast, slow = _pair()
        assert self._workout(fast) == self._workout(slow)

    def test_guest_cycle_totals_identical(self):
        """A guest program's cycle decomposition must not depend on
        whether the memory fast paths are enabled."""

        class Prog(ProgramLike):
            def __init__(self):
                self.graph = CallGraph()
                self.graph.add_call_site("main", "malloc", "buf")
                self.graph.add_call_site("main", "free", "buf")
                self.graph.freeze()

            def main(self, p, iters):
                for i in range(iters):
                    buf = p.malloc(64 + (i % 5) * 16, site="buf")
                    p.fill(buf, 64, 0)
                    p.write_int(buf, i)
                    value = p.read_int(buf)
                    p.branch_on(value)
                    p.free(buf)
                return 0

        snapshots = []
        for fast in (True, False):
            program = Prog()
            heap = LibcAllocator(VirtualMemory(fast_paths=fast))
            process = Process(program.graph, heap=heap)
            process.run(program, 50)
            snapshots.append(process.meter.snapshot())
        assert snapshots[0] == snapshots[1]
