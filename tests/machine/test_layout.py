"""Address-space layout helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import layout


def test_page_constants_consistent():
    assert layout.PAGE_SIZE == 1 << layout.PAGE_SHIFT
    assert layout.ADDRESS_SPACE_SIZE == 1 << layout.ADDRESS_BITS


def test_page_align_down():
    assert layout.page_align_down(0) == 0
    assert layout.page_align_down(1) == 0
    assert layout.page_align_down(4095) == 0
    assert layout.page_align_down(4096) == 4096
    assert layout.page_align_down(8191) == 4096


def test_page_align_up():
    assert layout.page_align_up(0) == 0
    assert layout.page_align_up(1) == 4096
    assert layout.page_align_up(4096) == 4096
    assert layout.page_align_up(4097) == 8192


def test_page_number():
    assert layout.page_number(0) == 0
    assert layout.page_number(4095) == 0
    assert layout.page_number(4096) == 1


def test_is_page_aligned():
    assert layout.is_page_aligned(0)
    assert layout.is_page_aligned(4096)
    assert not layout.is_page_aligned(4095)


def test_align_up_basic():
    assert layout.align_up(0, 16) == 0
    assert layout.align_up(1, 16) == 16
    assert layout.align_up(16, 16) == 16
    assert layout.align_up(17, 16) == 32


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        layout.align_up(10, 24)
    with pytest.raises(ValueError):
        layout.align_up(10, 0)
    with pytest.raises(ValueError):
        layout.align_up(10, -8)


def test_is_power_of_two():
    assert layout.is_power_of_two(1)
    assert layout.is_power_of_two(4096)
    assert not layout.is_power_of_two(0)
    assert not layout.is_power_of_two(24)
    assert not layout.is_power_of_two(-4)


@given(st.integers(min_value=0, max_value=2**48 - 1),
       st.sampled_from([1, 2, 4, 8, 16, 64, 4096]))
def test_align_up_properties(value, alignment):
    aligned = layout.align_up(value, alignment)
    assert aligned >= value
    assert aligned % alignment == 0
    assert aligned - value < alignment


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_page_align_sandwich(address):
    down = layout.page_align_down(address)
    up = layout.page_align_up(address)
    assert down <= address <= up
    assert up - down in (0, layout.PAGE_SIZE)
    assert layout.is_page_aligned(down)
    assert layout.is_page_aligned(up)
