"""``iter_mappings`` run coalescing and ``sbrk`` shrink edge cases."""

import pytest

from repro.machine import (
    HEAP_BASE,
    MapError,
    PAGE_SIZE,
    PROT_READ,
    PROT_RW,
    SegmentationFault,
)


class TestIterMappingsCoalescing:
    def test_contiguous_same_prot_is_one_run(self, memory):
        a = memory.mmap(3 * PAGE_SIZE, prot=PROT_RW)
        runs = [r for r in memory.iter_mappings() if r[0] == a]
        assert runs == [(a, 3 * PAGE_SIZE, PROT_RW)]

    def test_protection_change_splits_run(self, memory):
        a = memory.mmap(4 * PAGE_SIZE, prot=PROT_RW)
        memory.mprotect(a + PAGE_SIZE, 2 * PAGE_SIZE, PROT_READ)
        runs = [r for r in memory.iter_mappings()
                if a <= r[0] < a + 4 * PAGE_SIZE]
        assert runs == [
            (a, PAGE_SIZE, PROT_RW),
            (a + PAGE_SIZE, 2 * PAGE_SIZE, PROT_READ),
            (a + 3 * PAGE_SIZE, PAGE_SIZE, PROT_RW),
        ]

    def test_restoring_protection_recoalesces(self, memory):
        a = memory.mmap(3 * PAGE_SIZE, prot=PROT_RW)
        memory.mprotect(a + PAGE_SIZE, PAGE_SIZE, PROT_READ)
        memory.mprotect(a + PAGE_SIZE, PAGE_SIZE, PROT_RW)
        runs = [r for r in memory.iter_mappings() if r[0] == a]
        assert runs == [(a, 3 * PAGE_SIZE, PROT_RW)]

    def test_hole_splits_run(self, memory):
        a = memory.mmap(3 * PAGE_SIZE, prot=PROT_RW)
        memory.munmap(a + PAGE_SIZE, PAGE_SIZE)
        runs = [r for r in memory.iter_mappings()
                if a <= r[0] < a + 3 * PAGE_SIZE]
        assert runs == [
            (a, PAGE_SIZE, PROT_RW),
            (a + 2 * PAGE_SIZE, PAGE_SIZE, PROT_RW),
        ]

    def test_adjacent_mmaps_coalesce(self, memory):
        a = memory.mmap(PAGE_SIZE, prot=PROT_RW)
        b = memory.mmap(PAGE_SIZE, prot=PROT_RW)
        if b == a + PAGE_SIZE:  # deterministic bump allocation
            runs = [r for r in memory.iter_mappings() if r[0] == a]
            assert runs == [(a, 2 * PAGE_SIZE, PROT_RW)]


class TestSbrkShrinkEdges:
    def test_partial_page_break_keeps_last_page(self, memory):
        """Shrinking to a mid-page break must keep that page mapped —
        the break's own page is still (partially) in use."""
        memory.sbrk(2 * PAGE_SIZE)
        memory.write(HEAP_BASE, b"low")
        memory.sbrk(-(PAGE_SIZE // 2))  # break now mid second page
        assert memory.brk == HEAP_BASE + 2 * PAGE_SIZE - PAGE_SIZE // 2
        # The second page is still mapped: writes below the break work.
        memory.write(HEAP_BASE + PAGE_SIZE, b"still here")
        assert memory.read(HEAP_BASE + PAGE_SIZE, 10) == b"still here"

    def test_shrink_whole_pages_unmaps_them(self, memory):
        memory.sbrk(3 * PAGE_SIZE)
        memory.write(HEAP_BASE + 2 * PAGE_SIZE, b"top")
        memory.sbrk(-PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.read(HEAP_BASE + 2 * PAGE_SIZE, 3)
        # Pages below the new break are untouched.
        memory.write(HEAP_BASE, b"base")
        assert memory.read(HEAP_BASE, 4) == b"base"

    def test_shrink_to_base(self, memory):
        memory.sbrk(4 * PAGE_SIZE)
        memory.write(HEAP_BASE, b"x")
        memory.sbrk(-4 * PAGE_SIZE)
        assert memory.brk == HEAP_BASE
        with pytest.raises(SegmentationFault):
            memory.read(HEAP_BASE, 1)
        assert not any(start <= HEAP_BASE < start + length
                       for start, length, _ in memory.iter_mappings())

    def test_shrink_below_base_rejected(self, memory):
        memory.sbrk(PAGE_SIZE)
        with pytest.raises(MapError):
            memory.sbrk(-2 * PAGE_SIZE)
        # The failed call must not have moved the break.
        assert memory.brk == HEAP_BASE + PAGE_SIZE

    def test_shrink_then_regrow_reads_zero(self, memory):
        """Pages released by a shrink are discarded; regrowing maps
        fresh zero pages (no stale data), like Linux brk."""
        memory.sbrk(PAGE_SIZE)
        memory.write(HEAP_BASE, b"secret")
        memory.sbrk(-PAGE_SIZE)
        memory.sbrk(PAGE_SIZE)
        assert memory.read(HEAP_BASE, 6) == bytes(6)
