"""Virtual memory: mapping, protection, faulting, residency."""

import pytest

from repro.machine import (
    HEAP_BASE,
    MapError,
    OutOfMemoryError,
    PAGE_SIZE,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    SegmentationFault,
    VirtualMemory,
)


class TestMapping:
    def test_mmap_returns_page_aligned(self, memory):
        address = memory.mmap(100)
        assert address % PAGE_SIZE == 0
        assert memory.is_mapped(address, PAGE_SIZE)

    def test_mmap_rounds_length_to_pages(self, memory):
        address = memory.mmap(PAGE_SIZE + 1)
        assert memory.is_mapped(address, 2 * PAGE_SIZE)
        assert not memory.is_mapped(address + 2 * PAGE_SIZE)

    def test_mmap_rejects_bad_length(self, memory):
        with pytest.raises(MapError):
            memory.mmap(0)
        with pytest.raises(MapError):
            memory.mmap(-4096)

    def test_mmap_fixed_address(self, memory):
        target = 0x7000_0000_0000
        address = memory.mmap(PAGE_SIZE, address=target)
        assert address == target

    def test_mmap_fixed_rejects_overlap(self, memory):
        target = 0x7000_0000_0000
        memory.mmap(PAGE_SIZE, address=target)
        with pytest.raises(MapError):
            memory.mmap(PAGE_SIZE, address=target)

    def test_mmap_fixed_rejects_misaligned(self, memory):
        with pytest.raises(MapError):
            memory.mmap(PAGE_SIZE, address=0x7000_0000_0001)

    def test_munmap_removes_mapping(self, memory):
        address = memory.mmap(2 * PAGE_SIZE)
        memory.munmap(address, 2 * PAGE_SIZE)
        assert not memory.is_mapped(address)
        with pytest.raises(SegmentationFault):
            memory.read(address, 1)

    def test_munmap_partial(self, memory):
        address = memory.mmap(2 * PAGE_SIZE)
        memory.munmap(address, PAGE_SIZE)
        assert not memory.is_mapped(address)
        assert memory.is_mapped(address + PAGE_SIZE)

    def test_distinct_mappings_do_not_overlap(self, memory):
        first = memory.mmap(PAGE_SIZE)
        second = memory.mmap(PAGE_SIZE)
        assert abs(first - second) >= PAGE_SIZE


class TestProtection:
    def test_mprotect_none_faults_read_and_write(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.mprotect(address, PAGE_SIZE, PROT_NONE)
        with pytest.raises(SegmentationFault):
            memory.read(address, 1)
        with pytest.raises(SegmentationFault):
            memory.write(address, b"x")

    def test_mprotect_read_only(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write(address, b"ro")
        memory.mprotect(address, PAGE_SIZE, PROT_READ)
        assert memory.read(address, 2) == b"ro"
        with pytest.raises(SegmentationFault):
            memory.write(address, b"y")

    def test_mprotect_restores_access(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.mprotect(address, PAGE_SIZE, PROT_NONE)
        memory.mprotect(address, PAGE_SIZE, PROT_RW)
        memory.write(address, b"ok")
        assert memory.read(address, 2) == b"ok"

    def test_mprotect_requires_mapped_range(self, memory):
        with pytest.raises(MapError):
            memory.mprotect(0x7000_0000_0000, PAGE_SIZE, PROT_NONE)

    def test_mprotect_requires_alignment(self, memory):
        address = memory.mmap(PAGE_SIZE)
        with pytest.raises(MapError):
            memory.mprotect(address + 8, PAGE_SIZE, PROT_NONE)

    def test_mprotect_counted(self, memory):
        address = memory.mmap(PAGE_SIZE)
        before = memory.mprotect_count
        memory.mprotect(address, PAGE_SIZE, PROT_NONE)
        assert memory.mprotect_count == before + 1

    def test_fault_reports_first_bad_address(self, memory):
        address = memory.mmap(3 * PAGE_SIZE)
        memory.mprotect(address + PAGE_SIZE, PAGE_SIZE, PROT_NONE)
        with pytest.raises(SegmentationFault) as excinfo:
            memory.read(address, 3 * PAGE_SIZE)
        assert excinfo.value.address == address + PAGE_SIZE
        assert excinfo.value.access == "read"

    def test_fault_count_increments(self, memory):
        before = memory.fault_count
        with pytest.raises(SegmentationFault):
            memory.read(0x1234_5678_9000, 1)
        assert memory.fault_count == before + 1

    def test_is_accessible(self, memory):
        address = memory.mmap(PAGE_SIZE)
        assert memory.is_accessible(address, 8, write=True)
        memory.mprotect(address, PAGE_SIZE, PROT_READ)
        assert memory.is_accessible(address, 8)
        assert not memory.is_accessible(address, 8, write=True)


class TestDataAccess:
    def test_write_read_roundtrip(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write(address + 10, b"hello")
        assert memory.read(address + 10, 5) == b"hello"

    def test_read_of_untouched_page_is_zero(self, memory):
        address = memory.mmap(PAGE_SIZE)
        assert memory.read(address, 16) == bytes(16)

    def test_cross_page_write_read(self, memory):
        address = memory.mmap(3 * PAGE_SIZE)
        blob = bytes(range(256)) * 20
        start = address + PAGE_SIZE - 100
        memory.write(start, blob)
        assert memory.read(start, len(blob)) == blob

    def test_word_roundtrip(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write_word(address, 0xDEAD_BEEF_CAFE_F00D)
        assert memory.read_word(address) == 0xDEAD_BEEF_CAFE_F00D

    def test_word_truncates_to_64_bits(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write_word(address, 1 << 70 | 42)
        assert memory.read_word(address) == 42

    def test_fill(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.fill(address, 100, 0xAB)
        assert memory.read(address, 100) == b"\xab" * 100
        memory.fill(address, 0)  # zero-size fill is a no-op
        assert memory.read(address, 1) == b"\xab"

    def test_peek_ignores_protection(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write(address, b"secret")
        memory.mprotect(address, PAGE_SIZE, PROT_NONE)
        assert memory.peek(address, 6) == b"secret"

    def test_peek_unmapped_reads_zero(self, memory):
        assert memory.peek(0x7654_3210_0000, 8) == bytes(8)

    def test_poke_ignores_protection(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.mprotect(address, PAGE_SIZE, PROT_NONE)
        memory.poke(address, b"debugger")
        assert memory.peek(address, 8) == b"debugger"

    def test_poke_unmapped_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.poke(0x7654_3210_0000, b"x")


class TestBrk:
    def test_sbrk_grows_heap(self, memory):
        old = memory.sbrk(PAGE_SIZE)
        assert old == HEAP_BASE
        assert memory.brk == HEAP_BASE + PAGE_SIZE
        memory.write(HEAP_BASE, b"heap")
        assert memory.read(HEAP_BASE, 4) == b"heap"

    def test_sbrk_zero_queries_brk(self, memory):
        assert memory.sbrk(0) == HEAP_BASE
        assert memory.brk == HEAP_BASE

    def test_sbrk_shrink_unmaps(self, memory):
        memory.sbrk(4 * PAGE_SIZE)
        memory.write(HEAP_BASE + 3 * PAGE_SIZE, b"gone")
        memory.sbrk(-2 * PAGE_SIZE)
        assert memory.brk == HEAP_BASE + 2 * PAGE_SIZE
        with pytest.raises(SegmentationFault):
            memory.read(HEAP_BASE + 3 * PAGE_SIZE, 1)

    def test_sbrk_cannot_shrink_below_base(self, memory):
        with pytest.raises(MapError):
            memory.sbrk(-PAGE_SIZE)

    def test_heap_limit_enforced(self, memory):
        with pytest.raises(OutOfMemoryError):
            memory.sbrk(1 << 46)


class TestResidency:
    def test_mapping_alone_is_not_resident(self, memory):
        memory.mmap(64 * PAGE_SIZE)
        assert memory.resident_pages == 0
        assert memory.mapped_pages == 64

    def test_write_materializes_only_touched_pages(self, memory):
        address = memory.mmap(64 * PAGE_SIZE)
        memory.write(address + 5 * PAGE_SIZE, b"x")
        memory.write(address + 9 * PAGE_SIZE, b"y")
        assert memory.resident_pages == 2
        assert memory.resident_bytes == 2 * PAGE_SIZE

    def test_reads_do_not_materialize(self, memory):
        address = memory.mmap(16 * PAGE_SIZE)
        memory.read(address, 16 * PAGE_SIZE)
        assert memory.resident_pages == 0

    def test_guard_pages_cost_no_memory(self, memory):
        """The paper's claim: guard pages are virtual and free."""
        address = memory.mmap(8 * PAGE_SIZE)
        memory.mprotect(address + PAGE_SIZE, PAGE_SIZE, PROT_NONE)
        assert memory.resident_pages == 0

    def test_peak_resident_tracks_high_water(self, memory):
        address = memory.mmap(8 * PAGE_SIZE)
        for i in range(4):
            memory.write(address + i * PAGE_SIZE, b"x")
        memory.munmap(address, 8 * PAGE_SIZE)
        assert memory.resident_pages == 0
        assert memory.peak_resident_pages == 4

    def test_munmap_releases_residency(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write(address, b"x")
        memory.munmap(address, PAGE_SIZE)
        assert memory.resident_pages == 0


class TestIntrospection:
    def test_iter_mappings_merges_runs(self, memory):
        a = memory.mmap(2 * PAGE_SIZE)
        memory.mmap(PAGE_SIZE)  # contiguous, same protection
        runs = list(memory.iter_mappings())
        assert runs == [(a, 3 * PAGE_SIZE, PROT_RW)]

    def test_iter_mappings_splits_on_protection(self, memory):
        a = memory.mmap(3 * PAGE_SIZE)
        memory.mprotect(a + PAGE_SIZE, PAGE_SIZE, PROT_NONE)
        runs = list(memory.iter_mappings())
        assert len(runs) == 3
        assert runs[1] == (a + PAGE_SIZE, PAGE_SIZE, PROT_NONE)

    def test_protection_of(self, memory):
        a = memory.mmap(PAGE_SIZE)
        assert memory.protection_of(a) == PROT_RW
        assert memory.protection_of(0x1111_0000_0000) is None
