"""Machine-substrate edge cases."""

import pytest

from repro.machine import (
    ADDRESS_SPACE_SIZE,
    MapError,
    PAGE_SIZE,
    PROT_NONE,
    SegmentationFault,
    VirtualMemory,
)


class TestBoundaries:
    def test_access_beyond_address_space_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read(ADDRESS_SPACE_SIZE - 4, 8)

    def test_negative_address_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read(-8, 8)

    def test_zero_size_read_rejected(self, memory):
        address = memory.mmap(PAGE_SIZE)
        with pytest.raises(MapError):
            memory.read(address, 0)

    def test_zero_length_write_is_noop(self, memory):
        address = memory.mmap(PAGE_SIZE)
        memory.write(address, b"")  # explicitly allowed
        assert memory.resident_pages == 0

    def test_fixed_mapping_beyond_space_rejected(self, memory):
        with pytest.raises(MapError):
            memory.mmap(2 * PAGE_SIZE,
                        address=ADDRESS_SPACE_SIZE - PAGE_SIZE)

    def test_exact_last_page_mappable(self, memory):
        address = memory.mmap(PAGE_SIZE,
                              address=ADDRESS_SPACE_SIZE - PAGE_SIZE)
        memory.write(address, b"edge")
        assert memory.read(address, 4) == b"edge"


class TestProtectionGranularity:
    def test_word_access_straddling_guard_faults(self, memory):
        """An 8-byte access whose tail crosses into a sealed page must
        fault — the exact mechanism that catches small overflows ending
        on the guard boundary."""
        base = memory.mmap(2 * PAGE_SIZE)
        memory.mprotect(base + PAGE_SIZE, PAGE_SIZE, PROT_NONE)
        memory.write(base + PAGE_SIZE - 8, b"x" * 8)  # flush, fine
        with pytest.raises(SegmentationFault) as excinfo:
            memory.write(base + PAGE_SIZE - 4, b"y" * 8)
        assert excinfo.value.address == base + PAGE_SIZE

    def test_remap_after_munmap(self, memory):
        address = memory.mmap(PAGE_SIZE, address=0x7000_0000_0000)
        memory.write(address, b"old")
        memory.munmap(address, PAGE_SIZE)
        again = memory.mmap(PAGE_SIZE, address=0x7000_0000_0000)
        # Fresh mapping: old contents are gone.
        assert memory.read(again, 3) == bytes(3)


class TestSbrkPageSharing:
    def test_partial_page_brk_keeps_page_mapped(self, memory):
        """Shrinking brk into the middle of a page must not unmap the
        page still covering the new break."""
        memory.sbrk(PAGE_SIZE + 100)
        top_of_heap = memory.brk - 1
        memory.write(top_of_heap - 10, b"keep")
        memory.sbrk(-50)  # still inside the second page
        assert memory.read(top_of_heap - 10, 4) == b"keep"
