"""``check_read`` span caching and scatter/gather word batches.

``check_read`` memoizes the page span of its last successful check (the
serving fast path re-validates the same response buffer thousands of
times).  The cache must never outlive the protections it witnessed:
every mapping change that can revoke read access has to invalidate it.
"""

import pytest

from repro.machine import (
    PAGE_SIZE,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    SegmentationFault,
    VirtualMemory,
)


class TestCheckReadCache:
    def test_repeated_checks_succeed(self):
        memory = VirtualMemory()
        base = memory.mmap(2 * PAGE_SIZE)
        for _ in range(3):
            memory.check_read(base + 10, 100)
        memory.check_read(base, 2 * PAGE_SIZE)  # different span

    def test_unmapped_never_cached(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.check_read(base + PAGE_SIZE, 8)
        with pytest.raises(SegmentationFault):
            memory.check_read(base + PAGE_SIZE, 8)

    def test_munmap_invalidates_cached_span(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        memory.check_read(base, 64)
        memory.munmap(base, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.check_read(base, 64)

    def test_mprotect_invalidates_cached_span(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE, prot=PROT_RW)
        memory.check_read(base, 64)
        memory.mprotect(base, PAGE_SIZE, PROT_NONE)
        with pytest.raises(SegmentationFault):
            memory.check_read(base, 64)

    def test_sbrk_shrink_invalidates_cached_span(self):
        memory = VirtualMemory()
        memory.sbrk(2 * PAGE_SIZE)
        top = memory.sbrk(0)
        memory.check_read(top - 64, 64)
        memory.sbrk(-2 * PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.check_read(top - 64, 64)

    def test_remap_after_unmap_revalidates(self):
        """A fresh mapping over the same span is readable again — the
        invalidation must not stick past the next successful check."""
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        memory.check_read(base, 64)
        memory.munmap(base, PAGE_SIZE)
        again = memory.mmap(PAGE_SIZE)
        memory.check_read(again, 64)

    def test_read_only_pages_pass_check_read(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE, prot=PROT_READ)
        memory.check_read(base, PAGE_SIZE)


class TestScatterGather:
    def test_matches_scalar_word_ops(self):
        memory = VirtualMemory()
        base = memory.mmap(2 * PAGE_SIZE)
        addresses = [base + 8 * i for i in range(0, 300, 7)]
        values = [(i * 0x9E3779B9) & ((1 << 64) - 1)
                  for i in range(len(addresses))]
        memory.write_word_scatter(addresses, values)
        assert memory.read_word_gather(addresses) == values
        assert [memory.read_word(a) for a in addresses] == values

    def test_cross_page_addresses(self):
        memory = VirtualMemory()
        base = memory.mmap(3 * PAGE_SIZE)
        addresses = [base + PAGE_SIZE - 4, base + 2 * PAGE_SIZE - 4]
        memory.write_word_scatter(addresses, [0x1111, 0x2222])
        assert memory.read_word_gather(addresses) == [0x1111, 0x2222]

    def test_scatter_fault_on_unmapped_address(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.write_word_scatter([base, base + (1 << 30)], [1, 2])

    def test_gather_fault_on_unmapped_address(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            memory.read_word_gather([base, base + (1 << 30)])

    def test_empty_batches(self):
        memory = VirtualMemory()
        memory.write_word_scatter([], [])
        assert memory.read_word_gather([]) == []
