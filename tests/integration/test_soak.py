"""Soak test: a long defended run with everything switched on.

One medium-sized SPEC-like workload, defended with patches of all three
types on several contexts, over both allocator implementations — then a
full structural audit: heap consistency, no leaks, quarantine within
quota, results identical to native.
"""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.allocator.segregated import SegregatedAllocator
from repro.core.pipeline import HeapTherapy
from repro.core.profiling import AllocationProfile
from repro.defense.patch_table import PatchTable
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType
from repro.workloads.spec.profiles import profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram

ALL = (VulnType.OVERFLOW | VulnType.USE_AFTER_FREE
       | VulnType.UNINIT_READ)


@pytest.mark.parametrize("allocator_factory",
                         [LibcAllocator, SegregatedAllocator],
                         ids=["libc", "segregated"])
def test_soak_defended_spec_run(allocator_factory):
    program = SyntheticSpecProgram(profile_by_name("403.gcc"), scale=0.15)
    system = HeapTherapy(program, allocator_factory=allocator_factory,
                         quarantine_quota=256 * 1024)
    native = system.run_native()

    profile = AllocationProfile()
    profile.ingest(native.process)
    patches = []
    for stats, vuln in zip(profile.select("median", 6),
                           [VulnType.OVERFLOW, VulnType.USE_AFTER_FREE,
                            VulnType.UNINIT_READ, ALL,
                            VulnType.OVERFLOW | VulnType.UNINIT_READ,
                            VulnType.USE_AFTER_FREE | VulnType.UNINIT_READ]):
        patches.append(HeapPatch(stats.fun, stats.ccid, vuln))

    run = system.run_defended(PatchTable(patches))
    assert run.completed
    assert run.result == native.result

    defended = run.allocator
    # Every defense fired at least once across the patched contexts.
    assert defended.enhanced_counts[VulnType.OVERFLOW] > 0
    assert defended.enhanced_counts[VulnType.USE_AFTER_FREE] > 0
    assert defended.enhanced_counts[VulnType.UNINIT_READ] > 0
    # Quarantine respected its quota throughout (invariant enforced on
    # push; final state must also comply).
    assert defended.quarantine.held_bytes <= 256 * 1024
    # The program freed everything it allocated (application view);
    # whatever the quarantine still holds is deferred *underlying* frees.
    assert defended.stats.live_buffers == 0
    assert defended.quarantine.pushed >= len(defended.quarantine)
    # The underlying heap is structurally sound after the churn.
    if isinstance(defended.underlying, LibcAllocator):
        defended.underlying.check_consistency()


def test_soak_alternating_attack_and_service_traffic():
    """A defended Heartbleed service surviving mixed hostile traffic:
    repeated attacks (blocked), uninit probes (zeroed), benign requests
    (served) — the long-running-deployment story."""
    from repro.workloads.vulnerable import HeartbleedService

    program = HeartbleedService()
    system = HeapTherapy(program)
    patches = system.generate_patches(
        HeartbleedService.attack_input()).patches
    table = PatchTable(patches)

    for round_index in range(10):
        blocked = system.run_defended(table,
                                      HeartbleedService.attack_input())
        assert blocked.blocked

        probe = system.run_defended(table,
                                    HeartbleedService.uninit_only_input())
        assert probe.completed
        assert not program.attack_succeeded(probe.result)

        benign = system.run_defended(table,
                                     HeartbleedService.benign_input())
        assert program.benign_works(benign.result)
