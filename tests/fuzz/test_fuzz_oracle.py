"""The three-way differential oracle over generated programs."""

import pytest

from repro.fuzz.generator import BUG_KINDS, spec_for_seed
from repro.fuzz.oracle import (
    CaseReport,
    Observation,
    _compare,
    evaluate_spec,
    patches_of,
)
from repro.vulntypes import VulnType


class TestEvaluateSpec:
    @pytest.mark.parametrize("seed", range(len(BUG_KINDS)))
    def test_every_kind_passes_the_full_oracle(self, seed):
        spec = spec_for_seed(seed)
        report = evaluate_spec(spec)
        assert report.ok, report.failures
        assert report.seed == seed
        assert report.kind == spec.kind
        assert report.name == spec.name

    def test_attack_diagnosis_produces_matching_patches(self):
        spec = spec_for_seed(0)
        report = evaluate_spec(spec)
        assert report.patches
        combined = VulnType.NONE
        for patch in patches_of(report):
            combined |= patch.vuln
        assert combined & spec.expected_vuln

    def test_benign_twin_produces_zero_patches(self):
        for seed in range(len(BUG_KINDS)):
            assert evaluate_spec(spec_for_seed(seed)).benign_patches == 0

    def test_reports_are_picklable(self):
        import pickle

        report = evaluate_spec(spec_for_seed(1))
        assert pickle.loads(pickle.dumps(report)) == report


def _observation(**overrides):
    base = dict(fault=None, response=b"ok",
                facts=(("magic", 7),),
                events=(("malloc", 64, 0x1),),
                addresses=(4096,))
    base.update(overrides)
    return Observation(**base)


class TestCompare:
    def test_identical_observations_pass(self):
        failures = []
        _compare("t", _observation(), _observation(), failures)
        assert failures == []

    def test_metadata_shift_is_transparent(self):
        failures = []
        _compare("t", _observation(addresses=(4096,)),
                 _observation(addresses=(4096 + 8,)), failures)
        assert failures == []

    def test_non_metadata_shift_diverges(self):
        failures = []
        _compare("t", _observation(addresses=(4096,)),
                 _observation(addresses=(4099,)), failures)
        assert any("non-metadata" in failure for failure in failures)

    @pytest.mark.parametrize("field,value,needle", [
        ("fault", "SegmentationFault", "fault diverged"),
        ("response", b"different", "response diverged"),
        ("facts", (("magic", 8),), "facts diverged"),
        ("events", (("calloc", 64, 0x1),), "allocation sequence"),
    ])
    def test_each_divergence_is_reported(self, field, value, needle):
        failures = []
        _compare("t", _observation(), _observation(**{field: value}),
                 failures)
        assert any(needle in failure for failure in failures)


class TestCaseReport:
    def test_failures_empty_iff_ok(self):
        report = CaseReport(seed=0, name="n", kind="overflow-write",
                            alloc_fun="malloc", ok=True, failures=(),
                            patches=(), benign_patches=0)
        assert report.ok and not report.failures
