"""The seed-driven program generator: determinism and validity."""

import pytest

from repro.fuzz.generator import (
    BUFFER_SIZES,
    BUG_KINDS,
    DECOY_SIZES,
    KIND_FUNS,
    FuzzSpec,
    HelperSpec,
    build_program,
    spec_for_seed,
    spec_from_dict,
    spec_to_dict,
)

SEED_RANGE = range(0, 60)


class TestSpecForSeed:
    def test_same_seed_same_spec(self):
        for seed in SEED_RANGE:
            assert spec_for_seed(seed) == spec_for_seed(seed)

    def test_kind_cycles_through_taxonomy(self):
        for seed in SEED_RANGE:
            expected = BUG_KINDS[seed % len(BUG_KINDS)]
            assert spec_for_seed(seed).kind == expected

    def test_alloc_fun_is_eligible_for_kind(self):
        for seed in SEED_RANGE:
            spec = spec_for_seed(seed)
            assert spec.alloc_fun in KIND_FUNS[spec.kind]

    def test_buffer_size_from_table_and_realloc_capped(self):
        for seed in SEED_RANGE:
            spec = spec_for_seed(seed)
            assert spec.buffer_size in BUFFER_SIZES
            if spec.alloc_fun == "realloc":
                assert spec.buffer_size <= 160

    def test_helper_callers_exist(self):
        for seed in SEED_RANGE:
            spec = spec_for_seed(seed)
            known = {"main"}
            known.update(f"wrapper{level}"
                         for level in range(1, spec.wrapper_depth + 1))
            for helper in spec.helpers:
                assert helper.caller in known
                known.add(helper.name)

    def test_decoy_sizes_disjoint_from_buffer_sizes(self):
        assert not set(DECOY_SIZES) & set(BUFFER_SIZES)
        for seed in SEED_RANGE:
            for helper in spec_for_seed(seed).helpers:
                assert helper.decoy_size in (0,) + DECOY_SIZES

    def test_name_is_stable_and_self_describing(self):
        spec = spec_for_seed(3)
        assert spec.name == (f"fuzz-3-{spec.kind}-{spec.alloc_fun}"
                             f"-d{spec.wrapper_depth}")
        assert spec_for_seed(3).name == spec.name


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown bug kind"):
            FuzzSpec(0, "stack-smash", "malloc", 64, 0)

    def test_incompatible_alloc_fun_rejected(self):
        with pytest.raises(ValueError, match="cannot be planted"):
            FuzzSpec(0, "uninit-read", "realloc", 64, 0)

    def test_dict_round_trip(self):
        for seed in SEED_RANGE:
            spec = spec_for_seed(seed)
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_from_dict_coerces_types(self):
        payload = spec_to_dict(spec_for_seed(1))
        payload["seed"] = str(payload["seed"])
        payload["buffer_size"] = float(payload["buffer_size"])
        spec = spec_from_dict(payload)
        assert spec == spec_for_seed(1)


class TestGeneratedProgram:
    def test_graph_contains_wrappers_helpers_and_vuln_site(self):
        spec = FuzzSpec(0, "overflow-write", "malloc", 64, 2,
                        (HelperSpec("helper0", "main", 24, 5),
                         HelperSpec("helper1", "wrapper1", 0, 3)))
        graph = build_program(spec).build_graph().freeze()
        functions = set(graph.function_names)
        assert {"main", "wrapper1", "wrapper2", "helper0",
                "helper1"} <= functions

    def test_every_seed_builds_a_frozen_graph(self):
        for seed in SEED_RANGE:
            program = build_program(spec_for_seed(seed))
            graph = program.build_graph().freeze()
            assert graph.entry == "main"

    def test_inputs_are_the_attack_flag(self):
        program = build_program(spec_for_seed(0))
        assert program.attack_input() is True
        assert program.benign_input() is False
