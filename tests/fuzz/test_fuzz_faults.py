"""Substrate fault injection: typed errors, graceful degradation."""

import pytest

from repro.allocator.libc import MMAP_THRESHOLD, LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.fuzz.faults import (
    FAULT_OPS,
    FaultBudgetExceeded,
    FaultInjector,
    exhaust_after,
    fault_plans,
)
from repro.machine.errors import (
    MachineError,
    MapError,
    OutOfMemoryError,
)
from repro.machine.layout import PAGE_SIZE
from repro.machine.memory import PROT_NONE, PROT_RW, VirtualMemory
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType


class TestFaultInjector:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultInjector({"brk": 1})

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="negative budget"):
            FaultInjector({"sbrk": -1})

    def test_budget_counts_successes_then_faults(self):
        injector = exhaust_after("sbrk", 2)
        injector.charge("sbrk")
        injector.charge("sbrk")
        with pytest.raises(OutOfMemoryError, match="injected"):
            injector.charge("sbrk")
        assert injector.passed["sbrk"] == 2
        assert injector.injected["sbrk"] == 1

    @pytest.mark.parametrize("op,error", [
        ("sbrk", OutOfMemoryError),
        ("mmap", OutOfMemoryError),
        ("mprotect", MapError),
    ])
    def test_each_op_raises_its_production_error_type(self, op, error):
        injector = exhaust_after(op, 0)
        with pytest.raises(error):
            injector.charge(op)
        assert issubclass(error, MachineError)

    def test_unbudgeted_ops_never_fail(self):
        injector = exhaust_after("sbrk", 0)
        for _ in range(100):
            injector.charge("mmap")
            injector.charge("mprotect")
        assert injector.total_injected == 0

    def test_disarm_passes_everything_through(self):
        injector = exhaust_after("mmap", 0)
        injector.disarm()
        injector.charge("mmap")
        injector.arm()
        with pytest.raises(OutOfMemoryError):
            injector.charge("mmap")

    def test_retry_loop_trips_the_budget_cap(self):
        injector = exhaust_after("sbrk", 0, max_injections=3)
        for _ in range(3):
            with pytest.raises(OutOfMemoryError):
                injector.charge("sbrk")
        with pytest.raises(FaultBudgetExceeded, match="retrying"):
            injector.charge("sbrk")

    def test_fault_plans_cover_the_grid(self):
        plans = list(fault_plans())
        assert len(plans) == len(FAULT_OPS) * 5
        for plan in plans:
            assert isinstance(plan, FaultInjector)


class TestVirtualMemoryWiring:
    def test_mmap_fault_leaves_the_map_untouched(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE)
        memory.fault_injector = exhaust_after("mmap", 0)
        before = memory.mapped_bytes
        with pytest.raises(OutOfMemoryError, match="injected"):
            memory.mmap(PAGE_SIZE)
        assert memory.mapped_bytes == before
        memory.write_word(base, 7)  # existing mapping still usable
        assert memory.read_word(base) == 7

    def test_mprotect_fault_preserves_protections(self):
        memory = VirtualMemory()
        base = memory.mmap(PAGE_SIZE, prot=PROT_RW)
        memory.fault_injector = exhaust_after("mprotect", 0)
        with pytest.raises(MapError, match="injected"):
            memory.mprotect(base, PAGE_SIZE, PROT_NONE)
        memory.write_word(base, 1)  # still writable: fault was pre-op

    def test_sbrk_fault_then_recovery(self):
        memory = VirtualMemory()
        injector = exhaust_after("sbrk", 0)
        memory.fault_injector = injector
        with pytest.raises(OutOfMemoryError, match="injected"):
            memory.sbrk(PAGE_SIZE)
        injector.disarm()
        assert memory.sbrk(PAGE_SIZE) >= 0

    def test_shrinking_sbrk_is_never_charged(self):
        memory = VirtualMemory()
        memory.sbrk(4 * PAGE_SIZE)
        memory.fault_injector = exhaust_after("sbrk", 0)
        memory.sbrk(-PAGE_SIZE)  # releases memory; must not fault
        memory.sbrk(0)  # probe; must not fault


class TestAllocatorDegradation:
    def test_heap_exhaustion_is_typed_and_consistent(self):
        allocator = LibcAllocator()
        allocator.malloc(64)  # prime the heap
        injector = exhaust_after("sbrk", 0)
        allocator.memory.fault_injector = injector
        seen_oom = False
        kept = []
        for _ in range(10_000):
            try:
                kept.append(allocator.malloc(1024))
            except OutOfMemoryError:
                seen_oom = True
                break
        assert seen_oom, "sbrk exhaustion never surfaced"
        allocator.check_consistency()
        for ptr in kept:  # frees must still work after the OOM
            allocator.free(ptr)
        allocator.check_consistency()

    def test_mmap_exhaustion_for_large_requests(self):
        allocator = LibcAllocator()
        allocator.memory.fault_injector = exhaust_after("mmap", 0)
        with pytest.raises(OutOfMemoryError, match="injected"):
            allocator.malloc(MMAP_THRESHOLD)
        allocator.check_consistency()

    def test_guard_install_fault_degrades_gracefully(self):
        underlying = LibcAllocator()
        table = PatchTable([HeapPatch("malloc", 0, VulnType.OVERFLOW)])
        defended = DefendedAllocator(underlying, table)
        injector = exhaust_after("mprotect", 0)
        underlying.memory.fault_injector = injector
        with pytest.raises(MapError, match="injected"):
            defended.malloc(64)
        underlying.check_consistency()
        injector.disarm()
        ptr = defended.malloc(64)  # recovers once mprotect works again
        defended.free(ptr)
        underlying.check_consistency()

    def test_quarantine_pressure_stays_consistent(self):
        underlying = LibcAllocator()
        table = PatchTable(
            [HeapPatch("malloc", 0, VulnType.USE_AFTER_FREE)])
        defended = DefendedAllocator(underlying, table,
                                     quarantine_quota=256)
        for _ in range(50):  # every free is quarantined; tiny quota
            ptr = defended.malloc(96)
            defended.free(ptr)
        underlying.check_consistency()
