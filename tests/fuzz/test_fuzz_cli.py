"""The ``repro fuzz`` subcommand."""

import json

import pytest

from repro.cli import main


def test_smoke_campaign_exits_zero(capsys):
    assert main(["fuzz", "--seed", "0", "--count", "6"]) == 0
    out = capsys.readouterr().out
    assert "6 case(s)" in out
    assert "failed: 0" in out


def test_json_output_is_canonical(capsys):
    assert main(["fuzz", "--seed", "2", "--count", "4", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["seed"] == 2
    assert doc["cases"] == 4
    assert doc["failed"] == 0


def test_jobs_do_not_change_the_json(capsys):
    assert main(["fuzz", "--count", "8", "--json"]) == 0
    serial = capsys.readouterr().out
    assert main(["fuzz", "--count", "8", "--jobs", "2", "--json"]) == 0
    sharded = capsys.readouterr().out
    assert serial == sharded


@pytest.mark.parametrize("argv", [
    ["fuzz", "--count", "0"],
    ["fuzz", "--count", "-3"],
    ["fuzz", "--jobs", "-1"],
])
def test_usage_errors_exit_two(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


def test_passing_run_writes_nothing(tmp_path, capsys):
    assert main(["fuzz", "--count", "3", "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    assert list(tmp_path.iterdir()) == []
