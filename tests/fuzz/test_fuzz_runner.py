"""Campaign runner: sharding determinism, shrinking, reproducers."""

import json

import pytest

from repro.fuzz.generator import (
    FuzzSpec,
    HelperSpec,
    spec_for_seed,
)
from repro.fuzz.oracle import CaseReport
from repro.fuzz.runner import (
    load_reproducer,
    minimize_spec,
    run_campaign,
    save_reproducer,
)


class TestRunCampaign:
    def test_serial_campaign_passes(self):
        campaign = run_campaign(0, 12)
        assert campaign.ok
        assert campaign.failures == ()
        assert len(campaign.reports) == 12
        assert [r.seed for r in campaign.reports] == list(range(12))

    def test_sharded_report_is_byte_identical(self):
        serial = run_campaign(0, 12, jobs=1)
        sharded = run_campaign(0, 12, jobs=2)
        assert serial.render() == sharded.render()

    def test_json_document_shape(self):
        doc = run_campaign(3, 6).to_json()
        assert doc["schema"] == 1
        assert doc["seed"] == 3
        assert doc["cases"] == 6
        assert doc["failed"] == 0
        assert sum(doc["kinds"].values()) == 6

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(0, -1)

    def test_failing_seed_writes_a_reproducer(self, tmp_path,
                                              monkeypatch):
        def fake_run_case(seed):
            spec = spec_for_seed(seed)
            bad = seed == 1
            return CaseReport(
                seed=seed, name=spec.name, kind=spec.kind,
                alloc_fun=spec.alloc_fun, ok=not bad,
                failures=("synthetic failure",) if bad else (),
                patches=(), benign_patches=0)

        monkeypatch.setattr("repro.fuzz.runner.run_case", fake_run_case)
        campaign = run_campaign(0, 3, out_dir=tmp_path)
        assert not campaign.ok
        assert len(campaign.reproducers) == 1
        spec, failures = load_reproducer(campaign.reproducers[0])
        assert spec == spec_for_seed(1)
        assert failures == ("synthetic failure",)

    def test_passing_campaign_writes_no_files(self, tmp_path):
        campaign = run_campaign(0, 3, out_dir=tmp_path)
        assert campaign.ok
        assert campaign.reproducers == ()
        assert list(tmp_path.iterdir()) == []


def _rich_spec():
    return FuzzSpec(
        7, "overflow-write", "malloc", 256, 3,
        (HelperSpec("helper0", "main", 24, 5),
         HelperSpec("helper1", "helper0", 0, 3),
         HelperSpec("helper2", "wrapper1", 0, 9)))


class TestMinimizeSpec:
    def test_always_failing_predicate_shrinks_to_the_floor(self):
        shrunk = minimize_spec(_rich_spec(), still_fails=lambda s: True)
        assert shrunk.helpers == ()
        assert shrunk.wrapper_depth == 0
        assert shrunk.buffer_size == 48

    def test_passing_spec_is_returned_unchanged(self):
        spec = _rich_spec()
        assert minimize_spec(spec, still_fails=lambda s: False) is spec

    def test_predicate_constraints_are_respected(self):
        shrunk = minimize_spec(
            _rich_spec(),
            still_fails=lambda s: len(s.helpers) >= 1)
        assert len(shrunk.helpers) == 1
        assert shrunk.wrapper_depth == 0

    def test_dropping_a_caller_drops_its_sub_helpers(self):
        shrunk = minimize_spec(
            _rich_spec(),
            still_fails=lambda s: s.wrapper_depth == 3)
        # helper1 hangs off helper0; neither survives, and helper2's
        # wrapper caller is retained by the predicate.
        names = {helper.name for helper in shrunk.helpers}
        assert "helper1" not in names or "helper0" in names

    def test_shrunk_spec_still_validates(self):
        shrunk = minimize_spec(_rich_spec(), still_fails=lambda s: True)
        assert FuzzSpec(shrunk.seed, shrunk.kind, shrunk.alloc_fun,
                        shrunk.buffer_size, shrunk.wrapper_depth,
                        shrunk.helpers) == shrunk


class TestReproducerFiles:
    def test_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = save_reproducer(spec, ("a failure",), tmp_path)
        assert path.name == "fuzz-repro-7.json"
        loaded, failures = load_reproducer(path)
        assert loaded == spec
        assert failures == ("a failure",)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "fuzz-repro-0.json"
        path.write_text(json.dumps({"schema": 99, "seed": 0,
                                    "spec": {}, "failures": []}))
        with pytest.raises(ValueError, match="schema"):
            load_reproducer(path)

    def test_file_is_committable_json(self, tmp_path):
        path = save_reproducer(_rich_spec(), (), tmp_path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == 1
