"""DirectMonitor: the pass-through execution monitor."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.machine.errors import SegmentationFault
from repro.program.cost import CycleMeter
from repro.program.monitor import DirectMonitor
from repro.program.values import TaggedValue


@pytest.fixture
def setup():
    allocator = LibcAllocator()
    meter = CycleMeter()
    monitor = DirectMonitor(allocator.memory, allocator, meter)
    return allocator, meter, monitor


def test_heap_alloc_dispatches_by_name(setup):
    allocator, _, monitor = setup
    a = monitor.heap_alloc("malloc", 64)
    b = monitor.heap_alloc("calloc", 2, 32)
    c = monitor.heap_alloc("memalign", 64, 100)
    assert c % 64 == 0
    monitor.heap_alloc("realloc", a, 128)
    assert allocator.stats.malloc_calls == 1
    assert allocator.stats.calloc_calls == 1
    assert allocator.stats.memalign_calls == 1
    assert allocator.stats.realloc_calls == 1


def test_heap_free(setup):
    allocator, _, monitor = setup
    address = monitor.heap_alloc("malloc", 64)
    monitor.heap_free(address)
    assert allocator.live_buffer_count == 0


def test_read_returns_fully_valid_value(setup):
    _, _, monitor = setup
    address = monitor.heap_alloc("malloc", 16)
    monitor.write(address, TaggedValue.of_bytes(b"0123456789abcdef"))
    value = monitor.read(address, 16)
    assert value.data == b"0123456789abcdef"
    assert value.valid_mask is None  # native mode tracks no validity


def test_copy_and_fill(setup):
    _, _, monitor = setup
    address = monitor.heap_alloc("malloc", 32)
    monitor.fill(address, 16, 0xAA)
    monitor.copy(address + 16, address, 16)
    assert monitor.read(address + 16, 16).data == b"\xaa" * 16


def test_syscalls(setup):
    _, _, monitor = setup
    address = monitor.heap_alloc("malloc", 16)
    monitor.syscall_in(address, b"net-data")
    assert monitor.syscall_out(address, 8) == b"net-data"


def test_faults_propagate(setup):
    _, _, monitor = setup
    with pytest.raises(SegmentationFault):
        monitor.read(0x10, 8)


def test_costs_charged_to_base(setup):
    _, meter, monitor = setup
    address = monitor.heap_alloc("malloc", 1024)
    monitor.fill(address, 1024, 0)
    monitor.read(address, 1024)
    monitor.use(TaggedValue.of_int(1), "branch")
    snapshot = meter.snapshot()
    assert set(snapshot) == {"base"}
    assert snapshot["base"] > meter.model.heap_op


def test_use_never_raises_in_native_mode(setup):
    _, _, monitor = setup
    # Even a value flagged invalid is not checked natively.
    value = TaggedValue(b"\x00", valid_mask=b"\x00", origin=3)
    monitor.use(value, "branch")
