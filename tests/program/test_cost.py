"""Cycle meter and cost model."""

from repro.program.cost import DEFAULT_COST_MODEL, CostModel, CycleMeter


def test_charge_accumulates_by_category():
    meter = CycleMeter()
    meter.charge("base", 10)
    meter.charge("base", 5)
    meter.charge("defense", 2.5)
    assert meter.category("base") == 15
    assert meter.category("defense") == 2.5
    assert meter.total == 17.5


def test_unknown_category_reads_zero():
    assert CycleMeter().category("nope") == 0


def test_snapshot_is_a_copy():
    meter = CycleMeter()
    meter.charge("base", 1)
    snapshot = meter.snapshot()
    snapshot["base"] = 99
    assert meter.category("base") == 1


def test_reset():
    meter = CycleMeter()
    meter.charge("base", 1)
    meter.reset()
    assert meter.total == 0


def test_mem_cost_scales_with_size():
    model = DEFAULT_COST_MODEL
    assert model.mem_cost(1) == model.mem_op + model.mem_word
    assert model.mem_cost(8) == model.mem_op + model.mem_word
    assert model.mem_cost(9) == model.mem_op + 2 * model.mem_word
    assert model.mem_cost(800) > model.mem_cost(8)


def test_cost_model_is_frozen_dataclass():
    model = CostModel()
    try:
        model.call = 1
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_custom_model_flows_through_meter():
    model = CostModel(call=100)
    meter = CycleMeter(model=model)
    assert meter.model.call == 100
