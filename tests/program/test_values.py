"""TaggedValue semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.program.values import TaggedValue


def test_plain_value_is_fully_valid():
    value = TaggedValue(b"abc")
    assert value.fully_valid
    assert value.first_invalid_byte is None
    assert len(value) == 3


def test_mask_length_enforced():
    with pytest.raises(ValueError):
        TaggedValue(b"abc", valid_mask=b"\xff")


def test_first_invalid_byte():
    value = TaggedValue(b"abcd", valid_mask=b"\xff\xff\x7f\x00")
    assert not value.fully_valid
    assert value.first_invalid_byte == 2


def test_bit_precision_partial_byte():
    # A single invalid *bit* makes the value not fully valid.
    value = TaggedValue(b"\x00", valid_mask=b"\xfe")
    assert not value.fully_valid
    assert value.first_invalid_byte == 0


def test_to_int_little_endian():
    assert TaggedValue(b"\x01\x02").to_int() == 0x0201


def test_of_int_roundtrip():
    value = TaggedValue.of_int(0xDEADBEEF, size=4)
    assert value.to_int() == 0xDEADBEEF
    assert value.fully_valid


def test_of_int_truncates():
    assert TaggedValue.of_int(0x1FF, size=1).to_int() == 0xFF


def test_slice_preserves_shadow():
    value = TaggedValue(b"abcdef", valid_mask=b"\xff" * 3 + b"\x00" * 3,
                        origin=7)
    sub = value.slice(2, 3)
    assert sub.data == b"cde"
    assert sub.valid_mask == b"\xff\x00\x00"
    assert sub.origin == 7


def test_slice_of_plain_value_has_no_mask():
    sub = TaggedValue(b"abcdef").slice(1, 2)
    assert sub.valid_mask is None


@given(st.binary(min_size=1, max_size=64))
def test_of_bytes_identity(data):
    value = TaggedValue.of_bytes(data)
    assert value.data == data
    assert value.fully_valid


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_int_roundtrip_property(number):
    assert TaggedValue.of_int(number, size=8).to_int() == number
