"""Call-graph construction and analyses."""

import pytest

from repro.program.callgraph import CallGraph, CallGraphError


@pytest.fixture
def diamond():
    """main -> {a, b} -> c -> malloc, plus an unrelated leaf."""
    graph = CallGraph()
    graph.add_call_site("main", "a")
    graph.add_call_site("main", "b")
    graph.add_call_site("a", "c")
    graph.add_call_site("b", "c")
    graph.add_call_site("c", "malloc")
    graph.add_call_site("main", "logger")
    return graph


class TestConstruction:
    def test_functions_auto_declared(self, diamond):
        assert diamond.has_function("a")
        assert diamond.has_function("malloc")
        assert diamond.function("malloc").is_allocation_api
        assert not diamond.function("a").is_allocation_api

    def test_duplicate_site_rejected(self, diamond):
        with pytest.raises(CallGraphError):
            diamond.add_call_site("main", "a")

    def test_parallel_sites_with_labels(self):
        graph = CallGraph()
        first = graph.add_call_site("main", "f", "one")
        second = graph.add_call_site("main", "f", "two")
        assert first.site_id != second.site_id
        assert graph.site("main", "f", "one") is first

    def test_site_ids_dense(self, diamond):
        ids = [site.site_id for site in diamond.sites]
        assert ids == list(range(len(ids)))

    def test_unknown_function_raises(self, diamond):
        with pytest.raises(CallGraphError):
            diamond.function("nope")


class TestSiteLookup:
    def test_unique_site_resolves_without_label(self, diamond):
        assert diamond.site("a", "c").caller == "a"

    def test_ambiguous_lookup_requires_label(self):
        graph = CallGraph()
        graph.add_call_site("main", "f", "one")
        graph.add_call_site("main", "f", "two")
        with pytest.raises(CallGraphError, match="ambiguous"):
            graph.site("main", "f")

    def test_missing_site_raises(self, diamond):
        with pytest.raises(CallGraphError):
            diamond.site("logger", "malloc")

    def test_site_by_id(self, diamond):
        site = diamond.site("c", "malloc")
        assert diamond.site_by_id(site.site_id) is site


class TestAnalyses:
    def test_reachable_to_targets(self, diamond):
        reaching = diamond.reachable_to(["malloc"])
        assert reaching == frozenset({"main", "a", "b", "c", "malloc"})
        assert "logger" not in reaching

    def test_reachable_from_entry(self, diamond):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        graph.add_function("orphan")
        assert "orphan" not in graph.reachable_from_entry()

    def test_allocation_targets(self, diamond):
        assert diamond.allocation_targets == ["malloc"]

    def test_acyclic(self, diamond):
        assert diamond.is_acyclic()

    def test_cycle_detected(self):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        graph.add_call_site("a", "b")
        graph.add_call_site("b", "a")
        assert not graph.is_acyclic()
        assert len(graph.back_edges()) == 1

    def test_self_loop_detected(self):
        graph = CallGraph()
        graph.add_call_site("main", "rec")
        graph.add_call_site("rec", "rec")
        assert not graph.is_acyclic()

    def test_enumerate_contexts_diamond(self, diamond):
        contexts = diamond.enumerate_contexts("malloc")
        assert len(contexts) == 2
        for context in contexts:
            assert context[-1].callee == "malloc"
            assert context[0].caller == "main"

    def test_enumerate_contexts_rejects_cycles(self):
        graph = CallGraph()
        graph.add_call_site("main", "a")
        graph.add_call_site("a", "main")
        with pytest.raises(CallGraphError):
            graph.enumerate_contexts("a")

    def test_enumerate_contexts_multigraph(self):
        graph = CallGraph()
        graph.add_call_site("main", "f", "x")
        graph.add_call_site("main", "f", "y")
        graph.add_call_site("f", "malloc")
        assert len(graph.enumerate_contexts("malloc")) == 2


class TestExport:
    def test_dot_contains_every_node_and_edge(self, diamond):
        dot = diamond.to_dot()
        for fn in diamond.function_names:
            assert f'"{fn}"' in dot
        assert dot.count("->") == diamond.site_count

    def test_iter_yields_sites(self, diamond):
        assert list(diamond) == diamond.sites


# ---------------------------------------------------------------------------
# Freezing: the cached Program.graph must be immutable (mutating a graph
# after instrumentation would silently desynchronize site ids / CCIDs).
# ---------------------------------------------------------------------------


class TestFreeze:
    def _graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "worker", "w")
        graph.add_call_site("worker", "malloc", "buf")
        return graph

    def test_freeze_blocks_mutation(self):
        graph = self._graph().freeze()
        assert graph.frozen
        with pytest.raises(CallGraphError):
            graph.add_call_site("main", "late", "x")
        with pytest.raises(CallGraphError):
            graph.add_function("late")

    def test_freeze_is_idempotent_and_chains(self):
        graph = self._graph()
        assert graph.freeze() is graph
        assert graph.freeze() is graph

    def test_frozen_graph_still_answers_queries(self):
        graph = self._graph().freeze()
        assert graph.is_acyclic()
        assert graph.has_function("worker")
        assert graph.site("worker", "malloc", "buf")
        assert graph.enumerate_contexts("malloc")

    def test_declared_functions_can_be_looked_up_after_freeze(self):
        graph = self._graph()
        graph.freeze()
        # add_function on an *existing* name is a lookup, not a mutation.
        assert graph.add_function("worker").name == "worker"

    def test_program_graph_is_cached_and_frozen(self):
        from repro.workloads.vulnerable import HeartbleedService

        program = HeartbleedService()
        graph = program.graph
        assert graph is program.graph  # cached
        assert graph.frozen
        with pytest.raises(CallGraphError):
            graph.add_call_site("main", "sneaky", "s")

    def test_build_graph_returns_a_fresh_mutable_copy(self):
        from repro.workloads.vulnerable import HeartbleedService

        program = HeartbleedService()
        _ = program.graph
        fresh = program.build_graph()
        assert fresh is not program.graph
        assert not fresh.frozen
        fresh.add_function("experiment")  # must not raise
