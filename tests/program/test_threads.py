"""Multi-threaded guest execution: thread-local V over a shared heap."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import SCHEMES, EncodingRuntime, InstrumentationPlan, Strategy
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.machine.memory import VirtualMemory
from repro.patch.model import HeapPatch
from repro.program.callgraph import CallGraph
from repro.program.cost import CycleMeter
from repro.program.monitor import DirectMonitor
from repro.program.process import Process
from repro.program.program import Program
from repro.program.threads import (
    LockStepScheduler,
    ThreadLocalContextSource,
    ThreadedExecution,
)
from repro.vulntypes import VulnType


class Worker(Program):
    """Allocates through one of two contexts, writes, verifies, frees."""

    name = "worker"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "producer")
        graph.add_call_site("main", "consumer")
        graph.add_call_site("producer", "malloc")
        graph.add_call_site("consumer", "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p, role, rounds, tag):
        ccids = []
        for index in range(rounds):
            buf = p.call(role, lambda q: q.malloc(64))
            ccids.append(p.allocations[-1].ccid
                         if p.allocations else None)
            pattern = bytes([tag]) * 64
            p.write(buf, pattern)
            got = p.read(buf, 64)
            assert got.data == pattern, "cross-thread corruption!"
            p.free(buf)
        return ccids


def make_shared_system(patches=()):
    underlying = LibcAllocator()
    table = PatchTable(patches)
    meter = CycleMeter()
    tls = ThreadLocalContextSource()
    defended = DefendedAllocator(underlying, table, context_source=tls,
                                 meter=meter)
    return tls, defended, meter


def make_thread(program, defended, meter, codec):
    runtime = EncodingRuntime(codec)
    monitor = DirectMonitor(defended.memory, defended, meter)
    process = Process(program.graph, monitor=monitor,
                      context_source=runtime)
    return process, runtime


@pytest.fixture
def codec():
    program = Worker()
    plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                     Strategy.TCS)
    return SCHEMES["pcc"].build(plan)


class TestScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            LockStepScheduler(min_slice=0)
        with pytest.raises(ValueError):
            LockStepScheduler(min_slice=5, max_slice=2)

    def test_single_thread_degenerates_to_sequential(self, codec):
        program = Worker()
        tls, defended, meter = make_shared_system()
        process, _ = make_thread(program, defended, meter, codec)
        execution = ThreadedExecution([(process, program,
                                        ("producer", 5, 0x41))],
                                      thread_local_source=tls)
        results = execution.run()
        assert results[0].ok
        assert len(results[0].result) == 5


class TestInterleaving:
    def test_threads_interleave_and_complete(self, codec):
        program = Worker()
        tls, defended, meter = make_shared_system()
        jobs = []
        for tag, role in ((0x41, "producer"), (0x42, "consumer"),
                          (0x43, "producer")):
            process, _ = make_thread(program, defended, meter, codec)
            jobs.append((process, program, (role, 8, tag)))
        execution = ThreadedExecution(jobs, seed="interleave",
                                      thread_local_source=tls)
        results = execution.run()
        assert all(result.ok for result in results), \
            [result.error for result in results]
        assert execution.scheduler.switches > 2, \
            "threads must actually interleave"

    def test_interleaving_is_deterministic(self, codec):
        def run(seed):
            program = Worker()
            tls, defended, meter = make_shared_system()
            jobs = []
            for tag in (1, 2):
                process, _ = make_thread(program, defended, meter, codec)
                jobs.append((process, program, ("producer", 6, tag)))
            execution = ThreadedExecution(jobs, seed=seed,
                                          thread_local_source=tls)
            execution.run()
            return (execution.scheduler.switches,
                    execution.scheduler.checkpoints)
        assert run("alpha") == run("alpha")

    def test_thread_local_v_uncontaminated(self, codec):
        """The crux: each thread's CCIDs must equal the single-threaded
        encoding of its own contexts, however the threads interleave."""
        program = Worker()

        # Single-threaded reference CCIDs per role.
        reference = {}
        for role in ("producer", "consumer"):
            tls, defended, meter = make_shared_system()
            process, _ = make_thread(program, defended, meter, codec)
            tls.bind(process.context_source)
            ccids = process.run(program, role, 1, 0x5A)
            reference[role] = ccids[0]
        assert reference["producer"] != reference["consumer"]

        tls, defended, meter = make_shared_system()
        jobs = []
        roles = ["producer", "consumer", "producer", "consumer"]
        for index, role in enumerate(roles):
            process, _ = make_thread(program, defended, meter, codec)
            jobs.append((process, program, (role, 6, index)))
        execution = ThreadedExecution(jobs, seed="pollution-check",
                                      min_slice=1, max_slice=3,
                                      thread_local_source=tls)
        results = execution.run()
        for role, result in zip(roles, results):
            assert result.ok, result.error
            assert all(ccid == reference[role] for ccid in result.result), \
                f"{role} thread saw foreign CCIDs: {result.result}"

    def test_patch_enforced_across_threads(self, codec):
        """A patch keyed on the producer context must zero producer
        buffers on every thread, and never consumer buffers."""
        program = Worker()
        probe_tls, defended_probe, meter_probe = make_shared_system()
        probe, _ = make_thread(program, defended_probe, meter_probe, codec)
        probe_tls.bind(probe.context_source)
        probe.run(program, "producer", 1, 0)
        producer_ccid = probe.allocations[-1].ccid

        patches = [HeapPatch("malloc", producer_ccid,
                             VulnType.USE_AFTER_FREE)]
        tls, defended, meter = make_shared_system(patches)
        jobs = []
        for role in ("producer", "consumer", "producer"):
            process, _ = make_thread(program, defended, meter, codec)
            jobs.append((process, program, (role, 4, 1)))
        results = ThreadedExecution(jobs, seed=7,
                                    thread_local_source=tls).run()
        assert all(result.ok for result in results)
        # 2 producer threads x 4 rounds of UAF-deferred frees.
        assert defended.enhanced_counts[VulnType.USE_AFTER_FREE] == 8
        assert len(defended.quarantine) == 8

    def test_shared_heap_integrity_under_interleaving(self, codec):
        """The Worker itself asserts its buffer contents every round; a
        corrupted interleaving would surface as a thread error."""
        program = Worker()
        tls, defended, meter = make_shared_system()
        jobs = []
        for tag in range(6):
            process, _ = make_thread(program, defended, meter, codec)
            jobs.append((process, program, ("producer", 10, tag)))
        results = ThreadedExecution(jobs, seed="integrity",
                                    thread_local_source=tls).run()
        assert all(result.ok for result in results)

    def test_guest_exception_does_not_wedge_others(self, codec):
        class Crasher(Program):
            name = "crasher"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "malloc")
                return graph

            def main(self, p):
                p.malloc(8)
                raise RuntimeError("guest bug")

        worker = Worker()
        crasher = Crasher()
        tls, defended, meter = make_shared_system()
        worker_process, _ = make_thread(worker, defended, meter, codec)
        crash_plan = InstrumentationPlan.build(crasher.graph, ["malloc"],
                                               Strategy.TCS)
        crash_codec = SCHEMES["pcc"].build(crash_plan)
        crash_process, _ = make_thread(crasher, defended, meter,
                                       crash_codec)
        results = ThreadedExecution([
            (worker_process, worker, ("producer", 6, 9)),
            (crash_process, crasher, ()),
        ], seed=3, thread_local_source=tls).run()
        assert results[0].ok
        assert not results[1].ok
        assert isinstance(results[1].error, RuntimeError)
