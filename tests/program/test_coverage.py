"""Call-graph coverage tooling."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import SCHEMES, EncodingRuntime, InstrumentationPlan, Strategy
from repro.program.callgraph import CallGraph
from repro.program.coverage import (
    CoverageReport,
    CoverageTracker,
    merge_coverage,
)
from repro.program.process import Process
from repro.program.program import Program
from repro.workloads.vulnerable import HeartbleedService, table2_programs


class Branchy(Program):
    name = "branchy"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "left")
        graph.add_call_site("main", "right")
        graph.add_call_site("left", "malloc")
        graph.add_call_site("right", "malloc")
        return graph

    def main(self, p, go_right):
        if go_right:
            buf = p.call("right", lambda q: q.malloc(8))
        else:
            buf = p.call("left", lambda q: q.malloc(8))
        p.free(buf) if False else None
        return buf


def run_with_tracker(program, *args):
    tracker = CoverageTracker()
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=tracker)
    process.run(program, *args)
    return tracker


class TestTracker:
    def test_records_executed_sites(self):
        program = Branchy()
        tracker = run_with_tracker(program, False)
        report = CoverageReport(program.graph, tracker.executed)
        covered = {f"{s.caller}->{s.callee}" for s in report.covered_sites}
        assert covered == {"main->left", "left->malloc"}
        uncovered = {f"{s.caller}->{s.callee}"
                     for s in report.uncovered_sites}
        assert uncovered == {"main->right", "right->malloc"}
        assert report.coverage == 0.5

    def test_merge_across_inputs_reaches_full_coverage(self):
        program = Branchy()
        trackers = [run_with_tracker(program, flag)
                    for flag in (False, True)]
        report = merge_coverage(program.graph, trackers)
        assert report.coverage == 1.0
        assert report.uncovered_sites == []

    def test_crossing_counts_accumulate(self):
        program = Branchy()
        trackers = [run_with_tracker(program, False) for _ in range(3)]
        report = merge_coverage(program.graph, trackers)
        left = program.graph.site("main", "left")
        assert report.crossings(left) == 3

    def test_subset_restricts_to_plan(self):
        program = Branchy()
        plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                         Strategy.SLIM)
        tracker = run_with_tracker(program, True)
        report = CoverageReport(program.graph, tracker.executed,
                                subset=plan.sites)
        # Slim instruments only main's two branching sites.
        assert len(report._universe()) == 2

    def test_stacked_with_encoding_runtime(self):
        program = Branchy()
        plan = InstrumentationPlan.build(program.graph, ["malloc"],
                                         Strategy.FCS)
        runtime = EncodingRuntime(SCHEMES["pcc"].build(plan))
        tracker = CoverageTracker(inner=runtime)
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=tracker)
        process.run(program, True)
        assert tracker.executed  # coverage captured...
        assert process.allocations[0].ccid != 0  # ...and CCIDs flowed

    def test_render_lists_gaps(self):
        program = Branchy()
        tracker = run_with_tracker(program, False)
        text = CoverageReport(program.graph, tracker.executed).render()
        assert "never executed: main->right" in text


class TestWorkloadGraphHygiene:
    @pytest.mark.parametrize("program", table2_programs(),
                             ids=lambda prog: prog.name)
    def test_cve_workloads_cover_their_graphs(self, program):
        """Attack + benign inputs together must exercise every declared
        call site except the allocation/free API edges (which are
        declared per entry point, and some programs legitimately skip
        e.g. the free path on the crash input)."""
        trackers = [run_with_tracker(program, program.attack_input()),
                    run_with_tracker(program, program.benign_input())]
        report = merge_coverage(program.graph, trackers)
        uncovered = [site for site in report.uncovered_sites
                     if not (site.callee in ("malloc", "calloc", "realloc",
                                             "memalign", "free"))]
        assert uncovered == [], (
            f"{program.name}: dead declared sites "
            f"{[(s.caller, s.callee) for s in uncovered]}")
