"""Process execution: call protocol, contexts, heap dispatch, profiling."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.machine.errors import SegmentationFault
from repro.program.callgraph import CallGraph, CallGraphError
from repro.program.process import Process, ProcessError
from repro.program.program import Program
from repro.program.values import TaggedValue


class TwoPathProgram(Program):
    """main -> {left, right} -> malloc; writes/reads through buffers."""

    name = "two-path"

    def build_graph(self):
        graph = CallGraph()
        graph.add_call_site("main", "left")
        graph.add_call_site("main", "right")
        graph.add_call_site("left", "malloc")
        graph.add_call_site("right", "malloc")
        graph.add_call_site("main", "free")
        return graph

    def main(self, p, use_right=True):
        a = p.call("left", self._leaf)
        b = p.call("right", self._leaf) if use_right else 0
        p.write(a, b"hello")
        assert p.read(a, 5).data == b"hello"
        p.free(a)
        if b:
            p.free(b)
        return "done"

    def _leaf(self, p):
        return p.malloc(64)


@pytest.fixture
def program():
    return TwoPathProgram()


@pytest.fixture
def process(program):
    return Process(program.graph, heap=LibcAllocator())


class TestCallProtocol:
    def test_run_returns_program_result(self, program, process):
        assert process.run(program) == "done"

    def test_stack_unwinds_after_run(self, program, process):
        process.run(program)
        assert process.depth == 0

    def test_current_function_tracks_stack(self, program):
        observed = []

        class Probe(Program):
            name = "probe"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "inner")
                return graph

            def main(self, p):
                observed.append(p.current_function)
                p.call("inner", lambda p2: observed.append(
                    p2.current_function))
                observed.append(p.current_function)

        probe = Probe()
        Process(probe.graph, heap=LibcAllocator()).run(probe)
        assert observed == ["main", "inner", "main"]

    def test_undeclared_call_rejected(self):
        class Rogue(Program):
            name = "rogue"

            def build_graph(self):
                return CallGraph()

            def main(self, p):
                p.call("ghost", lambda p2: None)

        rogue = Rogue()
        with pytest.raises(CallGraphError):
            Process(rogue.graph, heap=LibcAllocator()).run(rogue)

    def test_no_frame_outside_run(self, process):
        with pytest.raises(ProcessError):
            _ = process.current_function

    def test_nested_run_rejected(self, program, process):
        class Nester(Program):
            name = "nester"

            def build_graph(self):
                return CallGraph()

            def main(self, p):
                p.run(self)

        nester = Nester()
        proc = Process(nester.graph, heap=LibcAllocator())
        with pytest.raises(ProcessError):
            proc.run(nester)

    def test_needs_monitor_or_heap(self, program):
        with pytest.raises(ProcessError):
            Process(program.graph)


class TestAllocationTracking:
    def test_events_record_context_and_fun(self, program, process):
        process.run(program)
        events = process.allocations
        assert len(events) == 2
        assert all(event.fun == "malloc" for event in events)
        left_site = program.graph.site("main", "left").site_id
        right_site = program.graph.site("main", "right").site_id
        assert events[0].context[0] == left_site
        assert events[1].context[0] == right_site
        # The final element is the allocation call site itself.
        assert program.graph.site_by_id(events[0].context[-1]).callee \
            == "malloc"

    def test_alloc_profile_counts(self, program, process):
        process.run(program)
        assert sum(process.alloc_profile.values()) == 2

    def test_live_allocations_shrink_on_free(self, program, process):
        process.run(program)
        assert process.live_allocations == {}

    def test_record_allocations_off(self, program):
        process = Process(program.graph, heap=LibcAllocator(),
                          record_allocations=False)
        process.run(program)
        assert process.allocations == []
        assert sum(process.alloc_profile.values()) == 2  # profile stays


class TestMemoryApi:
    def test_write_accepts_bytes_and_tagged(self, program, process):
        class Mem(Program):
            name = "mem"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "malloc")
                return graph

            def main(self, p):
                buf = p.malloc(32)
                p.write(buf, b"raw")
                p.write(buf + 3, TaggedValue.of_bytes(b"tag"))
                p.write_int(buf + 8, 0xABCD, size=4)
                value = p.read_int(buf + 8, size=4)
                assert p.branch_on(value) == 0xABCD
                p.copy(buf + 16, buf, 6)
                assert p.read(buf + 16, 6).data == b"rawtag"
                p.fill(buf, 4, 0)
                assert p.read(buf, 4).data == bytes(4)
                return True

        mem = Mem()
        assert Process(mem.graph, heap=LibcAllocator()).run(mem)

    def test_syscalls_move_data(self):
        class Sys(Program):
            name = "sys"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "malloc")
                return graph

            def main(self, p):
                buf = p.malloc(16)
                p.syscall_in(buf, b"from-network")
                return p.syscall_out(buf, 12)

        sys_prog = Sys()
        result = Process(sys_prog.graph, heap=LibcAllocator()).run(sys_prog)
        assert result == b"from-network"

    def test_compute_charges_base(self, program, process):
        before = process.meter.category("base")
        process.meter.charge("base", 0)

        class Burn(Program):
            name = "burn"

            def build_graph(self):
                return CallGraph()

            def main(self, p):
                p.compute(12345)

        burn = Burn()
        proc = Process(burn.graph, heap=LibcAllocator())
        proc.run(burn)
        assert proc.meter.category("base") == 12345


class TestReallocSemantics:
    def test_realloc_retags_context(self):
        class Re(Program):
            name = "re"

            def build_graph(self):
                graph = CallGraph()
                graph.add_call_site("main", "malloc")
                graph.add_call_site("main", "grow")
                graph.add_call_site("grow", "realloc")
                return graph

            def main(self, p):
                buf = p.malloc(16)
                return p.call("grow", lambda p2: p2.realloc(buf, 64))

        re_prog = Re()
        process = Process(re_prog.graph, heap=LibcAllocator())
        new_address = process.run(re_prog)
        events = process.allocations
        assert events[-1].fun == "realloc"
        assert events[-1].address == new_address
        grow_site = re_prog.graph.site("main", "grow").site_id
        assert events[-1].context[0] == grow_site
