"""Observation equivalence of basic-block batched execution.

The substrate executes straight-line op runs three ways:

1. the per-instruction reference — ``BasicBlock.interpret`` issuing one
   ``Process`` method call per op (also the path under a lock-step
   scheduler),
2. the generic monitor replay — ``ExecutionMonitor.exec_block`` calling
   the ordinary per-op monitor methods, and
3. the fused fast path — ``DirectMonitor.exec_block`` with one batched
   cycle charge and direct word-view memory traffic.

The module docstrings of ``repro.program.blocks`` and
``repro.program.monitor`` promise these are observationally identical:
same memory contents, same outputs, same cycle totals per category, and
on a fault the same first faulting address with the same cycles
consumed.  Hypothesis generates arbitrary blocks and this suite holds
all three paths to that promise, plus allocator-trace and
attack-outcome equivalence for block-using guest programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.libc import LibcAllocator
from repro.defense.interpose import DefendedAllocator
from repro.defense.patch_table import PatchTable
from repro.machine.errors import SegmentationFault
from repro.patch.model import HeapPatch
from repro.program.blocks import BlockBuilder, BlockError
from repro.program.callgraph import CallGraph
from repro.program.context import ContextSource
from repro.program.monitor import ExecutionMonitor
from repro.program.process import Process
from repro.vulntypes import VulnType

#: User size of each scratch buffer the generated blocks address.
BUF = 256

#: Access sizes the strategies draw from: sub-word, word, multi-word.
SIZES = (1, 2, 3, 4, 8, 12, 16, 24, 32)

#: The third runtime argument is a plain integer (write_arg source).
EXTRA_ARG = 0x1122334455


def make_process(heap=None):
    graph = CallGraph()
    for label in ("a", "b", "loop", "victim"):
        graph.add_call_site("main", "malloc", label)
    graph.add_call_site("main", "free")
    return Process(graph, heap=heap or LibcAllocator())


class _Main:
    """Minimal ProgramLike: runs ``fn`` inside the entry frame (heap
    calls need an active frame for their call sites)."""

    def __init__(self, fn):
        self.fn = fn

    def main(self, process):
        return self.fn(process)


def run_in_main(process, fn):
    return process.run(_Main(fn))


def normalize(outputs):
    """Block outputs are ints (value uses) and bytes (syscall_out)."""
    return [bytes(o) if isinstance(o, (bytes, bytearray, memoryview))
            else int(o) for o in outputs]


# ---------------------------------------------------------------------------
# Strategies: descriptor lists applied to a BlockBuilder
# ---------------------------------------------------------------------------

_arg = st.integers(0, 1)
_off = st.integers(0, BUF - 32)
_size = st.sampled_from(SIZES)

_plain_ops = [
    st.tuples(st.just("compute"), st.integers(1, 20)),
    st.tuples(st.just("read"), _arg, _off, _size),
    st.tuples(st.just("write"), _arg, _off,
              st.binary(min_size=1, max_size=24)),
    st.tuples(st.just("write_arg"), _arg, _off, st.integers(0, 2)),
    st.tuples(st.just("fill"), _arg, _off, _size, st.integers(0, 255)),
    st.tuples(st.just("copy"), _arg, _off, _arg, _off, _size),
    st.tuples(st.just("syscall_out"), _arg, _off, _size),
    st.tuples(st.just("sendfile"), _arg, _off, _size),
    st.tuples(st.just("syscall_in"), _arg, _off,
              st.binary(min_size=1, max_size=24)),
]

#: Ops that consume a previously created value slot (the index is taken
#: modulo the number of live slots at build time).
_slot_ops = [
    st.tuples(st.just("write_value"), _arg, _off, st.integers(0, 63)),
    st.tuples(st.just("branch_on"), st.integers(0, 63)),
    st.tuples(st.just("use_as_address"), st.integers(0, 63)),
]


@st.composite
def block_descriptors(draw):
    n = draw(st.integers(1, 12))
    descriptors = []
    slots = 0
    for _ in range(n):
        pool = list(_plain_ops) + (_slot_ops if slots else [])
        d = draw(st.one_of(pool))
        if d[0] == "read":
            slots += 1
        descriptors.append(d)
    return descriptors


def build_block(descriptors):
    builder = BlockBuilder()
    slots = []
    for d in descriptors:
        kind = d[0]
        if kind == "compute":
            builder.compute(d[1])
        elif kind == "read":
            slots.append(builder.read(d[1], d[2], d[3]))
        elif kind == "write":
            builder.write(d[1], d[2], d[3])
        elif kind == "write_arg":
            builder.write_arg(d[1], d[2], d[3])
        elif kind == "write_value":
            builder.write_value(d[1], d[2], slots[d[3] % len(slots)])
        elif kind == "fill":
            builder.fill(d[1], d[2], d[3], d[4])
        elif kind == "copy":
            builder.copy(d[1], d[2], d[3], d[4], d[5])
        elif kind == "branch_on":
            builder.branch_on(slots[d[1] % len(slots)])
        elif kind == "use_as_address":
            builder.use_as_address(slots[d[1] % len(slots)])
        elif kind == "syscall_out":
            builder.syscall_out(d[1], d[2], d[3])
        elif kind == "sendfile":
            builder.sendfile(d[1], d[2], d[3])
        else:  # syscall_in
            builder.syscall_in(d[1], d[2], d[3])
    return builder.build()


# ---------------------------------------------------------------------------
# The three execution paths
# ---------------------------------------------------------------------------

def run_reference(process, block, args):
    return block.interpret(process, args)


def run_generic(process, block, args):
    # Explicitly bypass DirectMonitor's fused override: the generic
    # per-op replay every interpreting monitor inherits.
    return ExecutionMonitor.exec_block(process.monitor, block, args)


def run_fused(process, block, args):
    return process.exec_block(block, *args)


PATHS = (run_reference, run_generic, run_fused)
PATH_IDS = ("interpret", "generic", "fused")


def observe(runner, block, heap_factory=None):
    """Run ``block`` on a fresh process; return every observable."""
    process = make_process(heap_factory() if heap_factory else None)

    def body(p):
        buf0 = p.malloc(BUF, site="a")
        buf1 = p.malloc(BUF, site="b")
        outputs = normalize(runner(p, block, (buf0, buf1, EXTRA_ARG)))
        memory = p.monitor.memory
        return {
            "addresses": (buf0, buf1),
            "outputs": outputs,
            "mem0": bytes(memory.read(buf0, BUF)),
            "mem1": bytes(memory.read(buf1, BUF)),
            "meter": p.meter.snapshot(),
        }

    return run_in_main(process, body)


# ---------------------------------------------------------------------------
# Happy-path equivalence
# ---------------------------------------------------------------------------

class TestBlockEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(block_descriptors())
    def test_three_paths_agree(self, descriptors):
        block = build_block(descriptors)
        reference, generic, fused = (observe(r, block) for r in PATHS)
        assert reference["addresses"] == generic["addresses"] \
            == fused["addresses"]
        assert reference["outputs"] == generic["outputs"] \
            == fused["outputs"]
        assert reference["mem0"] == generic["mem0"] == fused["mem0"]
        assert reference["mem1"] == generic["mem1"] == fused["mem1"]
        assert reference["meter"] == generic["meter"] == fused["meter"]

    @settings(max_examples=40, deadline=None)
    @given(block_descriptors())
    def test_three_paths_agree_over_defended_heap(self, descriptors):
        """Equivalence must survive the defense interposer's metadata
        word sitting immediately before each buffer."""
        block = build_block(descriptors)

        def heap():
            return DefendedAllocator(LibcAllocator(), PatchTable.empty())

        results = [observe(r, block, heap_factory=heap) for r in PATHS]
        first = results[0]
        for other in results[1:]:
            assert other == first

    def test_instruction_count_is_word_granular(self):
        builder = BlockBuilder()
        builder.fill(0, 0, 256, 0)      # 32 word stores
        builder.copy(0, 0, 1, 0, 64)    # 8 loads + 8 stores
        slot = builder.read(0, 8, 8)    # 1 load
        builder.branch_on(slot)         # 1 use
        builder.compute(7)              # 1 alu op
        block = builder.build()
        assert block.instructions == 32 + 16 + 1 + 1 + 1
        assert len(block.ops) == 5

    def test_empty_block_rejected(self):
        with pytest.raises(BlockError):
            BlockBuilder().build()


# ---------------------------------------------------------------------------
# Fault equivalence
# ---------------------------------------------------------------------------

def faulting_block(read_fault):
    """Writes, then an op that faults, then ops that must never run."""
    builder = BlockBuilder()
    builder.write(0, 0, b"before-fault!")
    builder.fill(0, 64, 32, 0xAB)
    if read_fault:
        slot = builder.read(1, 0, 8)  # arg 1 points at unmapped memory
        builder.branch_on(slot)
    else:
        builder.write(1, 0, b"\xff" * 8)
    builder.write(0, 128, b"never-written")
    return builder.build()


class TestFaultEquivalence:
    @pytest.mark.parametrize("read_fault", [True, False],
                             ids=["read", "write"])
    def test_same_fault_same_cycles_same_memory(self, read_fault):
        block = faulting_block(read_fault)
        observations = []
        for runner in PATHS:
            process = make_process()
            state = {}

            def body(p):
                buf = state["buf"] = p.malloc(BUF, site="a")
                bad = buf + (1 << 40)  # far outside any mapping
                runner(p, block, (buf, bad))

            with pytest.raises(SegmentationFault) as excinfo:
                run_in_main(process, body)
            fault = excinfo.value
            memory = process.monitor.memory
            observations.append({
                "address": fault.address - state["buf"],
                "access": fault.access,
                "size": fault.size,
                "meter": process.meter.snapshot(),
                "mem": bytes(memory.read(state["buf"], BUF)),
            })
        assert observations[0] == observations[1] == observations[2]
        # The ops before the fault landed; the op after it never ran.
        done = observations[0]["mem"]
        assert done.startswith(b"before-fault!")
        assert done[64:96] == b"\xab" * 32
        assert done[128:141] == bytes(13)

    @settings(max_examples=30, deadline=None)
    @given(block_descriptors())
    def test_random_prefix_then_fault(self, descriptors):
        """A fault following an arbitrary block leaves the same meter
        totals on every path (the prefix's charges all landed)."""
        block_ok = build_block(descriptors)
        fb = BlockBuilder()
        fb.read(0, 0, 8)
        fault_block = fb.build()
        observations = []
        for runner in PATHS:
            process = make_process()

            def body(p):
                buf0 = p.malloc(BUF, site="a")
                buf1 = p.malloc(BUF, site="b")
                normalize(runner(p, block_ok, (buf0, buf1, EXTRA_ARG)))
                runner(p, fault_block, (buf0 + (1 << 40),))

            with pytest.raises(SegmentationFault) as excinfo:
                run_in_main(process, body)
            observations.append({
                "address": excinfo.value.address,
                "meter": process.meter.snapshot(),
            })
        assert observations[0] == observations[1] == observations[2]


# ---------------------------------------------------------------------------
# Allocator-trace and attack-outcome equivalence for block programs
# ---------------------------------------------------------------------------

def guest_loop(process, use_blocks, iterations=40):
    """A miniature _GuestLoop: malloc, touch via block, free."""
    builder = BlockBuilder()
    builder.fill(0, 0, 96, 0)
    builder.write(0, 0, b"\x2a" * 16)
    slot = builder.read_int(0, 0, 8)
    builder.branch_on(slot)
    builder.write_arg(0, 8, 1)
    builder.write_value(0, 16, slot)
    block = builder.build()
    for i in range(iterations):
        buf = process.malloc(96 + (i % 3) * 32, site="loop")
        if use_blocks:
            process.exec_block(block, buf, i)
        else:
            block.interpret(process, (buf, i))
        process.free(buf)


class TestWorkloadEquivalence:
    def test_allocator_trace_identical(self):
        """Batched and per-op execution leave identical allocator
        traces: same stats, same event stream, same profile."""
        runs = []
        for use_blocks in (True, False):
            process = make_process()
            run_in_main(process,
                        lambda p, u=use_blocks: guest_loop(p, u))
            runs.append({
                "stats": process.monitor.heap.stats.snapshot(),
                "events": [(e.serial, e.fun, e.ccid, e.address, e.size)
                           for e in process.allocations],
                "profile": dict(process.alloc_profile),
                "meter": process.meter.snapshot(),
            })
        assert runs[0] == runs[1]

    def test_attack_outcome_identical(self):
        """A patched overflow must hit the guard page at the same
        address whether the overflowing store is batched or not."""
        from repro.defense.metadata import METADATA_SIZE, BufferMetadata
        from repro.machine.layout import PAGE_SIZE

        class FixedContext(ContextSource):
            def current_ccid(self):
                return 0x77

        # In-bounds fill, then a contiguous overflow long enough to
        # reach the guard page wherever in the page the buffer sits.
        builder = BlockBuilder()
        builder.write(0, 0, b"A" * 64)
        builder.fill(0, 64, PAGE_SIZE + 64, 0x42)
        block = builder.build()

        outcomes = []
        for use_blocks in (True, False):
            table = PatchTable(
                [HeapPatch("malloc", 0x77, VulnType.OVERFLOW)])
            heap = DefendedAllocator(LibcAllocator(), table,
                                     context_source=FixedContext())
            process = make_process(heap)
            state = {}

            def body(p):
                buf = state["buf"] = p.malloc(64, site="victim")
                if use_blocks:
                    p.exec_block(block, buf)
                else:
                    block.interpret(p, (buf,))

            with pytest.raises(SegmentationFault) as excinfo:
                run_in_main(process, body)
            buf = state["buf"]
            meta = BufferMetadata.decode(
                heap.memory.read_word(buf - METADATA_SIZE))
            assert meta.has_guard
            outcomes.append({
                "fault_offset": excinfo.value.address - buf,
                "hit_guard": excinfo.value.address == meta.guard_page,
                "access": excinfo.value.access,
                "meter": process.meter.snapshot(),
                "intact": bytes(
                    process.monitor.memory.read(buf, 64)) == b"A" * 64,
            })
        assert outcomes[0] == outcomes[1]
        assert outcomes[0]["hit_guard"]
        assert outcomes[0]["access"] == "write"
        assert outcomes[0]["intact"]


# ---------------------------------------------------------------------------
# sendfile: zero-copy send semantics
# ---------------------------------------------------------------------------

class TestSendfile:
    def test_counts_match_syscall_out_bytes(self):
        """sendfile outputs the byte *count* a copying send would have
        produced, for the same cycle charge in the same category."""
        data = b"zero-copy-response-body!"
        copying = BlockBuilder()
        copying.write(0, 0, data)
        copying.syscall_out(0, 0, len(data))
        fused = BlockBuilder()
        fused.write(0, 0, data)
        fused.sendfile(0, 0, len(data))

        process_a = make_process()
        out_a = run_in_main(
            process_a,
            lambda p: normalize(p.exec_block(copying.build(),
                                             p.malloc(BUF, site="a"))))
        process_b = make_process()
        out_b = run_in_main(
            process_b,
            lambda p: normalize(p.exec_block(fused.build(),
                                             p.malloc(BUF, site="a"))))
        assert out_a == [data]
        assert out_b == [len(data)]
        assert process_a.meter.snapshot() == process_b.meter.snapshot()

    def test_identical_instruction_count(self):
        a = BlockBuilder()
        a.syscall_out(0, 0, 64)
        b = BlockBuilder()
        b.sendfile(0, 0, 64)
        assert a.build().instructions == b.build().instructions

    def test_invalid_size_rejected(self):
        with pytest.raises(BlockError):
            BlockBuilder().sendfile(0, 0, 0)

    @pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
    def test_unreadable_range_is_a_read_fault(self, runner):
        """The access check is a *read* of the full range on every
        execution path — the zero-copy send still observes the data."""
        builder = BlockBuilder()
        builder.sendfile(0, 0, 8)
        block = builder.build()
        process = make_process()

        def body(p):
            buf = p.malloc(BUF, site="a")
            runner(p, block, (buf + (1 << 40),))

        with pytest.raises(SegmentationFault) as excinfo:
            run_in_main(process, body)
        assert excinfo.value.access == "read"
        assert excinfo.value.size == 8

    def test_overread_into_guard_page_blocked(self):
        """A sendfile running past a patched buffer's end hits the guard
        page: the serving engine's leak-blocking mechanism."""
        from repro.machine.layout import PAGE_SIZE

        class FixedContext(ContextSource):
            def current_ccid(self):
                return 0x31

        table = PatchTable([HeapPatch("malloc", 0x31, VulnType.OVERFLOW)])
        heap = DefendedAllocator(LibcAllocator(), table,
                                 context_source=FixedContext())
        process = make_process(heap)
        builder = BlockBuilder()
        builder.sendfile(0, 0, 2 * PAGE_SIZE)  # far past the 64 bytes
        block = builder.build()

        def body(p):
            p.exec_block(block, p.malloc(64, site="victim"))

        with pytest.raises(SegmentationFault) as excinfo:
            run_in_main(process, body)
        assert excinfo.value.access == "read"
