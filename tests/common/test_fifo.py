"""Freed-block FIFO queue with byte quota."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.fifo import FreedBlock, FreedBlockQueue


def test_quota_must_be_positive():
    with pytest.raises(ValueError):
        FreedBlockQueue(0)


def test_blocks_held_until_quota():
    queue = FreedBlockQueue(100)
    assert queue.push(FreedBlock(1, 40)) == []
    assert queue.push(FreedBlock(2, 40)) == []
    assert queue.held_bytes == 80
    assert len(queue) == 2


def test_fifo_eviction_order():
    queue = FreedBlockQueue(100)
    queue.push(FreedBlock(1, 40))
    queue.push(FreedBlock(2, 40))
    evicted = queue.push(FreedBlock(3, 40))
    assert [block.address for block in evicted] == [1]
    assert 1 not in queue and 2 in queue and 3 in queue


def test_oversized_block_bounces_immediately():
    queue = FreedBlockQueue(100)
    queue.push(FreedBlock(1, 90))
    evicted = queue.push(FreedBlock(2, 200))
    assert [block.address for block in evicted] == [2]
    assert 1 in queue  # existing contents undisturbed


def test_find_and_contains():
    queue = FreedBlockQueue(100)
    queue.push(FreedBlock(7, 10, payload="record"))
    found = queue.find(7)
    assert found is not None and found.payload == "record"
    assert queue.find(8) is None


def test_drain():
    queue = FreedBlockQueue(100)
    queue.push(FreedBlock(1, 10))
    queue.push(FreedBlock(2, 10))
    drained = queue.drain()
    assert [block.address for block in drained] == [1, 2]
    assert len(queue) == 0 and queue.held_bytes == 0


def test_counters():
    queue = FreedBlockQueue(50)
    for address in range(5):
        queue.push(FreedBlock(address, 20))
    assert queue.pushed == 5
    assert queue.evicted == 3
    assert queue.held_bytes <= 50


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                max_size=100),
       st.integers(min_value=64, max_value=512))
def test_quota_never_exceeded(sizes, quota):
    queue = FreedBlockQueue(quota)
    for index, size in enumerate(sizes):
        queue.push(FreedBlock(index, size))
        assert queue.held_bytes <= quota
    # FIFO: remaining addresses are a suffix of the pushed order.
    remaining = [block.address for block in queue.drain()]
    assert remaining == sorted(remaining)


@given(st.integers(min_value=1, max_value=20))
def test_longer_quarantine_with_fewer_entrants(selectivity):
    """The paper's entropy argument: with equal quota, quarantining only
    patched buffers keeps each one quarantined for more frees."""
    quota = 1000
    everything = FreedBlockQueue(quota)
    patched_only = FreedBlockQueue(quota)
    first_evicted_at = {}
    for i in range(400):
        evicted = everything.push(FreedBlock(("all", i), 50))
        for block in evicted:
            first_evicted_at.setdefault(block.address, i)
        if i % selectivity == 0:
            evicted = patched_only.push(FreedBlock(("sel", i), 50))
            for block in evicted:
                first_evicted_at.setdefault(block.address, i)
    all_life = [i - addr[1] for addr, i in first_evicted_at.items()
                if addr[0] == "all"]
    sel_life = [i - addr[1] for addr, i in first_evicted_at.items()
                if addr[0] == "sel"]
    if all_life and sel_life:
        assert min(sel_life) >= max(all_life)
