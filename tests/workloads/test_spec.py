"""SPEC-like synthetic benchmarks: fidelity and determinism."""

import pytest

from repro.allocator.libc import LibcAllocator
from repro.ccencoding import (
    SCHEMES,
    EncodingRuntime,
    InstrumentationPlan,
    Strategy,
)
from repro.core.pipeline import HeapTherapy
from repro.defense.patch_table import PatchTable
from repro.program.cost import CycleMeter
from repro.program.process import Process
from repro.workloads.spec.profiles import (
    ALLOC_SCALE,
    SPEC_PROFILES,
    profile_by_name,
    scaled,
)
from repro.workloads.spec.synth import SyntheticSpecProgram

SCALE = 0.05  # keep unit tests quick; benchmarks run at full scale


def test_twelve_profiles():
    assert len(SPEC_PROFILES) == 12
    names = [profile.name for profile in SPEC_PROFILES]
    assert names == sorted(names)


def test_profile_lookup():
    assert profile_by_name("429.mcf").malloc_calls == 5
    with pytest.raises(KeyError):
        profile_by_name("999.nothing")


def test_scaled_keeps_small_counts_verbatim():
    assert scaled(174) == 174
    assert scaled(5) == 5
    assert scaled(346_405_116) == 346_405_116 // ALLOC_SCALE


def test_table4_counts_preserved():
    """Spot-check the Table IV numbers embedded in the profiles."""
    perl = profile_by_name("400.perlbench")
    assert perl.malloc_calls == 346_405_116
    assert perl.realloc_calls == 11_736_402
    assert profile_by_name("462.libquantum").calloc_calls == 121
    assert profile_by_name("483.xalancbmk").malloc_calls == 135_155_553


@pytest.mark.parametrize("profile", SPEC_PROFILES,
                         ids=lambda p: p.name)
def test_native_run_matches_profile_alloc_mix(profile):
    program = SyntheticSpecProgram(profile, scale=SCALE)
    allocator = LibcAllocator()
    process = Process(program.graph, heap=allocator,
                      record_allocations=False)
    result = process.run(program)
    assert result["allocations"] > 0
    stats = allocator.stats
    # Entry points used must be exactly the hub targets (plus malloc
    # when counts of absent targets are rerouted).
    for fun in profile.hub_targets:
        declared = {"malloc": profile.scaled_malloc,
                    "calloc": profile.scaled_calloc,
                    "realloc": profile.scaled_realloc}[fun]
    assert stats.total_allocations == result["allocations"]
    assert allocator.live_buffer_count == 0  # everything freed at exit


def test_trace_is_deterministic():
    profile = profile_by_name("403.gcc")
    results = []
    for _ in range(2):
        program = SyntheticSpecProgram(profile, scale=SCALE)
        process = Process(program.graph, heap=LibcAllocator(),
                          record_allocations=False)
        results.append(process.run(program))
    assert results[0] == results[1]


def test_trace_identical_across_strategies():
    """The program must do the same work under every encoding strategy —
    the precondition for a fair overhead comparison."""
    profile = profile_by_name("456.hmmer")
    program = SyntheticSpecProgram(profile, scale=SCALE)
    checksums = []
    for strategy in Strategy:
        plan = InstrumentationPlan.build(program.graph,
                                         program.graph.allocation_targets,
                                         strategy)
        runtime = EncodingRuntime(SCHEMES["pcc"].build(plan))
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=runtime,
                          record_allocations=False)
        checksums.append(process.run(program)["checksum"])
    assert len(set(checksums)) == 1


def test_strategies_cost_ordering_on_one_benchmark():
    profile = profile_by_name("401.bzip2")
    program = SyntheticSpecProgram(profile, scale=SCALE)
    costs = {}
    for strategy in Strategy:
        plan = InstrumentationPlan.build(program.graph,
                                         program.graph.allocation_targets,
                                         strategy)
        meter = CycleMeter()
        runtime = EncodingRuntime(SCHEMES["pcc"].build(plan), meter)
        process = Process(program.graph, heap=LibcAllocator(),
                          context_source=runtime, meter=meter,
                          record_allocations=False)
        process.run(program)
        costs[strategy] = meter.category("encoding")
    assert costs[Strategy.FCS] > costs[Strategy.TCS]
    assert costs[Strategy.TCS] >= costs[Strategy.SLIM]
    assert costs[Strategy.SLIM] >= costs[Strategy.INCREMENTAL]


def test_defended_run_completes_with_patches():
    profile = profile_by_name("400.perlbench")
    program = SyntheticSpecProgram(profile, scale=0.02)
    system = HeapTherapy(program)
    native = system.run_native()
    ranked = native.process.alloc_profile.most_common()
    from repro.patch.model import HeapPatch
    from repro.vulntypes import VulnType
    (fun, ccid), _ = ranked[len(ranked) // 2]
    run = system.run_defended(
        PatchTable([HeapPatch(fun, ccid, VulnType.OVERFLOW)]))
    assert run.completed
    assert run.meter.category("defense") > 0


def test_contexts_are_plentiful():
    """The Figure 8 methodology needs a context population wide enough
    that median-frequency contexts are rare."""
    profile = profile_by_name("400.perlbench")
    program = SyntheticSpecProgram(profile, scale=SCALE)
    native = HeapTherapy(program).run_native()
    ranked = native.process.alloc_profile.most_common()
    assert len(ranked) > 50
    total = sum(count for _, count in ranked)
    median_count = ranked[len(ranked) // 2][1]
    assert median_count / total < 0.02
