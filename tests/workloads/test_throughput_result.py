"""``ThroughputResult`` derived metrics and the zero-cycle guard.

A measured run that executed no costed work has no defined throughput
or overhead; the guard turns the silent division error into a
diagnosable ``ValueError`` naming the zero field.
"""

import pytest

from repro.workloads.services.harness import ThroughputResult


def _result(native=2_000_000.0, defended=2_100_000.0):
    return ThroughputResult(label="nginx-1.2", work_units=1000,
                            native_cycles=native,
                            defended_cycles=defended)


class TestDerivedMetrics:
    def test_throughput_is_work_per_million_cycles(self):
        result = _result()
        assert result.native_throughput == pytest.approx(500.0)
        assert result.defended_throughput == pytest.approx(1000 / 2.1)

    def test_overhead_pct(self):
        assert _result().overhead_pct == pytest.approx(5.0)


class TestZeroCycleGuard:
    def test_zero_native_cycles_raises(self):
        result = _result(native=0.0)
        with pytest.raises(ValueError, match="native_cycles is 0"):
            result.native_throughput
        with pytest.raises(ValueError, match="native_cycles is 0"):
            result.overhead_pct

    def test_zero_defended_cycles_raises(self):
        with pytest.raises(ValueError, match="defended_cycles is 0"):
            _result(defended=0.0).defended_throughput

    def test_error_names_the_configuration(self):
        with pytest.raises(ValueError, match="nginx-1.2"):
            _result(native=0.0).native_throughput
