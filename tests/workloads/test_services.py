"""Service workloads and the throughput harness (§VIII-B2)."""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.workloads.services import (
    MySqlServer,
    NginxServer,
    measure_throughput,
    median_frequency_patches,
)

REQUESTS = 120
QUERIES = 400
#: Steady-state query count: long enough to amortize the buffer-pool
#: startup allocations, as a real stress test would.
QUERIES_STEADY = 2000


class TestNginx:
    def test_serves_all_requests(self):
        program = NginxServer()
        system = HeapTherapy(program)
        run = system.run_native(REQUESTS, 20)
        assert run.result["served"] == REQUESTS
        assert run.result["bytes_sent"] > 0

    def test_no_heap_leak_per_request(self):
        program = NginxServer()
        system = HeapTherapy(program)
        run = system.run_native(REQUESTS, 20)
        assert run.allocator.live_buffer_count == 0

    @pytest.mark.parametrize("concurrency", [20, 100, 200])
    def test_throughput_overhead_is_small(self, concurrency):
        result = measure_throughput(NginxServer(), f"nginx c={concurrency}",
                                    REQUESTS, (REQUESTS, concurrency))
        # Paper: 4.2% average; require the same order of magnitude.
        assert 0 < result.overhead_pct < 10

    def test_throughput_properties(self):
        result = measure_throughput(NginxServer(), "nginx", REQUESTS,
                                    (REQUESTS, 20))
        assert result.native_throughput > result.defended_throughput
        assert result.work_units == REQUESTS


class TestMySql:
    def test_executes_all_queries(self):
        program = MySqlServer()
        system = HeapTherapy(program)
        run = system.run_native(QUERIES)
        assert run.result["rows"] == QUERIES

    def test_overhead_negligible(self):
        result = measure_throughput(MySqlServer(), "mysql", QUERIES_STEADY,
                                    (QUERIES_STEADY,))
        # Paper: "no observable throughput overhead".
        assert result.overhead_pct < 1.5

    def test_mysql_cheaper_than_nginx(self):
        """The structural claim: pooled allocation ⇒ less interposition."""
        nginx = measure_throughput(NginxServer(), "nginx", REQUESTS,
                                   (REQUESTS, 20))
        mysql = measure_throughput(MySqlServer(), "mysql", QUERIES_STEADY,
                                   (QUERIES_STEADY,))
        assert mysql.overhead_pct < nginx.overhead_pct


class TestMedianFrequencyPatches:
    def test_patch_count_honoured(self):
        system = HeapTherapy(NginxServer())
        patches = median_frequency_patches(system, REQUESTS, 20, count=3)
        assert len(patches) == 3
        assert len({p.key for p in patches}) == 3

    def test_zero_count_gives_no_patches(self):
        system = HeapTherapy(NginxServer())
        assert median_frequency_patches(system, REQUESTS, 20, count=0) == []

    def test_patched_run_still_serves(self):
        result = measure_throughput(NginxServer(), "nginx+patch", REQUESTS,
                                    (REQUESTS, 20), patch_count=1)
        assert result.defended_cycles > result.native_cycles
