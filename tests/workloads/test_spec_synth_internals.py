"""Internals of the SPEC-like workload generator."""

import pytest

from repro.ccencoding import Strategy, select_sites
from repro.workloads.spec.profiles import SPEC_PROFILES, profile_by_name
from repro.workloads.spec.synth import SyntheticSpecProgram


@pytest.fixture(scope="module")
def perlbench():
    return SyntheticSpecProgram(profile_by_name("400.perlbench"),
                                scale=0.05)


class TestGraphShape:
    def test_phase_layer_present(self, perlbench):
        graph = perlbench.graph
        profile = perlbench.profile
        for phase in range(profile.phases):
            assert graph.has_function(f"phase{phase}")
            # Every phase reaches every allocating subsystem.
            for subsystem in range(profile.alloc_subsystems):
                assert graph.site(f"phase{phase}", f"subsys{subsystem}")

    def test_noise_trees_cannot_reach_targets(self, perlbench):
        graph = perlbench.graph
        reaching = graph.reachable_to(graph.allocation_targets)
        noise_roots = [name for name in graph.function_names
                       if name.startswith("noise") and "_" not in name]
        assert noise_roots
        for root in noise_roots:
            assert root not in reaching

    def test_hub_sites_per_target(self, perlbench):
        graph = perlbench.graph
        profile = perlbench.profile
        hub = "subsys0_hub"
        for fun in profile.hub_targets:
            sites = [s for s in graph.out_sites(hub) if s.callee == fun]
            assert len(sites) == profile.sites_per_target

    def test_graphs_are_acyclic(self):
        for profile in SPEC_PROFILES:
            program = SyntheticSpecProgram(profile, scale=0.01)
            assert program.graph.is_acyclic(), profile.name


class TestPlan:
    def test_plan_counts_match_scaled_profile(self, perlbench):
        schedule, noise_walks = perlbench._plan()
        profile = perlbench.profile
        expected = sum(
            perlbench._scaled(count) for count in (
                profile.scaled_malloc, profile.scaled_calloc,
                profile.scaled_realloc) if count)
        assert len(schedule) == expected
        assert noise_walks >= 1

    def test_plan_is_deterministic(self, perlbench):
        assert perlbench._plan() == perlbench._plan()

    def test_zipf_skew_across_combos(self, perlbench):
        """The context-frequency distribution must be heavy-tailed: the
        hottest combo far above the median combo."""
        schedule, _ = perlbench._plan()
        from collections import Counter
        combo_counts = Counter((phase, subsystem, site)
                               for _, phase, subsystem, site in schedule)
        counts = sorted(combo_counts.values(), reverse=True)
        assert counts[0] >= 5 * counts[len(counts) // 2]

    def test_schedule_funs_are_hub_targets(self, perlbench):
        schedule, _ = perlbench._plan()
        funs = {entry[0] for entry in schedule}
        assert funs <= set(perlbench.profile.hub_targets)


class TestScaling:
    def test_scale_shrinks_work(self):
        profile = profile_by_name("471.omnetpp")
        small = SyntheticSpecProgram(profile, scale=0.01)._plan()[0]
        large = SyntheticSpecProgram(profile, scale=0.05)._plan()[0]
        assert len(large) > len(small) > 0

    def test_tiny_counts_never_vanish(self):
        profile = profile_by_name("429.mcf")  # 8 allocations total
        program = SyntheticSpecProgram(profile, scale=0.001)
        schedule, _ = program._plan()
        assert len(schedule) >= 2  # malloc and calloc each survive


class TestInstrumentationInteraction:
    def test_relevant_region_is_alloc_side_only(self, perlbench):
        graph = perlbench.graph
        tcs = select_sites(graph, graph.allocation_targets, Strategy.TCS)
        for site_id in tcs:
            site = graph.site_by_id(site_id)
            assert not site.caller.startswith("noise"), \
                "noise subsystems must be pruned by TCS"
