"""Attack corpora: builders, on-disk round-trips and validation."""

import json

import pytest

from repro.workloads.corpus import (
    CORPUS_SCHEMA_VERSION,
    AttackCorpus,
    CorpusEntry,
    CorpusError,
    default_corpus,
    fuzz_workload_key,
    fuzz_workload_seed,
    is_fuzz_workload,
    load_corpus,
    samate_corpus,
    save_corpus,
    table2_corpus,
)
from repro.workloads.vulnerable import workload_registry


class TestBuilders:
    def test_table2_has_the_seven_cves(self):
        corpus = table2_corpus()
        assert len(corpus) == 7
        assert corpus.workloads() == [
            "heartbleed", "bc", "ghostxps", "optipng", "tiff", "wavpack",
            "libming"]

    def test_samate_has_23_cases(self):
        corpus = samate_corpus()
        assert len(corpus) == 23
        assert corpus.workloads()[0] == "samate-01"
        assert corpus.workloads()[-1] == "samate-23"

    def test_default_is_the_30_attack_evaluation(self):
        corpus = default_corpus()
        assert len(corpus) == 30
        assert len(set(entry.entry_id for entry in corpus)) == 30

    def test_every_builder_workload_is_registered(self):
        registry = workload_registry()
        for entry in default_corpus():
            assert entry.workload in registry

    def test_entries_expect_detection(self):
        assert all(entry.expects_detection for entry in default_corpus())
        benign = CorpusEntry("x", "heartbleed", "benign")
        assert not benign.expects_detection


class TestReplication:
    def test_replicated_scales_and_keeps_ids_unique(self):
        corpus = table2_corpus().replicated(3)
        assert len(corpus) == 21
        assert len(set(entry.entry_id for entry in corpus)) == 21
        assert corpus.workloads() == table2_corpus().workloads()

    def test_replication_factor_must_be_positive(self):
        with pytest.raises(CorpusError):
            table2_corpus().replicated(0)


class TestResolveArgs:
    def test_named_inputs_resolve(self):
        registry = workload_registry()
        program = registry["heartbleed"]()
        attack = CorpusEntry("a", "heartbleed", "attack")
        benign = CorpusEntry("b", "heartbleed", "benign")
        assert attack.resolve_args(program) == (program.attack_input(),)
        assert benign.resolve_args(program) == (program.benign_input(),)

    def test_explicit_args_win(self):
        entry = CorpusEntry("c", "heartbleed", input_name=None,
                            args=("payload",))
        assert entry.resolve_args(object()) == ("payload",)

    def test_unknown_input_name_raises(self):
        entry = CorpusEntry("d", "heartbleed", "fuzzy")
        registry = workload_registry()
        with pytest.raises(CorpusError):
            entry.resolve_args(registry["heartbleed"]())


class TestOnDisk:
    def test_save_load_round_trip(self, tmp_path):
        saved = save_corpus(table2_corpus(), tmp_path)
        assert saved.exists()
        loaded = load_corpus(tmp_path)
        assert ([(e.workload, e.input_name) for e in loaded]
                == [(e.workload, e.input_name) for e in table2_corpus()])

    def test_files_read_in_sorted_order(self, tmp_path):
        (tmp_path / "b.json").write_text(json.dumps(
            [{"workload": "bc"}]))
        (tmp_path / "a.json").write_text(json.dumps(
            [{"workload": "heartbleed", "input": "benign"}]))
        loaded = load_corpus(tmp_path)
        assert [e.workload for e in loaded] == ["heartbleed", "bc"]
        assert loaded.entries[0].input_name == "benign"

    def test_repeat_expands_entries(self, tmp_path):
        (tmp_path / "c.json").write_text(json.dumps(
            [{"workload": "heartbleed", "repeat": 3}]))
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 3
        assert len(set(e.entry_id for e in loaded)) == 3
        assert all(e.workload == "heartbleed" for e in loaded)

    def test_save_refuses_in_memory_args(self, tmp_path):
        corpus = AttackCorpus((CorpusEntry(
            "x", "heartbleed", input_name=None, args=("raw",)),))
        with pytest.raises(CorpusError):
            save_corpus(corpus, tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            load_corpus(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            load_corpus(tmp_path)

    def test_invalid_json_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(CorpusError, match="invalid JSON"):
            load_corpus(tmp_path)

    def test_non_list_document_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"workload": "bc"}))
        with pytest.raises(CorpusError, match="list"):
            load_corpus(tmp_path)

    def test_unknown_workload_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "definitely-not-a-workload"}]))
        with pytest.raises(CorpusError, match="unknown workload"):
            load_corpus(tmp_path)

    def test_bad_input_name_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "bc", "input": "fuzz"}]))
        with pytest.raises(CorpusError, match="input"):
            load_corpus(tmp_path)

    def test_non_positive_repeat_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "bc", "repeat": 0}]))
        with pytest.raises(CorpusError, match="repeat"):
            load_corpus(tmp_path)

    def test_non_integer_repeat_is_a_corpus_error(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "bc", "repeat": "three"}]))
        with pytest.raises(CorpusError, match="repeat must be an"):
            load_corpus(tmp_path)

    def test_truncated_file_is_a_corpus_error(self, tmp_path):
        complete = json.dumps([{"workload": "bc"}] * 4)
        (tmp_path / "cut.json").write_text(complete[:len(complete) // 2])
        with pytest.raises(CorpusError, match="invalid JSON"):
            load_corpus(tmp_path)

    def test_non_utf8_file_is_a_corpus_error(self, tmp_path):
        (tmp_path / "bin.json").write_bytes(b"\xff\xfe[]")
        with pytest.raises(CorpusError, match="not UTF-8"):
            load_corpus(tmp_path)


class TestDirectoryEdgeCases:
    def test_non_json_files_are_ignored_deterministically(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(
            [{"workload": "bc"}]))
        (tmp_path / "README.md").write_text("not a corpus file")
        (tmp_path / "b.json.bak").write_text("{ not json either")
        (tmp_path / "z.txt").write_text("[]")
        corpus = load_corpus(tmp_path)
        assert len(corpus) == 1
        assert corpus.entries[0].workload == "bc"

    def test_only_non_json_files_counts_as_empty(self, tmp_path):
        (tmp_path / "notes.txt").write_text("[]")
        with pytest.raises(CorpusError, match="no \\*.json"):
            load_corpus(tmp_path)

    def test_same_workload_across_files_keeps_ids_unique(self, tmp_path):
        for name in ("a.json", "b.json"):
            (tmp_path / name).write_text(json.dumps(
                [{"workload": "bc"}, {"workload": "bc", "repeat": 2}]))
        corpus = load_corpus(tmp_path)
        assert len(corpus) == 6
        ids = [entry.entry_id for entry in corpus]
        assert len(set(ids)) == len(ids)


class TestDiagnoseCorpusCli:
    """``repro diagnose --corpus`` must fail usage-style, not traceback."""

    def _stderr_lines(self, capsys):
        err = capsys.readouterr().err.strip()
        return [line for line in err.splitlines() if line]

    def test_malformed_corpus_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "bc", "repeat": None}]))
        with pytest.raises(SystemExit) as excinfo:
            main(["diagnose", "--corpus", str(tmp_path)])
        assert excinfo.value.code == 2
        lines = self._stderr_lines(capsys)
        assert len(lines) == 1
        assert "repeat must be an integer" in lines[0]

    def test_truncated_corpus_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "cut.json").write_text('[{"workload": "bc"')
        with pytest.raises(SystemExit) as excinfo:
            main(["diagnose", "--corpus", str(tmp_path)])
        assert excinfo.value.code == 2
        lines = self._stderr_lines(capsys)
        assert len(lines) == 1
        assert "invalid JSON" in lines[0]


class TestSchemaVersioning:
    """The v2 envelope, legacy v1 migration, and fuzz:<seed> keys."""

    def test_save_writes_versioned_envelope(self, tmp_path):
        saved = save_corpus(table2_corpus(), tmp_path)
        doc = json.loads(saved.read_text())
        assert doc["schema_version"] == CORPUS_SCHEMA_VERSION
        assert isinstance(doc["entries"], list)

    def test_v2_round_trip(self, tmp_path):
        save_corpus(table2_corpus(), tmp_path)
        loaded = load_corpus(tmp_path)
        assert ([(e.workload, e.input_name) for e in loaded]
                == [(e.workload, e.input_name) for e in table2_corpus()])

    def test_legacy_bare_list_still_loads(self, tmp_path):
        """Version-absent files are version 1 and load unchanged."""
        (tmp_path / "old.json").write_text(json.dumps(
            [{"workload": "heartbleed"}, {"workload": "bc"}]))
        loaded = load_corpus(tmp_path)
        assert [e.workload for e in loaded] == ["heartbleed", "bc"]

    def test_explicit_version_one_loads(self, tmp_path):
        (tmp_path / "v1.json").write_text(json.dumps(
            {"schema_version": 1,
             "entries": [{"workload": "heartbleed"}]}))
        assert len(load_corpus(tmp_path)) == 1

    def test_legacy_migration_is_lossless(self, tmp_path):
        """v1 file -> load -> save produces an equivalent v2 file."""
        legacy = tmp_path / "in"
        legacy.mkdir()
        (legacy / "old.json").write_text(json.dumps(
            [{"workload": "heartbleed", "input": "benign"}]))
        migrated_dir = tmp_path / "out"
        saved = save_corpus(load_corpus(legacy), migrated_dir)
        doc = json.loads(saved.read_text())
        assert doc["schema_version"] == CORPUS_SCHEMA_VERSION
        reloaded = load_corpus(migrated_dir)
        assert [(e.workload, e.input_name) for e in reloaded] \
            == [("heartbleed", "benign")]

    def test_future_version_is_rejected(self, tmp_path):
        (tmp_path / "new.json").write_text(json.dumps(
            {"schema_version": 99, "entries": []}))
        with pytest.raises(CorpusError, match="schema_version"):
            load_corpus(tmp_path)

    def test_envelope_without_entry_list_is_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            {"schema_version": 2, "entries": "nope"}))
        with pytest.raises(CorpusError, match="'entries'"):
            load_corpus(tmp_path)

    def test_fuzz_workload_keys_load_without_registry(self, tmp_path):
        (tmp_path / "synth.json").write_text(json.dumps(
            {"schema_version": 2,
             "entries": [{"workload": "fuzz:17"}]}))
        loaded = load_corpus(tmp_path)
        assert loaded.entries[0].workload == "fuzz:17"

    def test_malformed_fuzz_key_is_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps(
            [{"workload": "fuzz:banana"}]))
        with pytest.raises(CorpusError, match="fuzz workload key"):
            load_corpus(tmp_path)

    def test_fuzz_key_helpers(self):
        assert fuzz_workload_key(5) == "fuzz:5"
        assert is_fuzz_workload("fuzz:5")
        assert not is_fuzz_workload("heartbleed")
        assert fuzz_workload_seed("fuzz:5") == 5
        with pytest.raises(CorpusError):
            fuzz_workload_seed("fuzz:-1")
        with pytest.raises(CorpusError):
            fuzz_workload_seed("fuzz:x")
