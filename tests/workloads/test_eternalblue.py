"""EternalBlue-like extension workload."""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import SmbServer, extension_programs
from repro.workloads.vulnerable.eternalblue import (
    GROOM_COUNT,
    LEGIT_HANDLER,
    SHELLCODE,
    SmbSession,
)


@pytest.fixture(scope="module")
def system():
    return HeapTherapy(SmbServer())


def test_word_truncation_is_the_bug():
    attack = SmbServer.attack_input()
    assert attack.fea_total > 0xFFFF
    assert attack.truncated_total < len(attack.fea_data)
    benign = SmbServer.benign_input()
    assert benign.truncated_total == len(benign.fea_data)


def test_grooming_plants_hijack(system):
    program = system.program
    native = system.run_native(SmbServer.attack_input())
    assert native.result.facts["dispatched_handler"] == SHELLCODE
    assert program.attack_succeeded(native.result)


def test_benign_session_dispatches_legit_handler(system):
    program = system.program
    native = system.run_native(SmbServer.benign_input())
    assert native.result.facts["dispatched_handler"] == LEGIT_HANDLER
    assert program.benign_works(native.result)


def test_offline_analysis_pins_the_fea_buffer(system):
    generation = system.generate_patches(SmbServer.attack_input())
    assert generation.detected
    assert all(patch.vuln & VulnType.OVERFLOW
               for patch in generation.patches)


def test_defense_prevents_hijack(system):
    program = system.program
    generation = system.generate_patches(SmbServer.attack_input())
    run = system.run_defended(generation.patches, SmbServer.attack_input())
    outcome = None if run.blocked else run.result
    assert not program.attack_succeeded(outcome)
    if run.completed:
        assert run.result.facts["dispatched_handler"] == LEGIT_HANDLER


def test_benign_unaffected_by_patch(system):
    program = system.program
    generation = system.generate_patches(SmbServer.attack_input())
    run = system.run_defended(generation.patches, SmbServer.benign_input())
    assert run.completed
    assert program.benign_works(run.result)


def test_extension_registry():
    assert any(isinstance(program, SmbServer)
               for program in extension_programs())
