"""Fine-grained attack mechanics of the vulnerable workloads.

The Table II sweep (test_vulnerable.py) checks outcomes; these tests pin
*how* each attack works — heap-layout facts the simulations rely on —
so a refactor of the allocator or workloads that silently breaks an
exploitation precondition fails loudly here rather than making Table II
vacuously pass.
"""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import (
    BcCalculator,
    GhostXpsRenderer,
    HeartbleedService,
    LibmingParser,
    OptiPngOptimizer,
    TiffToPdf,
    WavPackDecoder,
)
from repro.workloads.vulnerable.heartbleed import (
    REQUEST_BUFFER_SIZE,
    SESSION_SECRET,
)
from repro.workloads.vulnerable.ghostxps import FONT_CACHE_SECRET
from repro.workloads.vulnerable.optipng import (
    HIJACKED_HANDLER,
    LEGIT_HANDLER,
)
from repro.workloads.vulnerable.wavpack import EVIL_MASK, LEGIT_MASK
from repro.workloads.vulnerable.bc import EXPECTED_ACCUMULATOR


class TestHeartbleedMechanics:
    def test_request_buffer_reuses_session_memory(self):
        """The leak requires the allocator to hand the heartbeat buffer
        the memory the freed session buffer occupied."""
        program = HeartbleedService()
        system = HeapTherapy(program)
        native = system.run_native(HeartbleedService.attack_input())
        assert SESSION_SECRET in native.result.response

    def test_leak_length_matches_claimed(self):
        program = HeartbleedService()
        system = HeapTherapy(program)
        attack = HeartbleedService.attack_input()
        native = system.run_native(attack)
        assert len(native.result.response) == 3 + attack.claimed_length

    def test_uninit_only_variant_stays_inside_buffer(self):
        request = HeartbleedService.uninit_only_input()
        assert request.claimed_length < REQUEST_BUFFER_SIZE

    def test_benign_echo_is_exact(self):
        program = HeartbleedService()
        system = HeapTherapy(program)
        benign = HeartbleedService.benign_input()
        native = system.run_native(benign)
        body = native.result.response[3:]
        assert body[:len(benign.payload)] == benign.payload


class TestUafMechanics:
    def test_optipng_attacker_data_occupies_freed_descriptor(self):
        program = OptiPngOptimizer()
        system = HeapTherapy(program)
        native = system.run_native(OptiPngOptimizer.attack_input())
        assert native.result.facts["dispatched_handler"] \
            == HIJACKED_HANDLER

    def test_optipng_benign_path_keeps_legit_handler(self):
        program = OptiPngOptimizer()
        system = HeapTherapy(program)
        native = system.run_native(OptiPngOptimizer.benign_input())
        assert native.result.facts["dispatched_handler"] == LEGIT_HANDLER

    def test_wavpack_mask_swapped_by_reuse(self):
        program = WavPackDecoder()
        system = HeapTherapy(program)
        native = system.run_native(WavPackDecoder.attack_input())
        assert native.result.facts["channel_mask"] == EVIL_MASK
        benign = system.run_native(WavPackDecoder.benign_input())
        assert benign.result.facts["channel_mask"] == LEGIT_MASK

    def test_deferred_free_breaks_reuse_not_access(self):
        """The online UAF defense is mitigation-by-deferral: the stale
        read still happens, it just sees the original data."""
        program = OptiPngOptimizer()
        system = HeapTherapy(program)
        generation = system.generate_patches(
            OptiPngOptimizer.attack_input())
        run = system.run_defended(generation.patches,
                                  OptiPngOptimizer.attack_input())
        assert run.completed  # no fault: access allowed
        assert run.result.facts["dispatched_handler"] == LEGIT_HANDLER


class TestOverflowMechanics:
    def test_bc_marker_takes_a_slot_value(self):
        """The runaway loop writes slot indices; the clobbered marker
        must hold one of them (not arbitrary corruption)."""
        program = BcCalculator()
        system = HeapTherapy(program)
        native = system.run_native(BcCalculator.attack_input())
        marker = native.result.facts["accumulator_marker"]
        assert marker != EXPECTED_ACCUMULATOR
        assert marker in range(1, BcCalculator.attack_input()
                               .variable_count + 1)

    def test_bc_sum_still_correct_despite_corruption(self):
        program = BcCalculator()
        system = HeapTherapy(program)
        native = system.run_native(BcCalculator.attack_input())
        assert native.result.facts["sum"] \
            == BcCalculator.attack_input().expected_sum

    def test_tiff_xref_clobbered_with_sample_bytes(self):
        program = TiffToPdf()
        system = HeapTherapy(program)
        native = system.run_native(TiffToPdf.attack_input())
        clobbered = native.result.facts["xref_magic"]
        # Written records are repeated 0x40..0x5F bytes.
        low = clobbered & 0xFF
        assert 0x40 <= low < 0x60

    def test_libming_realloc_origin(self):
        """libming's patch must be keyed on the realloc entry point."""
        program = LibmingParser()
        system = HeapTherapy(program)
        generation = system.generate_patches(LibmingParser.attack_input())
        assert any(patch.fun == "realloc" for patch in generation.patches)

    def test_wavpack_patch_is_memalign_keyed(self):
        program = WavPackDecoder()
        system = HeapTherapy(program)
        generation = system.generate_patches(WavPackDecoder.attack_input())
        assert any(patch.fun == "memalign" for patch in generation.patches)


class TestUninitMechanics:
    def test_ghostxps_leak_contains_font_secret(self):
        program = GhostXpsRenderer()
        system = HeapTherapy(program)
        native = system.run_native(GhostXpsRenderer.attack_input())
        assert FONT_CACHE_SECRET in native.result.response

    def test_ghostxps_defense_leaks_only_zeros(self):
        program = GhostXpsRenderer()
        system = HeapTherapy(program)
        generation = system.generate_patches(
            GhostXpsRenderer.attack_input())
        run = system.run_defended(generation.patches,
                                  GhostXpsRenderer.attack_input())
        assert run.completed
        shipped = len(GhostXpsRenderer.attack_input().glyph_data)
        assert all(byte == 0 for byte in run.result.response[shipped:])

    def test_ghostxps_patch_type_is_uninit_only(self):
        program = GhostXpsRenderer()
        system = HeapTherapy(program)
        generation = system.generate_patches(
            GhostXpsRenderer.attack_input())
        combined = VulnType.NONE
        for patch in generation.patches:
            combined |= patch.vuln
        assert combined == VulnType.UNINIT_READ
