"""Table II effectiveness: every workload, both directions.

For each of the 7 CVE-style programs and the 23 SAMATE cases:

1. the attack input must succeed against the native program,
2. one offline replay must produce at least one patch of the right type,
3. the defended re-run must defeat the attack (blocked or neutralized),
4. the benign input must still work under the same patches.
"""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.vulntypes import VulnType
from repro.workloads.vulnerable import (
    BcCalculator,
    GhostXpsRenderer,
    HeartbleedService,
    LibmingParser,
    OptiPngOptimizer,
    TiffToPdf,
    WavPackDecoder,
    all_samate_cases,
)

CVE_PROGRAMS = [
    (HeartbleedService, VulnType.UNINIT_READ | VulnType.OVERFLOW),
    (BcCalculator, VulnType.OVERFLOW),
    (GhostXpsRenderer, VulnType.UNINIT_READ),
    (OptiPngOptimizer, VulnType.USE_AFTER_FREE),
    (TiffToPdf, VulnType.OVERFLOW),
    (WavPackDecoder, VulnType.USE_AFTER_FREE),
    (LibmingParser, VulnType.OVERFLOW),
]


def full_cycle(program):
    system = HeapTherapy(program)
    native = system.run_native(program.attack_input())
    generation = system.generate_patches(program.attack_input())
    defended = system.run_defended(generation.patches,
                                   program.attack_input())
    benign = system.run_defended(generation.patches,
                                 program.benign_input())
    return native, generation, defended, benign


@pytest.mark.parametrize(
    "program_cls,expected", CVE_PROGRAMS,
    ids=[cls.name for cls, _ in CVE_PROGRAMS])
class TestCvePrograms:
    def test_full_cycle(self, program_cls, expected):
        program = program_cls()
        native, generation, defended, benign = full_cycle(program)

        assert program.attack_succeeded(native.result), \
            "attack must succeed natively"
        assert generation.detected, "offline analysis must detect"
        combined = VulnType.NONE
        for patch in generation.patches:
            combined |= patch.vuln
        assert combined & expected == expected, \
            f"patch type(s) {combined.describe()} must cover " \
            f"{expected.describe()}"

        outcome = None if defended.blocked else defended.result
        assert not program.attack_succeeded(outcome), \
            "defense must defeat the attack"
        assert not benign.blocked
        assert program.benign_works(benign.result), \
            "benign input must keep working"


@pytest.mark.parametrize("case", all_samate_cases(),
                         ids=lambda case: case.name)
def test_samate_case(case):
    native, generation, defended, benign = full_cycle(case)

    assert case.attack_succeeded(native.result)
    assert generation.detected
    combined = VulnType.NONE
    for patch in generation.patches:
        combined |= patch.vuln
    assert combined & case.spec.kind, \
        f"expected a {case.spec.kind.describe()} patch, got " \
        f"{combined.describe()}"

    outcome = None if defended.blocked else defended.result
    assert not case.attack_succeeded(outcome)
    assert not benign.blocked
    assert case.benign_works(benign.result)


def test_samate_suite_is_23_cases():
    assert len(all_samate_cases()) == 23


def test_samate_suite_covers_all_types_and_entry_points():
    cases = all_samate_cases()
    kinds = {case.spec.kind for case in cases}
    assert kinds == {VulnType.OVERFLOW, VulnType.USE_AFTER_FREE,
                     VulnType.UNINIT_READ}
    funs = {case.spec.alloc_fun for case in cases}
    assert funs == {"malloc", "calloc", "memalign", "realloc"}
    depths = {case.spec.wrapper_depth for case in cases}
    assert depths == {0, 1, 2}


def test_patch_from_one_program_does_not_disturb_another():
    """Patches are context-keyed: applying Heartbleed's patches to bc's
    benign run must change nothing."""
    heartbleed = HeartbleedService()
    hb_patches = HeapTherapy(heartbleed).generate_patches(
        HeartbleedService.attack_input()).patches
    bc = BcCalculator()
    system = HeapTherapy(bc)
    run = system.run_defended(hb_patches, BcCalculator.benign_input())
    assert run.completed
    assert bc.benign_works(run.result)
