"""Configuration matrix: the pipeline under every strategy × scheme.

The heartbleed matrix lives in tests/core/test_pipeline.py; this sweeps
a representative slice of the SAMATE suite (one case per vulnerability
class and wrapper depth) across all strategies and both precise/hashing
schemes, pinning that the system's effectiveness is configuration-
independent — the efficiency knobs must never change outcomes.
"""

import pytest

from repro.ccencoding import Strategy
from repro.core.pipeline import HeapTherapy
from repro.workloads.vulnerable import all_samate_cases

# One overflow (depth 1), one UAF (depth 2), one uninit (depth 0).
CASE_INDICES = (1, 10, 16)
CASES = [all_samate_cases()[i] for i in CASE_INDICES]


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("scheme", ["pcc", "pcce"])
@pytest.mark.parametrize("case_index", CASE_INDICES)
def test_outcomes_configuration_independent(case_index, scheme, strategy):
    case = all_samate_cases()[case_index]
    system = HeapTherapy(case, strategy=strategy, scheme=scheme)

    native = system.run_native(case.attack_input())
    assert case.attack_succeeded(native.result)

    generation = system.generate_patches(case.attack_input())
    assert generation.detected

    defended = system.run_defended(generation.patches,
                                   case.attack_input())
    outcome = None if defended.blocked else defended.result
    assert not case.attack_succeeded(outcome)

    benign = system.run_defended(generation.patches,
                                 case.benign_input())
    assert not benign.blocked
    assert case.benign_works(benign.result)


@pytest.mark.parametrize("case_index", CASE_INDICES)
def test_patch_ccids_differ_by_strategy_but_not_meaning(case_index):
    """Different strategies yield different CCID values for the same
    vulnerable context — but each strategy's patch matches under its own
    deployment, which is all that matters (config files are tied to the
    instrumented binary)."""
    case = all_samate_cases()[case_index]
    ccids = {}
    for strategy in (Strategy.FCS, Strategy.INCREMENTAL):
        system = HeapTherapy(case, strategy=strategy)
        generation = system.generate_patches(case.attack_input())
        assert generation.detected
        ccids[strategy] = {patch.ccid for patch in generation.patches}
    # Not required to differ in every graph, but each must defend:
    for strategy in (Strategy.FCS, Strategy.INCREMENTAL):
        system = HeapTherapy(case, strategy=strategy)
        generation = system.generate_patches(case.attack_input())
        run = system.run_defended(generation.patches, case.attack_input())
        outcome = None if run.blocked else run.result
        assert not case.attack_succeeded(outcome)
