"""Registry protocol: convergence, signatures, replay protection.

The fleet's safety case rests on two properties pinned down here:

* **Convergence** — registry state is a pure function of the *set* of
  patches ever submitted.  Hypothesis drives arbitrary permutations and
  partitions of arbitrary patch groups into independent replicas and
  asserts byte-identical state (version, content hash, canonical text,
  signature) — the same byte-level criterion the serving engine's
  determinism contract uses.
* **Rejection** — a bit-flipped table, a wrong-key signature and a
  replayed stale snapshot each raise their precise typed error, and a
  subscriber's applied version never moves on a rejected snapshot.
"""

import pytest

from repro.fleet.registry import (
    ContentMismatch,
    PatchRegistry,
    RegistryError,
    SignatureMismatch,
    SignedTable,
    StaleVersion,
    Subscriber,
    content_hash,
    sign_table,
    table_height,
)
from repro.patch.model import HeapPatch
from repro.vulntypes import VulnType

KEY = b"test-fleet-key"

P1 = HeapPatch("malloc", 3, VulnType.OVERFLOW)
P2 = HeapPatch("malloc", 3, VulnType.UNINIT_READ, (("quota", "4"),))
P3 = HeapPatch("calloc", 7, VulnType.USE_AFTER_FREE)


def state_tuple(registry):
    state = registry.state
    return (state.version, state.content_hash, state.config_text,
            state.signature)


class TestHeightVersion:
    def test_empty_table_is_version_zero(self):
        assert PatchRegistry(KEY).version == 0
        assert table_height([]) == 0

    def test_height_counts_mask_bits_and_params(self):
        assert table_height([P1]) == 1
        assert table_height([P2]) == 2  # one mask bit + one param
        assert table_height([P1, P2, P3]) == table_height([P1]) + \
            table_height([P2]) + table_height([P3])

    def test_version_grows_monotonically(self):
        registry = PatchRegistry(KEY)
        seen = [registry.version]
        for group in ([P1], [P1], [P2], [P3], [P1, P2]):
            registry.submit(group)
            seen.append(registry.version)
        assert seen == sorted(seen)

    def test_idempotent_resubmit_is_a_noop(self):
        registry = PatchRegistry(KEY)
        first = registry.submit([P1, P2])
        again = registry.submit([P2, P1])
        assert again is first
        assert len(registry.history) == 2  # v0 plus one publish

    def test_strict_increase_exactly_on_content_change(self):
        registry = PatchRegistry(KEY)
        v1 = registry.submit([P1]).version
        v2 = registry.submit([P1]).version  # unchanged content
        v3 = registry.submit([P2]).version  # widened key
        assert v1 == v2 < v3


class TestSignatures:
    def test_honest_snapshot_verifies(self):
        registry = PatchRegistry(KEY)
        snapshot = registry.submit([P1, P2])
        snapshot.verify(KEY)  # does not raise

    def test_bitflip_in_table_bytes_is_content_mismatch(self):
        snapshot = PatchRegistry(KEY).submit([P1])
        text = snapshot.config_text
        flipped = text[:-1] + chr(ord(text[-1]) ^ 0x01)
        tampered = SignedTable(snapshot.version, snapshot.content_hash,
                               flipped, snapshot.signature)
        with pytest.raises(ContentMismatch):
            tampered.verify(KEY)

    def test_bitflip_with_recomputed_hash_is_signature_mismatch(self):
        """An attacker who fixes up the content address still cannot
        forge the HMAC."""
        snapshot = PatchRegistry(KEY).submit([P1])
        flipped = snapshot.config_text + "# note\n"
        tampered = SignedTable(snapshot.version, content_hash(flipped),
                               flipped, snapshot.signature)
        with pytest.raises(SignatureMismatch):
            tampered.verify(KEY)

    def test_wrong_key_is_signature_mismatch(self):
        snapshot = PatchRegistry(KEY).submit([P1])
        forged = SignedTable(
            snapshot.version, snapshot.content_hash,
            snapshot.config_text,
            sign_table(b"other-key", snapshot.version,
                       snapshot.config_text))
        with pytest.raises(SignatureMismatch):
            forged.verify(KEY)

    def test_version_is_signed(self):
        """Bumping the version without re-signing breaks the MAC, so a
        forged 'newer' snapshot cannot defeat replay protection."""
        snapshot = PatchRegistry(KEY).submit([P1])
        bumped = SignedTable(snapshot.version + 10,
                             snapshot.content_hash,
                             snapshot.config_text, snapshot.signature)
        with pytest.raises(SignatureMismatch):
            bumped.verify(KEY)

    def test_empty_key_rejected(self):
        with pytest.raises(RegistryError):
            PatchRegistry(b"")


class TestSubscriber:
    def test_accept_returns_frozen_table_and_advances(self):
        registry = PatchRegistry(KEY)
        snapshot = registry.submit([P1, P2])
        subscriber = Subscriber(KEY)
        table = subscriber.accept(snapshot)
        assert table.frozen
        assert table.serialize() == snapshot.config_text
        assert subscriber.applied_version == snapshot.version

    def test_replayed_snapshot_is_stale(self):
        registry = PatchRegistry(KEY)
        old = registry.submit([P1])
        new = registry.submit([P2, P3])
        subscriber = Subscriber(KEY)
        subscriber.accept(new)
        with pytest.raises(StaleVersion):
            subscriber.accept(old)
        with pytest.raises(StaleVersion):
            subscriber.accept(new)  # exactly-once per content change
        assert subscriber.applied_version == new.version

    def test_rejected_snapshot_never_advances_version(self):
        registry = PatchRegistry(KEY)
        snapshot = registry.submit([P1])
        subscriber = Subscriber(KEY)
        with pytest.raises(SignatureMismatch):
            subscriber.accept(SignedTable(
                snapshot.version, snapshot.content_hash,
                snapshot.config_text, "00" * 32))
        assert subscriber.applied_version == 0


class TestWireFormat:
    def test_dumps_loads_roundtrip(self):
        snapshot = PatchRegistry(KEY).submit([P1, P2, P3])
        again = SignedTable.loads(snapshot.dumps())
        assert again == snapshot
        again.verify(KEY)

    def test_unknown_schema_rejected(self):
        doc = PatchRegistry(KEY).submit([P1]).to_json()
        doc["schema"] = "repro/fleet-snapshot/v999"
        with pytest.raises(RegistryError):
            SignedTable.from_json(doc)

    def test_missing_field_rejected(self):
        doc = PatchRegistry(KEY).submit([P1]).to_json()
        del doc["signature"]
        with pytest.raises(RegistryError):
            SignedTable.from_json(doc)


hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.allocator.base import ALLOCATION_FUNCTIONS  # noqa: E402

#: Small key spaces force (fun, ccid) collisions, the interesting case.
_funs = st.sampled_from(ALLOCATION_FUNCTIONS[:4])
_ccids = st.integers(min_value=0, max_value=3)
_masks = st.integers(min_value=1, max_value=7).map(VulnType)
_params = st.lists(
    st.tuples(st.sampled_from(["quota", "scope", "ttl"]),
              st.sampled_from(["1", "2", "4096"])),
    max_size=2).map(tuple)

_patches = st.builds(HeapPatch, fun=_funs, ccid=_ccids, vuln=_masks,
                     params=_params)
_groups = st.lists(st.lists(_patches, max_size=4), max_size=4)


class TestConvergenceProperties:
    @given(groups=_groups, seed=st.randoms(use_true_random=False))
    def test_any_permutation_converges(self, groups, seed):
        """Replicas fed the same groups in different orders end up with
        byte-identical signed state."""
        shuffled = list(groups)
        seed.shuffle(shuffled)
        a, b = PatchRegistry(KEY), PatchRegistry(KEY)
        for group in groups:
            a.submit(group)
        for group in shuffled:
            b.submit(group)
        assert state_tuple(a) == state_tuple(b)

    @given(groups=_groups, split=st.integers(min_value=0, max_value=4))
    def test_any_partition_converges(self, groups, split):
        """One big submission, per-group submissions, and any two-way
        split of the groups all publish identical state."""
        flat = [patch for group in groups for patch in group]
        bulk = PatchRegistry(KEY)
        bulk.submit(flat)
        stepped = PatchRegistry(KEY)
        for group in groups:
            stepped.submit(group)
        halves = PatchRegistry(KEY)
        cut = min(split, len(groups))
        halves.submit([p for g in groups[:cut] for p in g])
        halves.submit([p for g in groups[cut:] for p in g])
        assert state_tuple(bulk) == state_tuple(stepped) \
            == state_tuple(halves)

    @given(groups=_groups)
    def test_reconcile_is_anti_entropy(self, groups):
        """Two replicas with disjoint views converge by exchanging
        snapshots — in either exchange order."""
        cut = len(groups) // 2
        a, b = PatchRegistry(KEY), PatchRegistry(KEY)
        for group in groups[:cut]:
            a.submit(group)
        for group in groups[cut:]:
            b.submit(group)
        a.reconcile(b.state)
        b.reconcile(a.state)
        assert state_tuple(a) == state_tuple(b)

    @given(groups=_groups)
    def test_versions_monotone_under_any_feed(self, groups):
        registry = PatchRegistry(KEY)
        previous = registry.version
        for group in groups:
            before = registry.state
            registry.submit(group)
            assert registry.version >= previous
            changed = registry.state.config_text != before.config_text
            assert (registry.version > previous) == changed
            previous = registry.version
