"""Fleet immunization end to end, plus the ``repro fleet`` CLI.

The loop under test: instance 0 observes attacks landing under the
empty table, the diagnosis publishes a signed table, and every
instance verifies and hot-swaps it mid-serve — attacks before the swap
leak, attacks after it fault into the guard page.  The canonical fleet
report must be byte-identical across ``jobs`` counts, and a tampered
distribution channel must exit 2 with a one-line typed error.
"""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.fleet import (
    FleetError,
    FleetOptions,
    RegistryError,
    run_fleet,
)

#: Small-but-real fleet shape: 96 benign requests in batches of 8 with
#: 4 planted attacks — two land before the mid-stream swap, two after.
OPTIONS = FleetOptions(service="nginx", instances=2, attacks=4,
                       requests=96, batch_size=8, jobs=1)


@pytest.fixture(scope="module")
def fleet():
    return run_fleet(OPTIONS)


class TestImmunization:
    def test_fleet_becomes_immune(self, fleet):
        assert fleet.immune
        assert fleet.report["fleet_immune"] is True
        assert fleet.report["immune_instances"] == OPTIONS.instances

    def test_instance_zero_observed_the_attacks(self, fleet):
        observed = fleet.report["observed"]["outcomes"]
        assert observed["leak"] == 4
        assert "blocked" not in observed

    def test_attacks_leak_before_swap_and_block_after(self, fleet):
        for inst in fleet.report["instance_reports"]:
            by_version = {}
            for version, status, count in inst["version_outcomes"]:
                by_version.setdefault(version, {})[status] = count
            old, new = min(by_version), max(by_version)
            assert old < new
            assert by_version[old].get("leak", 0) > 0
            assert by_version[new].get("blocked", 0) > 0
            # The immunity claim proper: nothing leaks under the
            # swapped-in table.
            assert by_version[new].get("leak", 0) == 0

    def test_every_batch_has_exactly_one_published_version(self, fleet):
        published = {0, fleet.snapshot.version}
        for inst in fleet.report["instance_reports"]:
            versions = inst["table_versions"]
            assert set(versions) <= published
            assert versions == sorted(versions)  # swaps never roll back
            assert inst["applied_version"] == fleet.snapshot.version

    def test_swap_latency_and_immunization_telemetry(self, fleet):
        latencies = fleet.telemetry["swap_latency"]
        assert len(latencies) == OPTIONS.instances
        assert all(latency >= 0 for latency in latencies)
        assert fleet.telemetry["immunization_seconds"] > 0
        assert fleet.telemetry["attack_wall"] > 0

    def test_report_is_timing_free(self, fleet):
        """No wall-clock quantity may leak into the canonical report."""
        text = json.dumps(fleet.report)
        for key in ("wall", "seconds", "latency"):
            assert key not in text


class TestDeterminism:
    def test_reports_byte_identical_across_jobs(self, fleet):
        parallel = run_fleet(replace(OPTIONS, jobs=2))
        assert json.dumps(parallel.report, sort_keys=True) == \
            json.dumps(fleet.report, sort_keys=True)

    def test_instances_serve_identical_streams(self, fleet):
        digests = {inst["outcomes_digest"]
                   for inst in fleet.report["instance_reports"]}
        assert len(digests) == 1


class TestValidation:
    def test_single_attack_rejected(self):
        with pytest.raises(FleetError):
            run_fleet(replace(OPTIONS, attacks=1))

    def test_mysql_has_no_attack_path(self):
        with pytest.raises(FleetError):
            run_fleet(replace(OPTIONS, service="mysql"))

    def test_zero_instances_rejected(self):
        with pytest.raises(FleetError):
            run_fleet(replace(OPTIONS, instances=0))

    @pytest.mark.parametrize("mode,error", [
        ("bitflip", "ContentMismatch"),
        ("replay", "StaleVersion"),
        ("wrong-key", "SignatureMismatch"),
    ])
    def test_tampered_channel_raises_typed_error(self, mode, error):
        with pytest.raises(RegistryError) as excinfo:
            run_fleet(replace(OPTIONS, instances=1, tamper=mode))
        assert type(excinfo.value).__name__ == error


ARGS = ["fleet", "--instances", "2", "--attacks", "4",
        "--requests", "96", "--batch-size", "8"]


class TestCli:
    def test_immune_fleet_exits_zero(self, capsys):
        assert main(ARGS) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["fleet_immune"] is True
        assert "immunized" in captured.err

    def test_json_report_byte_identical_across_jobs(self, tmp_path):
        paths = []
        for jobs in ("1", "2"):
            path = tmp_path / f"fleet-jobs{jobs}.json"
            assert main(ARGS + ["--jobs", jobs,
                                "--json", str(path)]) == 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    @pytest.mark.parametrize("mode", ["bitflip", "replay", "wrong-key"])
    def test_tamper_exits_two_without_traceback(self, mode, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--instances", "1", "--tamper", mode])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert err.strip()  # one-line typed message

    def test_usage_error_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--attacks", "1"])
        assert excinfo.value.code == 2
        assert "Traceback" not in capsys.readouterr().err
