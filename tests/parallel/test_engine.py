"""DiagnosisPool: fan-out semantics and the bit-identity guarantee."""

import random

import pytest

from repro.core.pipeline import HeapTherapy
from repro.parallel import DiagnosisPool
from repro.patch.model import HeapPatch, merge_patches, patch_sort_key
from repro.vulntypes import VulnType
from repro.workloads.corpus import (
    AttackCorpus,
    CorpusEntry,
    default_corpus,
    samate_corpus,
    table2_corpus,
)
from repro.workloads.vulnerable import HeartbleedService


class TestSerialPath:
    def test_table2_corpus_all_detected(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(table2_corpus())
        assert diagnosis.attacks == 7
        assert not diagnosis.failures()
        assert all(result.detected for result in diagnosis.results)
        assert set(diagnosis.tables) == {
            "heartbleed", "bc", "ghostxps", "optipng", "tiff", "wavpack",
            "libming"}

    def test_results_keep_corpus_order(self):
        corpus = table2_corpus()
        diagnosis = DiagnosisPool(jobs=1).diagnose(corpus)
        assert ([result.entry_id for result in diagnosis.results]
                == [entry.entry_id for entry in corpus.entries])

    def test_result_carries_cycles_and_summary(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(AttackCorpus(
            (CorpusEntry("hb", "heartbleed", "attack"),)))
        (result,) = diagnosis.results
        assert result.cycle_total() > 0
        assert result.summary.warnings > 0
        assert result.summary.candidates
        assert result.vulns & (VulnType.UNINIT_READ | VulnType.OVERFLOW)

    def test_benign_entry_is_ok_without_patches(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(AttackCorpus(
            (CorpusEntry("hb-benign", "heartbleed", "benign"),)))
        (result,) = diagnosis.results
        assert not result.expects_detection
        assert result.ok
        assert not diagnosis.failures()


class TestJobsValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            DiagnosisPool(jobs=0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            DiagnosisPool(jobs=-2)

    def test_none_means_cpu_count(self):
        assert DiagnosisPool(jobs=None).jobs >= 1


class TestBitIdentity:
    """The acceptance criterion: ``--jobs N`` output is byte-identical
    to serial, for every bench corpus."""

    @pytest.mark.parametrize("corpus_factory", [
        table2_corpus, samate_corpus, default_corpus,
    ], ids=["table2", "samate", "default"])
    def test_parallel_serializes_identically_to_serial(
            self, corpus_factory):
        corpus = corpus_factory()
        serial = DiagnosisPool(jobs=1).diagnose(corpus)
        parallel = DiagnosisPool(jobs=2).diagnose(corpus)
        assert parallel.serialize() == serial.serialize()
        for workload in serial.tables:
            assert (parallel.table_for(workload).serialize()
                    == serial.table_for(workload).serialize())

    def test_parallel_detects_everything_serial_does(self):
        corpus = default_corpus()
        serial = DiagnosisPool(jobs=1).diagnose(corpus)
        parallel = DiagnosisPool(jobs=2).diagnose(corpus)
        assert ([r.detected for r in parallel.results]
                == [r.detected for r in serial.results])
        assert not parallel.failures()


class TestMerge:
    def test_merge_is_order_independent(self):
        corpus = default_corpus()
        diagnosis = DiagnosisPool(jobs=1).diagnose(corpus)
        results = list(diagnosis.results)
        shuffled = results[:]
        random.Random(42).shuffle(shuffled)
        straight = DiagnosisPool._merge(results)
        scrambled = DiagnosisPool._merge(shuffled)
        assert set(straight) == set(scrambled)
        for workload in straight:
            assert (straight[workload].serialize()
                    == scrambled[workload].serialize())

    def test_conflict_policy_widens_the_mask(self):
        narrow = HeapPatch("malloc", 0x10, VulnType.OVERFLOW)
        other = HeapPatch("malloc", 0x10, VulnType.UNINIT_READ,
                          params=(("quota", "8"),))
        merged = merge_patches([[narrow], [other]])
        assert len(merged) == 1
        assert merged[0].vuln == VulnType.OVERFLOW | VulnType.UNINIT_READ
        assert merged[0].params == (("quota", "8"),)
        # Group order must not matter.
        assert merge_patches([[other], [narrow]]) == merged

    def test_distinct_keys_stay_distinct_and_sorted(self):
        patches = [
            HeapPatch("malloc", 0x20, VulnType.OVERFLOW),
            HeapPatch("calloc", 0x10, VulnType.UNINIT_READ),
            HeapPatch("malloc", 0x10, VulnType.USE_AFTER_FREE),
        ]
        merged = merge_patches([patches])
        assert merged == sorted(merged, key=patch_sort_key)
        assert len(merged) == 3


class TestPipelineIntegration:
    def test_generate_patches_jobs_matches_serial_replays(self):
        program = HeartbleedService()
        system = HeapTherapy(program)
        corpus = [program.attack_input(), program.attack_input()]
        diagnosis = system.generate_patches(corpus, jobs=2)
        assert diagnosis.attacks == 2
        assert not diagnosis.failures()

        serial = system.generate_patches(program.attack_input())
        merged_serial = merge_patches([serial.patches, serial.patches])
        table = diagnosis.table_for(program.name)
        assert (sorted(table.patches, key=patch_sort_key)
                == merged_serial)

    def test_generate_patches_jobs_rejects_extra_args(self):
        program = HeartbleedService()
        system = HeapTherapy(program)
        with pytest.raises(TypeError):
            system.generate_patches("a", "b", jobs=2)


class TestSchemas:
    def test_to_dict_shape(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(table2_corpus())
        payload = diagnosis.to_dict()
        assert payload["jobs"] == 1
        assert payload["entries"] == 7
        assert payload["detected"] == 7
        assert payload["failures"] == []
        assert len(payload["results"]) == 7
        assert set(payload["patch_tables"]) == set(diagnosis.tables)
        first = payload["results"][0]
        for key in ("entry", "workload", "input", "detected", "vulns",
                    "patches", "cycles", "seconds"):
            assert key in first

    def test_serialize_is_a_loadable_config(self):
        # loads() merges duplicate (fun, ccid) keys, so cross-workload
        # CCID coincidences collapse — compare against the same merge.
        from repro.patch.config import loads
        diagnosis = DiagnosisPool(jobs=1).diagnose(table2_corpus())
        loaded = sorted(loads(diagnosis.serialize()), key=patch_sort_key)
        expected = merge_patches(
            table.patches for table in diagnosis.tables.values())
        assert loaded == expected

    def test_render_mentions_every_entry(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(table2_corpus())
        text = diagnosis.render()
        for entry_id in ("heartbleed:attack", "libming:attack"):
            assert entry_id in text
        assert "DETECTED" in text
        assert "merged:" in text
