"""Pickle round-trips for everything that crosses the pool boundary.

The parallel engine ships a :class:`DiagnosisPlan` to workers and gets
:class:`DiagnosisResult` objects back; both directions go through
pickle, so every record in the chain must survive a round-trip intact
(and, being frozen dataclasses, compare equal afterwards).
"""

import pickle

import pytest

from repro.parallel import DiagnosisPool, DiagnosisResult
from repro.parallel.engine import DiagnosisPlan
from repro.patch.model import HeapPatch
from repro.shadow.report import BufferRecord, ReportSummary
from repro.vulntypes import VulnType
from repro.workloads.corpus import AttackCorpus, CorpusEntry, table2_corpus


def roundtrip(value):
    return pickle.loads(pickle.dumps(
        value, protocol=pickle.HIGHEST_PROTOCOL))


class TestRecordRoundTrips:
    def test_buffer_record(self):
        record = BufferRecord(serial=3, fun="malloc", ccid=0xDEAD,
                              address=0x1000, size=64,
                              context=(1, 2, 3))
        assert roundtrip(record) == record

    def test_heap_patch(self):
        patch = HeapPatch("calloc", 0xBEEF,
                          VulnType.OVERFLOW | VulnType.UNINIT_READ,
                          params=(("quota", "16"),))
        clone = roundtrip(patch)
        assert clone == patch
        assert clone.render() == patch.render()

    def test_report_summary(self):
        summary = ReportSummary(
            warnings=4, kinds=VulnType.USE_AFTER_FREE,
            buffers_implicated=2,
            candidates=(("malloc", 0x10, VulnType.USE_AFTER_FREE),))
        assert roundtrip(summary) == summary

    def test_corpus_entry(self):
        entry = CorpusEntry("hb:attack", "heartbleed", "attack")
        assert roundtrip(entry) == entry

    def test_diagnosis_result(self):
        summary = ReportSummary(warnings=1, kinds=VulnType.OVERFLOW,
                                buffers_implicated=1)
        result = DiagnosisResult(
            entry_id="hb:attack", workload="heartbleed",
            input_name="attack", expects_detection=True,
            patches=(HeapPatch("malloc", 0x10, VulnType.OVERFLOW),),
            vulns=VulnType.OVERFLOW, summary=summary, crashed=None,
            cycles=(("alloc", 120.0), ("encode", 30.5)), seconds=0.25)
        clone = roundtrip(result)
        assert clone == result
        assert clone.detected and clone.ok
        assert clone.cycle_total() == pytest.approx(150.5)


class TestLiveObjects:
    """The objects actually shipped in a real diagnosis pickle clean."""

    def test_built_plan_round_trips(self):
        corpus = AttackCorpus(
            (CorpusEntry("hb:attack", "heartbleed", "attack"),))
        plan = DiagnosisPool(jobs=1).build_plan(corpus)
        clone = roundtrip(plan)
        assert isinstance(clone, DiagnosisPlan)
        assert clone.entries == plan.entries
        assert [p.key for p in clone.programs] == ["heartbleed"]
        # The shipped codec must decode exactly like the original.
        assert (clone.programs[0].codec.__class__
                is plan.programs[0].codec.__class__)

    def test_real_diagnosis_results_round_trip(self):
        diagnosis = DiagnosisPool(jobs=1).diagnose(table2_corpus())
        for result in diagnosis.results:
            assert roundtrip(result) == result
