"""Pool-generated patches must be as effective as serial ones.

The paper's Table II claim, re-run through the parallel factory: the
merged per-workload tables from a ``jobs=2`` diagnosis of the full
30-attack corpus must defeat every attack online while keeping every
benign input working.
"""

import pytest

from repro.core.pipeline import HeapTherapy
from repro.parallel import DiagnosisPool
from repro.workloads.corpus import default_corpus
from repro.workloads.vulnerable import workload_registry

REGISTRY = workload_registry()
WORKLOADS = default_corpus().workloads()  # 7 Table II + 23 SAMATE


@pytest.fixture(scope="module")
def pool_diagnosis():
    """One jobs=2 diagnosis of the full corpus, shared by all cases."""
    return DiagnosisPool(jobs=2).diagnose(default_corpus())


@pytest.mark.parametrize("workload", WORKLOADS)
def test_pool_patches_defeat_attack_and_keep_benign(workload,
                                                    pool_diagnosis):
    table = pool_diagnosis.table_for(workload)
    assert len(table), f"pool produced no patches for {workload}"

    program = REGISTRY[workload]()
    # HeapTherapy defaults match DiagnosisPool defaults (incremental/pcc),
    # so the pool's CCIDs line up with this deployment's codec.
    system = HeapTherapy(program)

    defended = system.run_defended(table, program.attack_input())
    outcome = None if defended.blocked else defended.result
    assert not program.attack_succeeded(outcome), \
        f"{workload}: pool patches must defeat the attack"

    benign = system.run_defended(table, program.benign_input())
    assert not benign.blocked
    assert program.benign_works(benign.result), \
        f"{workload}: benign input must keep working under pool patches"


def test_pool_diagnosed_every_attack(pool_diagnosis):
    assert pool_diagnosis.attacks == 30
    assert not pool_diagnosis.failures()
