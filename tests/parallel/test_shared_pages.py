"""Shared-memory page backing for worker pools.

The worker initializers install a process-wide shared
:class:`~repro.machine.pagestore.PageStore`, so every page frame a
worker materializes lives in ``/dev/shm`` instead of a private
``bytearray``.  Three guarantees are tested here:

1. workers really draw frames from a *shared* arena (fork and spawn
   start methods both),
2. normal pool shutdown unlinks every arena — nothing is left behind
   in ``/dev/shm`` (multiprocessing children skip plain ``atexit``, so
   this exercises the ``multiprocessing.util.Finalize`` registration),
3. diagnosis results are byte-identical with and without shared pages
   (frame backing must never be observable).
"""

import glob
import os
from concurrent.futures import ProcessPoolExecutor

import multiprocessing
import pytest

from repro.machine.pagestore import (
    PageStore,
    get_default_store,
    install_shared_worker_store,
    uninstall_shared_worker_store,
)
from repro.parallel import DiagnosisPool
from repro.parallel.fanout import _init_fanout_worker, fanout_map
from repro.workloads.corpus import table2_corpus


def _shm_entries(prefix):
    return sorted(os.path.basename(p)
                  for p in glob.glob(f"/dev/shm/{prefix}*"))


def _worker_probe(item):
    """Runs in a pool worker: report on the installed page store and
    prove guest paging actually draws frames from it."""
    from repro.machine.memory import VirtualMemory

    store = get_default_store()
    if store is None:
        return {"installed": False}
    before = store.allocated_pages
    vm = VirtualMemory()
    address = vm.mmap(4 * 4096)
    vm.write(address, bytes([item % 256]) * 4096)
    touched = store.allocated_pages > before
    data_ok = vm.read(address, 4096) == bytes([item % 256]) * 4096
    return {
        "installed": True,
        "shared": store.shared,
        "touched": touched,
        "data_ok": data_ok,
        "segments": [block.name for block in store._shm_blocks],
        "pid": os.getpid(),
    }


def _run_pool_probe(start_method, jobs=2, items=8):
    context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context,
                             initializer=_init_fanout_worker,
                             initargs=(True,)) as executor:
        return list(executor.map(_worker_probe, range(items)))


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestWorkerArenas:
    def test_workers_use_shared_arenas_and_clean_up(self, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this host")
        results = _run_pool_probe(start_method)
        segment_names = set()
        for result in results:
            assert result["installed"]
            assert result["shared"]
            assert result["touched"]
            assert result["data_ok"]
            segment_names.update(result["segments"])
        assert segment_names  # at least one arena segment existed
        # Normal pool shutdown must have unlinked every segment.
        leftovers = [name for name in segment_names
                     if os.path.exists(f"/dev/shm/{name}")]
        assert leftovers == []
        assert _shm_entries("repro-fanout-pages") == []


class TestInProcessLifecycle:
    def test_install_is_idempotent_and_uninstall_clears(self):
        try:
            store = install_shared_worker_store("repro-test-pages")
            assert install_shared_worker_store("repro-test-pages") is store
            assert get_default_store() is store
            assert store.shared
        finally:
            uninstall_shared_worker_store()
        assert get_default_store() is None
        assert _shm_entries("repro-test-pages") == []
        # Uninstalling twice is a no-op.
        uninstall_shared_worker_store()

    def test_attached_store_sees_writes_without_copying(self):
        owner = PageStore(shared=True, name_prefix="repro-test-pages")
        try:
            slot, window, words = owner.alloc()
            window[:8] = b"ABCDEFGH"
            reader = PageStore.attach(owner.handle())
            view, view_words = reader._views_for(slot)
            assert bytes(view[:8]) == b"ABCDEFGH"
            words[0] = 0x1122334455667788
            assert view_words[0] == 0x1122334455667788
            del view, view_words, window, words
            reader.close()
            # The attached store must not have unlinked the segments.
            assert _shm_entries("repro-test-pages")
        finally:
            owner.close()
        assert _shm_entries("repro-test-pages") == []


class TestObservationEquivalence:
    def test_fanout_results_independent_of_backing(self):
        items = list(range(12))
        assert (fanout_map(_triple, items, jobs=2, shared_pages=True)
                == fanout_map(_triple, items, jobs=2)
                == fanout_map(_triple, items, jobs=1))
        assert _shm_entries("repro-fanout-pages") == []

    def test_diagnosis_identical_with_shared_pages(self):
        """`repro diagnose --jobs N --shared-pages` must serialize
        byte-identically to `--jobs 1`."""
        corpus = table2_corpus()
        serial = DiagnosisPool(jobs=1).diagnose(corpus)
        shared = DiagnosisPool(jobs=2,
                               shared_pages=True).diagnose(corpus)
        assert shared.serialize() == serial.serialize()
        assert _shm_entries("repro-diag-pages") == []


def _triple(item):
    """Module-level (picklable) worker for the fan-out smoke test; it
    pages through guest memory so shared arenas actually get traffic."""
    from repro.machine.memory import VirtualMemory

    vm = VirtualMemory()
    address = vm.mmap(4096)
    vm.write(address, item.to_bytes(8, "little"))
    return int.from_bytes(vm.read(address, 8), "little") * 3
