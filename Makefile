# HeapTherapy+ reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test bench bench-diagnosis bench-fleet bench-paper \
	bench-full examples docs-check lint clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Static checks: the repo's own program-model linter always runs; ruff
# and mypy run when installed (pip install -e .[lint]) and are skipped
# gracefully otherwise, so `make lint` works on a bare test image.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --synthesizability
	PYTHONPATH=src $(PYTHON) -m repro verify-encoding
	PYTHONPATH=src $(PYTHON) -m repro layout || [ $$? -eq 1 ]
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		echo "== ruff"; ruff check src tests benchmarks || exit 1; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		echo "== mypy"; $(PYTHON) -m mypy || exit 1; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi

# Wall-clock perf harness: writes BENCH_<suite>.json files, gating
# against every committed BENCH_*.json baseline in the repo root
# (substrate, services, layout; directory form of --baseline).
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite all \
		--baseline .

# Parallel patch-factory scaling curve: writes BENCH_diagnosis.json,
# gating against the committed baseline.  Multi-worker entries only
# gate between hosts with the same CPU count (meta.cpus); jobs=1
# throughput always gates.
bench-diagnosis:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite diagnosis \
		--out-dir benchmarks/results \
		--baseline benchmarks/results/BENCH_diagnosis.json

# Fleet immunization curve: post-swap capacity over fleet sizes
# {1,2,4,8}, with swap-latency and immunization-time extras; gates
# against the committed BENCH_fleet.json baseline.
bench-fleet:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite fleet \
		--baseline .

# Paper tables/figures microbenchmarks (pytest-benchmark timings only).
bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Full-scale run: the numbers EXPERIMENTS.md reports.
bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
