# HeapTherapy+ reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test bench bench-full examples docs-check clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Full-scale run: the numbers EXPERIMENTS.md reports.
bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
