"""End-to-end HeapTherapy+ pipeline.

``HeapTherapy`` wires the three components of Figure 1 around one program:

1. instrument once (:mod:`repro.core.instrument`) and statically
   verify the encoding's soundness before deployment
   (:mod:`repro.analysis.encverify`; policy via ``verify_encoding=``),
2. :meth:`generate_patches` — replay an attack input offline under shadow
   analysis and emit configuration-file patches,
3. :meth:`run_defended` — execute with the Online Defense Generator
   interposed, patches loaded into the frozen hash table.

A defended run ends in one of two ways: it completes (possibly with the
attack neutralized silently — zero-filled leaks, deferred reuse) or it is
*blocked* by a guard-page fault, which the pipeline reports instead of
propagating, mirroring a process crash stopping an overflow before data
corruption.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Iterable, Optional,
                    Sequence, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.encverify import EncodingCertificate
    from ..analysis.staticpatch import StaticPatchResult
    from ..parallel.result import CorpusDiagnosis

from ..allocator.libc import LibcAllocator
from ..ccencoding import Strategy
from ..defense.interpose import DEFAULT_ONLINE_QUOTA, DefendedAllocator
from ..defense.patch_table import PatchTable
from ..machine.errors import SegmentationFault
from ..patch.generator import OfflinePatchGenerator, PatchGenerationResult
from ..patch.model import HeapPatch
from ..program.cost import CycleMeter
from ..program.monitor import DirectMonitor
from ..program.process import Process
from ..program.program import Program
from .instrument import InstrumentedProgram, instrument


@dataclass
class NativeRun:
    """Outcome of an uninstrumented-defense (baseline) execution."""

    result: Any
    meter: CycleMeter
    process: Process
    allocator: Any  # the underlying Allocator used for this run


@dataclass
class DefendedRun:
    """Outcome of one execution under the online defense."""

    result: Any
    #: True when a guard page stopped the run (overflow defeated).
    blocked: bool
    #: The fault message when blocked.
    fault: Optional[str]
    meter: CycleMeter
    process: Process
    allocator: DefendedAllocator

    @property
    def completed(self) -> bool:
        """True when the program ran to completion."""
        return not self.blocked


class HeapTherapy:
    """The full system around one instrumented program."""

    def __init__(self, program: Program,
                 strategy: Strategy = Strategy.INCREMENTAL,
                 scheme: str = "pcc",
                 targets: Optional[Sequence[str]] = None,
                 quarantine_quota: int = DEFAULT_ONLINE_QUOTA,
                 allocator_factory: Optional[Callable[[], Any]] = None,
                 prune: bool = False,
                 verify_encoding: str = "warn") -> None:
        """Build the system around one instrumented program.

        Args:
            verify_encoding: encoding-soundness policy applied at
                deployment time (``repro.analysis.encverify``):
                ``"warn"`` (default) statically verifies the plan and
                warns on a definite CCID collision; ``"strict"``
                refuses to deploy any plan that cannot be certified
                (collisions *and* unverifiable recursive graphs);
                ``"off"`` skips verification.  The certificate is kept
                on :attr:`encoding_certificate`.
        """
        if verify_encoding not in ("off", "warn", "strict"):
            raise ValueError(
                f"verify_encoding must be 'off', 'warn' or 'strict', "
                f"got {verify_encoding!r}")
        self.program = program
        self.strategy = strategy
        self.scheme = scheme
        self.prune = prune
        self.instrumented: InstrumentedProgram = instrument(
            program, strategy=strategy, scheme=scheme, targets=targets,
            prune=prune)
        #: The static soundness certificate of the deployed encoding
        #: (None when ``verify_encoding="off"``).
        self.encoding_certificate: Optional["EncodingCertificate"] = None
        if verify_encoding != "off":
            from ..analysis.encverify import (EncodingSoundnessWarning,
                                              verify_codec)
            certificate = verify_codec(self.instrumented.codec,
                                       program_name=program.name)
            self.encoding_certificate = certificate
            if not certificate.certified:
                if verify_encoding == "strict":
                    from ..ccencoding.base import EncodingError
                    raise EncodingError(
                        f"refusing to deploy unverified encoding for "
                        f"{program.name!r} "
                        f"[{certificate.scheme}/{certificate.strategy}]"
                        f": " + ("; ".join(certificate.notes)
                                 if certificate.abstained else
                                 f"{len(certificate.collisions)} CCID "
                                 f"collision(s); run `repro "
                                 f"verify-encoding` for counterexamples"))
                if not certificate.abstained:
                    warnings.warn(
                        f"encoding for {program.name!r} has "
                        f"{len(certificate.collisions)} CCID "
                        f"collision(s); patches may over- or "
                        f"under-apply (see encoding_certificate)",
                        EncodingSoundnessWarning, stacklevel=2)
        self.quarantine_quota = quarantine_quota
        #: Constructs the underlying allocator per run; any
        #: :class:`~repro.allocator.base.Allocator` works (the defense is
        #: allocator-transparent — paper property 5).
        self.allocator_factory = (allocator_factory
                                  if allocator_factory is not None
                                  else LibcAllocator)

    # ------------------------------------------------------------------
    # Offline
    # ------------------------------------------------------------------

    def generate_patches(self, *attack_args: Any,
                         jobs: Optional[int] = None,
                         **attack_kwargs: Any
                         ) -> Union[PatchGenerationResult,
                                    "CorpusDiagnosis"]:
        """Replay attack input(s) offline; return patches + analysis.

        Without ``jobs`` (the default), replays one attack input and
        returns a :class:`PatchGenerationResult`.  With ``jobs=N``, the
        single positional argument is a *corpus* — an iterable of attack
        inputs — fanned out over ``N`` worker processes, returning a
        :class:`~repro.parallel.result.CorpusDiagnosis` whose merged
        table is bit-identical to a serial (``jobs=1``) run.
        """
        if jobs is not None:
            if len(attack_args) != 1 or attack_kwargs:
                raise TypeError(
                    "generate_patches(corpus, jobs=N) takes exactly one "
                    "positional argument: an iterable of attack inputs")
            return self.generate_patches_parallel(attack_args[0],
                                                  jobs=jobs)
        generator = OfflinePatchGenerator(self.program,
                                          self.instrumented.codec)
        return generator.replay(*attack_args, **attack_kwargs)

    def generate_patches_parallel(
            self, corpus: Iterable[Any],
            jobs: Optional[int] = None) -> "CorpusDiagnosis":
        """Diagnose a whole attack corpus for this program, in parallel.

        ``corpus`` is an iterable of attack inputs (each item either one
        input object or a tuple of replay arguments).  The corpus is
        fanned out over ``jobs`` worker processes (``None`` = host CPU
        count) through :class:`~repro.parallel.engine.DiagnosisPool`;
        every worker receives this system's program and *deployed codec*
        once, so patches from all workers share one CCID space.  The
        merged table is deterministic: any ``jobs`` value serializes
        bit-identical to a serial run.
        """
        from ..parallel.engine import DiagnosisPool
        from ..workloads.corpus import AttackCorpus, CorpusEntry

        key = self.program.name
        entries = []
        for index, item in enumerate(corpus):
            args = item if isinstance(item, tuple) else (item,)
            entries.append(CorpusEntry(f"{key}:input#{index}", key,
                                       input_name=None, args=args))
        pool = DiagnosisPool(jobs=jobs, strategy=self.strategy,
                             scheme=self.scheme, prune=self.prune)
        return pool.diagnose(
            AttackCorpus(tuple(entries), source=f"pipeline:{key}"),
            programs={key: (self.program, self.instrumented.codec)})

    def generate_static_patches(self) -> "StaticPatchResult":
        """Derive speculative patches statically — no attack input.

        The attack-input-free alternative to :meth:`generate_patches`:
        the abstract interpreter flags candidate vulnerable allocation
        sites and every calling context reaching them is lowered to a
        {FUN, CCID, T} patch under the deployed codec.  The resulting
        :class:`~repro.analysis.staticpatch.StaticPatchResult` feeds
        :meth:`run_defended` exactly like a replay-generated patch set.
        """
        from ..analysis.staticpatch import StaticPatchGenerator
        generator = StaticPatchGenerator(self.program,
                                         self.instrumented.codec)
        return generator.generate()

    # ------------------------------------------------------------------
    # Online
    # ------------------------------------------------------------------

    def run_native(self, *args: Any, **kwargs: Any) -> NativeRun:
        """Run without interposition (but with encoding instrumentation,
        matching the deployed binary)."""
        meter = CycleMeter()
        allocator = self.allocator_factory()
        runtime = self.instrumented.runtime(meter)
        process = Process(self.program.graph, heap=allocator,
                          context_source=runtime, meter=meter,
                          record_allocations=False)
        result = process.run(self.program, *args, **kwargs)
        return NativeRun(result, meter, process, allocator)

    def run_defended(self, patches: Union[PatchTable, Iterable[HeapPatch]],
                     *args: Any, **kwargs: Any) -> DefendedRun:
        """Run with the Online Defense Generator interposed."""
        table = (patches if isinstance(patches, PatchTable)
                 else PatchTable(patches))
        meter = CycleMeter()
        underlying = self.allocator_factory()
        runtime = self.instrumented.runtime(meter)
        defended = DefendedAllocator(
            underlying, table, context_source=runtime, meter=meter,
            quarantine_quota=self.quarantine_quota)
        monitor = DirectMonitor(underlying.memory, defended, meter)
        process = Process(self.program.graph, monitor=monitor,
                          context_source=runtime, meter=meter,
                          record_allocations=False)
        blocked = False
        fault: Optional[str] = None
        result: Any = None
        try:
            result = process.run(self.program, *args, **kwargs)
        except SegmentationFault as exc:
            blocked = True
            fault = str(exc)
        return DefendedRun(result, blocked, fault, meter, process, defended)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def patch_and_defend(
            self, attack_args: Tuple[Any, ...],
            replay_args: Optional[Tuple[Any, ...]] = None,
    ) -> Tuple[PatchGenerationResult, DefendedRun]:
        """Generate patches from an attack, then re-run it defended."""
        generation = self.generate_patches(*attack_args)
        if replay_args is None:
            replay_args = attack_args
        defended = self.run_defended(generation.patches, *replay_args)
        return generation, defended
