"""Allocation-context profiling.

The paper's Figure 8 methodology starts from a profiling run: "for each
benchmark program, we rank all of its allocation-time CCIDs according to
their frequencies during the profiling execution".  This module makes
that a first-class tool:

* :class:`AllocationProfile` — per-context statistics (counts, bytes,
  size distribution) aggregated over one or more profiling runs;
* frequency ranking with median/hottest/coldest selection (the paper's
  hypothesized-vulnerable-context picker);
* a rendered report for operators deciding what a patch would cost
  *before* installing it (patch cost scales with the patched context's
  allocation rate — see the service-protection example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..patch.model import HeapPatch
from ..program.process import Process
from ..vulntypes import VulnType


@dataclass
class ContextStats:
    """Aggregate statistics for one (fun, ccid) allocation context."""

    fun: str
    ccid: int
    allocations: int = 0
    total_bytes: int = 0
    min_size: Optional[int] = None
    max_size: Optional[int] = None
    #: One example true context (site ids), when event recording was on.
    example_context: Tuple[int, ...] = ()

    def record(self, size: int,
               context: Tuple[int, ...] = ()) -> None:
        """Fold one allocation of ``size`` bytes into the stats."""
        self.allocations += 1
        self.total_bytes += size
        self.min_size = size if self.min_size is None \
            else min(self.min_size, size)
        self.max_size = size if self.max_size is None \
            else max(self.max_size, size)
        if context and not self.example_context:
            self.example_context = context

    @property
    def mean_size(self) -> float:
        """Average request size in this context."""
        if not self.allocations:
            return 0.0
        return self.total_bytes / self.allocations

    @property
    def key(self) -> Tuple[str, int]:
        """The (fun, ccid) identity, as patches key it."""
        return (self.fun, self.ccid)


class AllocationProfile:
    """Context-frequency profile aggregated over profiling runs."""

    def __init__(self) -> None:
        self._contexts: Dict[Tuple[str, int], ContextStats] = {}
        self.runs_ingested = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, process: Process) -> None:
        """Fold one finished process's allocations into the profile.

        Uses the detailed event log when available (sizes, contexts),
        falling back to the counter-only ``alloc_profile``.
        """
        self.runs_ingested += 1
        if process.allocations:
            for event in process.allocations:
                stats = self._stats_for(event.fun, event.ccid)
                stats.record(event.size, event.context)
            return
        for (fun, ccid), count in process.alloc_profile.items():
            stats = self._stats_for(fun, ccid)
            for _ in range(count):
                stats.record(0)

    def _stats_for(self, fun: str, ccid: int) -> ContextStats:
        key = (fun, ccid)
        stats = self._contexts.get(key)
        if stats is None:
            stats = ContextStats(fun, ccid)
            self._contexts[key] = stats
        return stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._contexts)

    @property
    def total_allocations(self) -> int:
        """Allocations across every context."""
        return sum(stats.allocations for stats in self._contexts.values())

    def ranked(self) -> List[ContextStats]:
        """Contexts by descending frequency (ties broken by key)."""
        return sorted(self._contexts.values(),
                      key=lambda stats: (-stats.allocations, stats.key))

    def context(self, fun: str, ccid: int) -> Optional[ContextStats]:
        """Stats for one context, or ``None`` if never observed."""
        return self._contexts.get((fun, ccid))

    def select(self, which: str = "median", count: int = 1
               ) -> List[ContextStats]:
        """Pick contexts by heat: ``"hottest"``, ``"median"`` (the
        Figure 8 methodology) or ``"coldest"``."""
        ranked = self.ranked()
        if not ranked:
            return []
        if which == "hottest":
            ordering = list(range(len(ranked)))
        elif which == "coldest":
            ordering = list(range(len(ranked) - 1, -1, -1))
        elif which == "median":
            middle = len(ranked) // 2
            ordering = sorted(range(len(ranked)),
                              key=lambda i: (abs(i - middle), i))
        else:
            raise ValueError(f"unknown selector {which!r}")
        return [ranked[i] for i in ordering[:count]]

    def hypothesize_patches(self, vuln: VulnType = VulnType.OVERFLOW,
                            which: str = "median",
                            count: int = 1) -> List[HeapPatch]:
        """Patches for the selected contexts (Figure 8's setup)."""
        return [HeapPatch(stats.fun, stats.ccid, vuln)
                for stats in self.select(which, count)]

    def estimated_patch_cost(self, fun: str, ccid: int,
                             cycles_per_buffer: float) -> float:
        """Rough enforcement cycles a patch on this context would add,
        given the per-buffer cost of the intended defense."""
        stats = self.context(fun, ccid)
        if stats is None:
            return 0.0
        return stats.allocations * cycles_per_buffer

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, ranked hottest first."""
        return {
            "runs": self.runs_ingested,
            "total_allocations": self.total_allocations,
            "contexts": [
                {
                    "fun": stats.fun,
                    "ccid": stats.ccid,
                    "allocations": stats.allocations,
                    "total_bytes": stats.total_bytes,
                    "mean_size": stats.mean_size,
                    "min_size": stats.min_size,
                    "max_size": stats.max_size,
                }
                for stats in self.ranked()
            ],
        }

    def render(self, limit: int = 10) -> str:
        """Human-readable ranking table (top ``limit`` contexts)."""
        total = max(self.total_allocations, 1)
        lines = [
            f"allocation profile: {len(self)} context(s), "
            f"{self.total_allocations} allocation(s), "
            f"{self.runs_ingested} run(s)",
            f"{'rank':>4}  {'fun':<10} {'ccid':<18} {'allocs':>8} "
            f"{'share':>7} {'mean size':>10}",
        ]
        for rank, stats in enumerate(self.ranked()[:limit], start=1):
            lines.append(
                f"{rank:>4}  {stats.fun:<10} 0x{stats.ccid:<16x} "
                f"{stats.allocations:>8} "
                f"{stats.allocations / total:>6.1%} "
                f"{stats.mean_size:>10.1f}")
        remaining = len(self) - limit
        if remaining > 0:
            lines.append(f"  ... and {remaining} more context(s)")
        return "\n".join(lines)
