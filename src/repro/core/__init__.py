"""The HeapTherapy+ core: instrumentation tool and end-to-end pipeline."""

from .explain import ExplainedContext, PatchExplanation, explain_patch
from .instrument import (
    InstrumentedProgram,
    VerificationResult,
    instrument,
    verify_instrumentation,
)
from .profiling import AllocationProfile, ContextStats
from .pipeline import DefendedRun, HeapTherapy, NativeRun

__all__ = [
    "AllocationProfile",
    "ContextStats",
    "DefendedRun",
    "ExplainedContext",
    "HeapTherapy",
    "InstrumentedProgram",
    "NativeRun",
    "PatchExplanation",
    "VerificationResult",
    "explain_patch",
    "instrument",
    "verify_instrumentation",
]
