"""Patch explanation: turn a ``{FUN, CCID, T}`` tuple back into code.

A patch identifies a vulnerable allocation context only by its encoded
CCID.  For auditing ("what exactly did we just enhance?") this module
recovers the human-readable calling context two ways:

* **decoding** — exact, when the deployed codec supports it (PCCE /
  DeltaPath; PCC is a hash and cannot be reversed);
* **profiling match** — run the program on a profiling input, record
  every allocation's true context, and report the ones whose runtime
  CCID equals the patch's.  This works for any scheme (it is how an
  operator with only the PCC-based production config would audit a
  patch) and also surfaces hash collisions: two different contexts
  matching one CCID is precisely the paper's "spurious enhancement"
  case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..allocator.libc import LibcAllocator
from ..ccencoding.base import Codec, EncodingError
from ..ccencoding.runtime import EncodingRuntime
from ..patch.model import HeapPatch
from ..program.callgraph import CallGraph, CallSite
from ..program.process import Process
from ..program.program import Program


@dataclass(frozen=True)
class ExplainedContext:
    """One calling context matching a patch."""

    #: Function names from the entry down to the allocation call.
    chain: Tuple[str, ...]
    #: The matched call sites.
    sites: Tuple[CallSite, ...]
    #: How this context was recovered: "decoded" or "profiled".
    how: str
    #: Allocations observed in this context during profiling (0 when
    #: recovered purely by decoding).
    observed_allocations: int = 0

    def render(self) -> str:
        """The context as a readable call chain."""
        return " -> ".join(self.chain)


@dataclass
class PatchExplanation:
    """Everything known about one patch's context."""

    patch: HeapPatch
    contexts: List[ExplainedContext]

    @property
    def resolved(self) -> bool:
        """True when at least one concrete context was recovered."""
        return bool(self.contexts)

    @property
    def ambiguous(self) -> bool:
        """True when several contexts share the CCID (hash collision —
        harmless but worth knowing: they all get enhanced)."""
        return len(self.contexts) > 1

    def render(self) -> str:
        """Multi-line human-readable explanation."""
        lines = [f"patch {self.patch.render()}"]
        if not self.contexts:
            lines.append("  (no matching allocation context found)")
        for context in self.contexts:
            suffix = (f"  [{context.observed_allocations} allocation(s) "
                      f"profiled]" if context.observed_allocations else "")
            lines.append(f"  via {context.how}: {context.render()}{suffix}")
        if self.ambiguous:
            lines.append("  note: multiple contexts share this CCID "
                         "(PCC hash collision); all are enhanced")
        return "\n".join(lines)


def _chain_for(graph: CallGraph,
               sites: Tuple[CallSite, ...]) -> Tuple[str, ...]:
    if not sites:
        return (graph.entry,)
    return (sites[0].caller,) + tuple(site.callee for site in sites)


def explain_patch(program: Program, codec: Codec, patch: HeapPatch,
                  profile_args: Optional[Tuple[Any, ...]] = None,
                  ) -> PatchExplanation:
    """Recover the calling context(s) behind ``patch``.

    Args:
        program: the patched program (for its call graph and, when
            profiling, its code).
        codec: the deployed codec (same plan as the production config).
        patch: the patch to explain.
        profile_args: when given, the program is additionally executed
            with these arguments and observed allocation contexts are
            matched against the CCID.
    """
    graph = program.graph
    contexts: List[ExplainedContext] = []

    if codec.supports_decoding:
        try:
            sites = codec.decode(patch.fun, patch.ccid)
            contexts.append(ExplainedContext(
                chain=_chain_for(graph, sites),
                sites=sites,
                how="decoded",
            ))
        except EncodingError:
            pass

    if profile_args is not None:
        runtime = EncodingRuntime(codec)
        process = Process(graph, heap=LibcAllocator(),
                          context_source=runtime)
        process.run(program, *profile_args)
        matched = {}
        for event in process.allocations:
            if event.ccid == patch.ccid and event.fun == patch.fun:
                matched.setdefault(event.context, 0)
                matched[event.context] += 1
        known = {tuple(site.site_id for site in ctx.sites)
                 for ctx in contexts}
        for context_ids, count in sorted(matched.items()):
            sites = tuple(graph.site_by_id(sid) for sid in context_ids)
            if context_ids in known:
                # Upgrade the decoded entry with the observed count.
                contexts = [
                    ExplainedContext(c.chain, c.sites, c.how, count)
                    if tuple(s.site_id for s in c.sites) == context_ids
                    else c
                    for c in contexts
                ]
                continue
            contexts.append(ExplainedContext(
                chain=_chain_for(graph, sites),
                sites=sites,
                how="profiled",
                observed_allocations=count,
            ))

    return PatchExplanation(patch=patch, contexts=contexts)
