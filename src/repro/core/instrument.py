"""The Program Instrumentation Tool (paper Figure 1, component 1).

A one-time step per program: call-graph analysis picks the call sites to
instrument for the chosen targeting strategy, and the selected encoding
scheme assigns their constants.  The same instrumented artifact — here an
:class:`InstrumentedProgram` bundling plan and codec — is used by both the
offline patch generator and the online system, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ccencoding import SCHEMES, Codec, InstrumentationPlan, Strategy
from ..ccencoding.targeting import select_sites
from ..ccencoding.runtime import EncodingRuntime
from ..program.cost import CycleMeter
from ..program.program import Program


@dataclass(frozen=True)
class InstrumentedProgram:
    """A program plus its (one-time) instrumentation artifacts."""

    program: Program
    plan: InstrumentationPlan
    codec: Codec

    def runtime(self, meter: Optional[CycleMeter] = None) -> EncodingRuntime:
        """A fresh per-process encoding runtime."""
        return EncodingRuntime(self.codec, meter)

    def verify(self, context_limit: int = 100_000) -> "VerificationResult":
        """Automatically verify the instrumentation (paper §VII)."""
        return verify_instrumentation(self.plan, self.codec, context_limit)


@dataclass
class VerificationResult:
    """Outcome of the automatic instrumentation-correctness check.

    The paper argues the instrumentation is simple enough that "its
    correctness can be verified automatically" (§VII); this is that
    verifier.  Checks performed:

    1. **well-formedness** — every instrumented site id exists in the
       graph, and the site set matches re-running the strategy's
       selection (the plan was not tampered with);
    2. **distinguishability** — for every target, distinct calling
       contexts produce distinct *instrumented-site subsequences* (the
       strategy-level invariant that any injective encoder inherits);
    3. **collision freedom** — under the concrete codec, distinct
       contexts of a target receive distinct CCIDs (PCC could collide
       with negligible probability; a collision is reported as a
       warning, not a failure, since it only causes spurious
       enhancement).

    Graphs with cycles skip checks 2–3 (context enumeration is
    unbounded) and record that fact.
    """

    ok: bool
    checks: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable verification transcript."""
        status = "PASS" if self.ok else "FAIL"
        lines = [f"instrumentation verification: {status}"]
        lines.extend(f"  [ok]   {check}" for check in self.checks)
        lines.extend(f"  [warn] {warning}" for warning in self.warnings)
        lines.extend(f"  [FAIL] {failure}" for failure in self.failures)
        return "\n".join(lines)


def verify_instrumentation(plan: InstrumentationPlan, codec: Codec,
                           context_limit: int = 100_000
                           ) -> VerificationResult:
    """Run the §VII automatic correctness check on one plan + codec."""
    result = VerificationResult(ok=True)
    graph = plan.graph

    # 1. Well-formedness.
    known_ids = {site.site_id for site in graph.sites}
    stray = plan.sites - known_ids
    if stray:
        result.failures.append(
            f"plan references unknown site ids {sorted(stray)}")
    expected = select_sites(graph, plan.targets, plan.strategy,
                            prune=plan.pruned)
    label = plan.strategy.value + ("+prune" if plan.pruned else "")
    if expected != plan.sites:
        result.failures.append(
            f"plan site set diverges from {label} "
            f"selection ({len(plan.sites)} vs {len(expected)} sites)")
    else:
        result.checks.append(
            f"site set matches {label} selection "
            f"({len(plan.sites)} of {graph.site_count} sites)")

    # 2 & 3 need context enumeration — acyclic graphs only.
    if not graph.is_acyclic():
        result.warnings.append(
            "call graph is recursive: distinguishability verified "
            "structurally per strategy, not by enumeration")
        result.ok = not result.failures
        return result

    for target in plan.targets:
        if not graph.has_function(target):
            continue
        contexts = graph.enumerate_contexts(target, limit=context_limit)
        subsequences = {}
        ccids = {}
        for context in contexts:
            key: Tuple[int, ...] = tuple(
                site.site_id for site in context
                if site.site_id in plan.sites)
            if key in subsequences:
                result.failures.append(
                    f"{target}: contexts {subsequences[key]} and "
                    f"{context} share instrumented subsequence")
            subsequences[key] = context
            ccid = codec.encode_path(context)
            if ccid in ccids and ccids[ccid] != context:
                result.warnings.append(
                    f"{target}: CCID 0x{ccid:x} collides for two "
                    f"contexts (harmless: spurious enhancement only)")
            ccids[ccid] = context
        result.checks.append(
            f"{target}: {len(contexts)} context(s) distinguishable")

    result.ok = not result.failures
    return result


def instrument(program: Program,
               strategy: Strategy = Strategy.INCREMENTAL,
               scheme: str = "pcc",
               targets: Optional[Sequence[str]] = None,
               prune: bool = False) -> InstrumentedProgram:
    """Instrument ``program`` for calling-context encoding.

    Args:
        program: the program to instrument.
        strategy: targeting strategy (paper default for HeapTherapy+ would
            be any of TCS/Slim/Incremental; Incremental is the cheapest).
        scheme: encoding scheme name (``"pcc"``, ``"pcce"``,
            ``"deltapath"``); HeapTherapy+ uses PCC.
        targets: target functions; defaults to the allocation APIs present
            in the program's call graph.
        prune: apply the static heap-reachability pre-pass on top of the
            strategy selection (:mod:`repro.analysis.reachability`).
    """
    graph = program.graph
    if targets is None:
        targets = graph.allocation_targets
        if not targets:
            raise ValueError(
                f"program {program.name!r} declares no allocation sites; "
                f"pass targets= explicitly")
    plan = InstrumentationPlan.build(graph, targets, strategy, prune=prune)
    codec = SCHEMES[scheme].build(plan)
    return InstrumentedProgram(program, plan, codec)
