"""HeapTherapy+ reproduction.

A faithful Python reproduction of *HeapTherapy+: Efficient Handling of
(Almost) All Heap Vulnerabilities Using Targeted Calling-Context Encoding*
(Zeng et al., DSN 2019) on a fully simulated machine substrate: paged
virtual memory, a libc-style allocator, calling-context encoding with the
paper's targeted optimizations, Valgrind-style shadow-memory analysis,
patches-as-configuration, and the allocation-interposing online defense.

Quick start::

    from repro import HeapTherapy, Strategy
    from repro.workloads.vulnerable import HeartbleedService

    system = HeapTherapy(HeartbleedService(), strategy=Strategy.INCREMENTAL)
    generation = system.generate_patches(HeartbleedService.attack_input())
    run = system.run_defended(generation.patches,
                              HeartbleedService.attack_input())

See ``README.md`` and ``DESIGN.md`` for the architecture, and
``EXPERIMENTS.md`` for the paper-versus-measured results.
"""

from .ccencoding import Strategy
from .core import DefendedRun, HeapTherapy, NativeRun, instrument
from .patch import HeapPatch
from .vulntypes import VulnType

__version__ = "1.0.0"

__all__ = [
    "DefendedRun",
    "HeapPatch",
    "HeapTherapy",
    "NativeRun",
    "Strategy",
    "VulnType",
    "instrument",
    "__version__",
]
