"""Attack corpora: the unit of work the parallel patch factory digests.

A *corpus* is an ordered list of attack reports.  Each entry names a
bundled workload (through :func:`~repro.workloads.vulnerable.
workload_registry`) and which of its canonical inputs to replay — the
production analogue of an attack report queue fed by crash telemetry
from deployed endpoints.  Entries are tiny and pickle-friendly; the
program plan they reference is rebuilt (or shipped once) on the worker
side, never per entry.

On-disk form (``repro diagnose --corpus DIR``): a directory of
``*.json`` files.  The current schema (version
:data:`CORPUS_SCHEMA_VERSION`) wraps the entry list in a versioned
envelope — synthesized corpora are written by machines, and a version
field lets the loader reject formats it does not understand instead of
mis-parsing them::

    {"schema_version": 2,
     "entries": [{"workload": "heartbleed", "input": "attack"},
                 {"workload": "samate-07", "input": "attack",
                  "repeat": 3}]}

Legacy files holding a bare entry list (the pre-version format) load
unchanged — absence of the field *is* version 1.  Files are read in
sorted name order and entries keep file order, so a corpus directory
has one well-defined entry sequence — the determinism anchor for the
parallel/serial bit-identity guarantee.

Besides registry workloads, entries may reference the deterministic
fuzz generator by seed: ``"workload": "fuzz:1234"`` rebuilds the seed's
generated program (see :func:`repro.fuzz.generator.spec_for_seed`).
This is how synthesized attack corpora stay tiny and replayable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .vulnerable import workload_registry

#: Input names resolvable on a workload.
INPUT_NAMES = ("attack", "benign")

#: On-disk corpus format version written by :func:`save_corpus`.
#: Version 1 is the bare entry list (version-absent legacy files);
#: version 2 wraps the list in a ``schema_version`` envelope.
CORPUS_SCHEMA_VERSION = 2

#: Workload-key prefix referencing the fuzz generator by seed.
FUZZ_WORKLOAD_PREFIX = "fuzz:"


class CorpusError(ValueError):
    """Malformed corpus entry or directory."""


def fuzz_workload_key(seed: int) -> str:
    """The corpus workload key for fuzz-generator seed ``seed``."""
    return f"{FUZZ_WORKLOAD_PREFIX}{seed}"


def is_fuzz_workload(key: str) -> bool:
    """True for ``fuzz:<seed>`` workload keys."""
    return key.startswith(FUZZ_WORKLOAD_PREFIX)


def fuzz_workload_seed(key: str) -> int:
    """Parse the seed out of a ``fuzz:<seed>`` key (CorpusError if
    malformed)."""
    suffix = key[len(FUZZ_WORKLOAD_PREFIX):]
    try:
        seed = int(suffix)
    except ValueError:
        raise CorpusError(
            f"malformed fuzz workload key {key!r}: seed must be an "
            f"integer") from None
    if seed < 0:
        raise CorpusError(
            f"malformed fuzz workload key {key!r}: seed must be >= 0")
    return seed


@dataclass(frozen=True)
class CorpusEntry:
    """One attack report: a workload plus the input to replay.

    Exactly one of ``input_name`` (a canonical named input) or ``args``
    (explicit, already-built replay arguments) is used; named inputs are
    the only form the on-disk JSON format carries.
    """

    #: Unique id within the corpus (stable across processes).
    entry_id: str
    #: Registry key of the workload (see ``repro list``).
    workload: str
    #: "attack" or "benign"; ``None`` when ``args`` carries the input.
    input_name: Optional[str] = "attack"
    #: Explicit replay arguments (in-memory corpora only).
    args: Optional[Tuple[Any, ...]] = None

    @property
    def expects_detection(self) -> bool:
        """Should diagnosing this entry produce at least one patch?"""
        return self.input_name != "benign"

    def resolve_args(self, program: Any) -> Tuple[Any, ...]:
        """The concrete replay arguments for ``program``."""
        if self.args is not None:
            return self.args
        if self.input_name == "attack":
            return (program.attack_input(),)
        if self.input_name == "benign":
            return (program.benign_input(),)
        raise CorpusError(
            f"entry {self.entry_id!r}: unknown input "
            f"{self.input_name!r} (expected one of {INPUT_NAMES})")


@dataclass
class AttackCorpus:
    """An ordered attack-report batch over the bundled workloads."""

    entries: Tuple[CorpusEntry, ...] = ()
    #: Where this corpus was loaded from, if on-disk.
    source: Optional[str] = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def workloads(self) -> List[str]:
        """Distinct workload keys, in first-appearance order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.workload, None)
        return list(seen)

    def replicated(self, times: int) -> "AttackCorpus":
        """The corpus repeated ``times`` times with fresh entry ids.

        The benchmark suite uses this to scale per-measurement work
        without changing the entry mix.
        """
        if times <= 0:
            raise CorpusError("replication factor must be positive")
        entries = []
        for round_no in range(times):
            for entry in self.entries:
                entries.append(CorpusEntry(
                    f"{entry.entry_id}#r{round_no}", entry.workload,
                    entry.input_name, entry.args))
        return AttackCorpus(tuple(entries), source=self.source)


def _entries_from(workloads: Sequence[str], prefix: str) -> AttackCorpus:
    entries = tuple(
        CorpusEntry(f"{name}:attack", name, "attack")
        for name in workloads)
    return AttackCorpus(entries, source=prefix)


def table2_corpus() -> AttackCorpus:
    """Attack inputs of the 7 named Table II CVE programs."""
    return _entries_from(
        ["heartbleed", "bc", "ghostxps", "optipng", "tiff", "wavpack",
         "libming"], "builtin:table2")


def samate_corpus() -> AttackCorpus:
    """Attack inputs of the 23 SAMATE-style cases."""
    return _entries_from(
        [f"samate-{case_id:02d}" for case_id in range(1, 24)],
        "builtin:samate")


def default_corpus() -> AttackCorpus:
    """Table II + SAMATE: the full 30-attack evaluation corpus."""
    table2 = table2_corpus()
    samate = samate_corpus()
    return AttackCorpus(table2.entries + samate.entries,
                        source="builtin:default")


# ----------------------------------------------------------------------
# On-disk corpora
# ----------------------------------------------------------------------

def save_corpus(corpus: AttackCorpus, directory: Union[str, Path],
                filename: str = "corpus.json") -> Path:
    """Write ``corpus`` as one versioned JSON file inside ``directory``."""
    rows = []
    for entry in corpus.entries:
        if entry.args is not None:
            raise CorpusError(
                f"entry {entry.entry_id!r} carries in-memory args and "
                f"cannot be saved; only named inputs serialize")
        rows.append({"workload": entry.workload,
                     "input": entry.input_name})
    document = {"schema_version": CORPUS_SCHEMA_VERSION, "entries": rows}
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    out = path / filename
    out.write_text(json.dumps(document, indent=1) + "\n",
                   encoding="utf-8")
    return out


def _file_entries(file: Path, document: Any) -> List[Any]:
    """Unwrap one corpus file's entry list, whatever its version.

    A bare list is the legacy version-1 format; an object must carry a
    ``schema_version`` the loader knows and an ``entries`` list.
    """
    if isinstance(document, list):
        return document
    if isinstance(document, dict):
        if "schema_version" not in document:
            raise CorpusError(
                f"{file.name}: expected a list of entries or a "
                f"versioned corpus object with 'schema_version' and "
                f"'entries'")
        version = document["schema_version"]
        if version not in (1, CORPUS_SCHEMA_VERSION):
            raise CorpusError(
                f"{file.name}: unsupported corpus schema_version "
                f"{version!r} (this build reads 1.."
                f"{CORPUS_SCHEMA_VERSION})")
        entries = document.get("entries")
        if not isinstance(entries, list):
            raise CorpusError(
                f"{file.name}: 'entries' must be a list of entry "
                f"objects")
        return entries
    raise CorpusError(
        f"{file.name}: expected a list of entries or a versioned "
        f"corpus object")


def load_corpus(directory: Union[str, Path]) -> AttackCorpus:
    """Read every ``*.json`` file in ``directory`` into one corpus."""
    path = Path(directory)
    if not path.is_dir():
        raise CorpusError(f"corpus directory {str(path)!r} does not exist")
    files = sorted(path.glob("*.json"))
    if not files:
        raise CorpusError(f"no *.json corpus files in {str(path)!r}")
    registry = workload_registry()
    entries: List[CorpusEntry] = []
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorpusError(f"{file.name}: unreadable: {exc}") from None
        except UnicodeDecodeError as exc:
            raise CorpusError(f"{file.name}: not UTF-8: {exc}") from None
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorpusError(f"{file.name}: invalid JSON: {exc}") from None
        rows = _file_entries(file, document)
        for index, row in enumerate(rows):
            if not isinstance(row, dict) or "workload" not in row:
                raise CorpusError(
                    f"{file.name}[{index}]: entry must be an object "
                    f"with a 'workload' field")
            workload = str(row["workload"]).lower()
            if is_fuzz_workload(workload):
                fuzz_workload_seed(workload)  # validates; raises if bad
            elif workload not in registry:
                raise CorpusError(
                    f"{file.name}[{index}]: unknown workload "
                    f"{workload!r}; run `python -m repro list`")
            input_name = str(row.get("input", "attack"))
            if input_name not in INPUT_NAMES:
                raise CorpusError(
                    f"{file.name}[{index}]: input must be one of "
                    f"{INPUT_NAMES}, got {input_name!r}")
            try:
                repeat = int(row.get("repeat", 1))
            except (TypeError, ValueError):
                raise CorpusError(
                    f"{file.name}[{index}]: repeat must be an integer, "
                    f"got {row.get('repeat')!r}") from None
            if repeat <= 0:
                raise CorpusError(
                    f"{file.name}[{index}]: repeat must be positive")
            for round_no in range(repeat):
                suffix = f"#{round_no}" if repeat > 1 else ""
                entries.append(CorpusEntry(
                    f"{file.stem}/{index}:{workload}:{input_name}{suffix}",
                    workload, input_name))
    return AttackCorpus(tuple(entries), source=str(path))
