"""Guest workloads: vulnerable programs (Table II), SPEC-like benchmark
programs (Tables III/IV, Figures 8/9) and service simulations (§VIII-B2).
"""
