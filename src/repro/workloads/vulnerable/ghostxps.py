"""GhostXPS-9.21-like uninitialized read (CVE-2017-9740).

The real bug: GhostXPS parses a crafted XPS document whose declared
resource length exceeds the bytes actually present; the renderer then
consumes the *whole* heap buffer, emitting never-initialized bytes into
the output — an information leak.

The simulation: a document is a sequence of glyph-run records, each
declaring how many bytes of glyph data follow.  The parser allocates the
declared size but copies only the available bytes; the renderer outputs
the declared range.  A malicious document declares more than it ships,
leaking stale heap contents (a planted font-cache secret) into the
rendered output.  The patch's zero-fill defense turns the leak into
zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: Stale data a previous rendering job left in heap memory.
FONT_CACHE_SECRET = b"<<licensed-font-key:9f31aa02>>"

#: Size of the scratch buffer earlier jobs used.
SCRATCH_SIZE = 2048


@dataclass(frozen=True)
class XpsDocument:
    """One glyph-run record: declared data size vs. shipped bytes."""

    declared_size: int
    glyph_data: bytes

    @property
    def well_formed(self) -> bool:
        """True when the declared size matches the shipped bytes."""
        return self.declared_size == len(self.glyph_data)


class GhostXpsRenderer(VulnerableProgram):
    """The vulnerable XPS renderer."""

    name = "GhostXPS 9.21"
    reference = "CVE-2017-9740"
    vulnerability = "UR"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "render_previous_job")
        graph.add_call_site("main", "parse_document")
        graph.add_call_site("main", "render_glyphs")
        graph.add_call_site("render_previous_job", "malloc", "scratch")
        graph.add_call_site("render_previous_job", "free", "scratch")
        graph.add_call_site("parse_document", "xps_alloc")
        graph.add_call_site("xps_alloc", "malloc", "glyph_buf")
        graph.add_call_site("main", "free", "glyph_buf")
        return graph

    @staticmethod
    def attack_input() -> XpsDocument:
        """Declares 1.5 KB of glyph data but ships only 24 bytes."""
        return XpsDocument(declared_size=1536,
                           glyph_data=b"GLYPHRUN-minimal-payload")

    @staticmethod
    def benign_input() -> XpsDocument:
        data = b"GLYPHRUN" * 24
        return XpsDocument(declared_size=len(data), glyph_data=data)

    def main(self, p: Process, document: XpsDocument) -> RunOutcome:
        p.call("render_previous_job", self._render_previous_job)
        glyph_buf = p.call("parse_document", self._parse_document, document)
        rendered = p.call("render_glyphs", self._render_glyphs, glyph_buf,
                          document.declared_size)
        p.free(glyph_buf)
        return RunOutcome(response=rendered)

    def _render_previous_job(self, p: Process) -> None:
        """An earlier job leaves secrets in freed heap memory."""
        scratch = p.malloc(SCRATCH_SIZE, site="scratch")
        p.fill(scratch, SCRATCH_SIZE, ord("f"))
        p.write(scratch + 512, FONT_CACHE_SECRET)
        p.compute(500)
        p.free(scratch)

    def _parse_document(self, p: Process, document: XpsDocument) -> int:
        return p.call("xps_alloc", self._xps_alloc, document)

    def _xps_alloc(self, p: Process, document: XpsDocument) -> int:
        """Allocates the declared size; copies only the shipped bytes."""
        glyph_buf = p.malloc(document.declared_size, site="glyph_buf")
        p.syscall_in(glyph_buf, document.glyph_data)
        return glyph_buf

    def _render_glyphs(self, p: Process, glyph_buf: int,
                       declared_size: int) -> bytes:
        """Emits the full declared range into the output device."""
        p.compute(declared_size // 4)
        return p.syscall_out(glyph_buf, declared_size)

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = stale bytes beyond the shipped data leaked."""
        if outcome is None:
            return False
        if FONT_CACHE_SECRET in outcome.response:
            return True
        shipped = len(GhostXpsRenderer.attack_input().glyph_data)
        return any(byte != 0 for byte in outcome.response[shipped:])

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.response == self.benign_input().glyph_data
