"""Base class for the Table II vulnerable programs.

Each workload simulates one real-world vulnerable program: same
vulnerability class, same exploitation pattern, same observable attack
effect — per the substitution rule, the CVE target itself (OpenSSL,
GhostXPS, ...) is replaced by a guest program exercising the identical
heap-level code path.

The contract a workload implements on top of :class:`Program`:

* :meth:`attack_input` / :meth:`benign_input` — canonical inputs;
* ``main`` returns a :class:`RunOutcome` describing what the run did and
  what (if anything) leaked or got corrupted;
* :meth:`attack_succeeded` — did this outcome constitute a successful
  exploit?  The effectiveness benchmark uses it for both directions:
  the attack must succeed natively and fail under defense, while benign
  inputs must keep working.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ...program.program import Program


@dataclass
class RunOutcome:
    """What one execution of a vulnerable workload observably did."""

    #: Application-level response/result (e.g. bytes sent to the client).
    response: bytes = b""
    #: Free-form observations (corrupted fields, hijack markers, ...).
    facts: Dict[str, Any] = field(default_factory=dict)


class VulnerableProgram(Program):
    """A Table II workload."""

    #: The real-world reference this simulates (CVE id or suite name).
    reference: str = ""
    #: Human-readable vulnerability classes, e.g. ``"UR & Overflow"``.
    vulnerability: str = ""

    @staticmethod
    @abc.abstractmethod
    def attack_input() -> Any:
        """An input that exploits the vulnerability."""

    @staticmethod
    @abc.abstractmethod
    def benign_input() -> Any:
        """A normal input exercising the same code path."""

    @abc.abstractmethod
    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Did the attack achieve its goal (leak/corruption/hijack)?

        ``outcome`` is ``None`` when the run was blocked before completing
        (guard-page fault) — by definition the attack did not succeed.
        """

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        """Did a benign input produce its expected result?

        Defaults to "the run completed"; workloads with checkable answers
        override this.
        """
        return outcome is not None
