"""Heartbleed-like TLS heartbeat service (CVE-2014-0160).

The paper's flagship effectiveness case (§VIII-A).  The real bug: OpenSSL
echoes a heartbeat using the *attacker-supplied* payload length without
validating it against the actual request size, leaking up to 64 KB of
heap memory from a 34 KB buffer.  Two distinct vulnerabilities are
exploitable through it:

* leaked bytes *within* the 34 KB buffer that were never written by this
  request are an **uninitialized read** (they expose stale data from
  previous connections — private keys, session tokens), and
* a claimed length beyond 34 KB additionally **overreads** past the
  buffer into adjacent heap memory.

This simulation reproduces the memory behaviour at scale 1:1 — a 34 KB
request buffer, a declared-length field, an echo path that trusts it —
and plants recognizable secrets in heap memory so tests and benchmarks
can assert exactly what leaked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: Size of the heartbeat request buffer (the paper: "the vulnerable heap
#: buffer has 34KB").
REQUEST_BUFFER_SIZE = 34 * 1024

#: Maximum length the 16-bit heartbeat length field can claim.
MAX_CLAIMED_LENGTH = 64 * 1024 - 1

#: A secret another session previously left in heap memory.
SESSION_SECRET = b"-----PRIVATE KEY u3Fz9Qx SESSION c00kie-----"


@dataclass(frozen=True)
class HeartbeatRequest:
    """One heartbeat message: declared payload length + actual payload."""

    claimed_length: int
    payload: bytes

    def wire_format(self) -> bytes:
        """type(1) | length(2, big-endian) | payload."""
        return (b"\x01" + self.claimed_length.to_bytes(2, "big")
                + self.payload)


class HeartbleedService(VulnerableProgram):
    """A TLS-ish server processing prior traffic, then heartbeats."""

    name = "heartbleed"
    reference = "CVE-2014-0160"
    vulnerability = "UR & Overflow"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "handle_session")
        graph.add_call_site("main", "process_heartbeat")
        graph.add_call_site("handle_session", "malloc", "session_buf")
        graph.add_call_site("handle_session", "free", "session_buf")
        graph.add_call_site("process_heartbeat", "buffer_from_request")
        graph.add_call_site("buffer_from_request", "malloc", "hb_request")
        graph.add_call_site("process_heartbeat", "malloc", "hb_response")
        graph.add_call_site("process_heartbeat", "free", "hb_request")
        graph.add_call_site("process_heartbeat", "free", "hb_response")
        return graph

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    @staticmethod
    def attack_input() -> HeartbeatRequest:
        """A classic Heartbleed probe: tiny payload, huge claimed length.

        The claimed length exceeds the 34 KB buffer, so the echo both
        reads uninitialized buffer bytes and overreads past the buffer.
        """
        return HeartbeatRequest(claimed_length=MAX_CLAIMED_LENGTH,
                                payload=b"hat")

    @staticmethod
    def uninit_only_input() -> HeartbeatRequest:
        """An l < 34K probe: pure uninitialized-read leak (paper §VIII-A)."""
        return HeartbeatRequest(claimed_length=8 * 1024, payload=b"hat")

    @staticmethod
    def benign_input() -> HeartbeatRequest:
        """A well-formed heartbeat: claimed length == payload length."""
        payload = b"keepalive-probe-0123456789"
        return HeartbeatRequest(claimed_length=len(payload), payload=payload)

    # ------------------------------------------------------------------
    # Program body
    # ------------------------------------------------------------------

    def main(self, p: Process, request: HeartbeatRequest) -> RunOutcome:
        p.call("handle_session", self._handle_session)
        return p.call("process_heartbeat", self._process_heartbeat, request)

    def _handle_session(self, p: Process) -> None:
        """Earlier traffic: a session writes secrets into heap memory that
        is freed (not scrubbed) before the heartbeat arrives."""
        session = p.malloc(REQUEST_BUFFER_SIZE, site="session_buf")
        p.fill(session, REQUEST_BUFFER_SIZE, ord("s"))
        p.write(session + 96, SESSION_SECRET)
        p.compute(2000)
        p.free(session)

    def _buffer_from_request(self, p: Process,
                             request: HeartbeatRequest) -> int:
        """dtls1_process_heartbeat's buffer path: allocate the fixed-size
        request buffer and copy the (small) actual payload in."""
        buf = p.malloc(REQUEST_BUFFER_SIZE, site="hb_request")
        p.syscall_in(buf, request.wire_format())
        return buf

    def _process_heartbeat(self, p: Process,
                           request: HeartbeatRequest) -> RunOutcome:
        buf = p.call("buffer_from_request", self._buffer_from_request,
                     request)
        # Parse the attacker-controlled length field — the missing bounds
        # check against the real request size is the CVE.
        length_field = p.read(buf + 1, 2)
        claimed = int.from_bytes(length_field.data, "big")
        p.branch_on(length_field)
        payload_start = buf + 3

        response = p.malloc(3 + claimed, site="hb_response")
        p.write(response, b"\x02" + claimed.to_bytes(2, "big"))
        # memcpy(bp, pl, payload) — the unchecked echo.
        p.copy(response + 3, payload_start, claimed)
        leaked = p.syscall_out(response, 3 + claimed)
        p.free(buf)
        p.free(response)
        return RunOutcome(response=leaked,
                          facts={"claimed_length": claimed})

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """The exploit worked if stale heap data escaped.

        The planted session secret is the smoking gun; any non-zero byte
        beyond the attacker's own (3-byte) payload also counts as a leak.
        """
        if outcome is None:
            return False
        body = outcome.response[3:]
        if SESSION_SECRET in body:
            return True
        payload_length = len(HeartbleedService.attack_input().payload)
        beyond_echo = body[payload_length:]
        return any(byte != 0 for byte in beyond_echo)

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        request = self.benign_input()
        body = outcome.response[3:]
        return body[:len(request.payload)] == request.payload
