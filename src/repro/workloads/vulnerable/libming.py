"""libming-0.4.8-like heap overflow (CVE-2018-7877).

The real bug: ``getString``/``parseSWF_DEFINEFONT`` in libming's SWF
parser grows a string buffer with an undersized ``realloc`` computed from
a 16-bit field and then appends attacker-supplied glyph names past the
end — a heap overwrite through a *realloc-originated* buffer.

The simulation mirrors that shape so the generated patch carries
``FUN=realloc``: the parser accumulates tag names into a buffer it grows
with ``realloc`` using the (attacker-lied) declared total, then appends
the actual names.  The overflow clobbers the adjacent dictionary index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: Magic the font dictionary index should keep.
DICT_MAGIC = 0x44494354  # "DICT"

#: Initial string-buffer capacity.
INITIAL_CAPACITY = 32


@dataclass(frozen=True)
class SwfFile:
    """An SWF: the declared total name bytes vs. the shipped names."""

    declared_total: int
    names: Tuple[bytes, ...]

    @property
    def actual_total(self) -> int:
        """Bytes the parser will really append."""
        return sum(len(name) for name in self.names)


class LibmingParser(VulnerableProgram):
    """The vulnerable SWF parser."""

    name = "libming-0.4.8"
    reference = "CVE-2018-7877"
    vulnerability = "Overflow"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "parse_definefont")
        graph.add_call_site("parse_definefont", "malloc", "names_initial")
        graph.add_call_site("parse_definefont", "grow_names")
        graph.add_call_site("grow_names", "realloc", "names_grow")
        graph.add_call_site("main", "malloc", "dictionary")
        graph.add_call_site("main", "append_names")
        return graph

    @staticmethod
    def attack_input() -> SwfFile:
        """Declares 48 name bytes but ships 160 → realloc undersizes."""
        names = tuple(bytes([0x61 + i]) * 16 for i in range(10))
        return SwfFile(declared_total=48, names=names)

    @staticmethod
    def benign_input() -> SwfFile:
        names = (b"ArialGlyph-a", b"ArialGlyph-b")
        return SwfFile(declared_total=24, names=names)

    def main(self, p: Process, swf: SwfFile) -> RunOutcome:
        names_buf = p.call("parse_definefont", self._parse_definefont, swf)
        # The font dictionary lands in the chunk right after the (already
        # grown) names buffer — the data the overflow will clobber.
        dictionary = p.malloc(16, site="dictionary")
        p.write_int(dictionary, DICT_MAGIC)
        appended = p.call("append_names", self._append_names, swf,
                          names_buf)
        magic = p.read_int(dictionary).to_int()
        return RunOutcome(facts={
            "dictionary_magic": magic,
            "appended_bytes": appended,
        })

    def _parse_definefont(self, p: Process, swf: SwfFile) -> int:
        names_buf = p.malloc(INITIAL_CAPACITY, site="names_initial")
        # Grown from the *declared* total — the attacker's lie.
        return p.call("grow_names", self._grow_names, swf, names_buf)

    def _grow_names(self, p: Process, swf: SwfFile, names_buf: int) -> int:
        return p.realloc(names_buf, max(swf.declared_total,
                                        INITIAL_CAPACITY),
                         site="names_grow")

    def _append_names(self, p: Process, swf: SwfFile,
                      names_buf: int) -> int:
        """Appends the *actual* names — unchecked against capacity."""
        cursor = 0
        for name in swf.names:
            p.write(names_buf + cursor, name)
            cursor += len(name)
        return cursor

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = the adjacent dictionary index was clobbered."""
        if outcome is None:
            return False
        return outcome.facts.get("dictionary_magic") != DICT_MAGIC

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return (outcome.facts.get("dictionary_magic") == DICT_MAGIC
                and outcome.facts.get("appended_bytes")
                == self.benign_input().actual_total)
