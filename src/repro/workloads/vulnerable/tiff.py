"""LibTIFF-4.0.8-like heap overflow in tiff2pdf (CVE-2017-9935).

The real bug: ``t2p_write_pdf`` sizes the PDF transfer-function object
from ``t2p->tiff_transferfunctioncount`` but a crafted TIFF makes the
writer emit more samples than were counted, overflowing the heap buffer
with attacker-influenced bytes.

The simulation: the converter counts transfer-function samples from one
TIFF tag, allocates the PDF object buffer from that count, then streams
samples from a second (attacker-controlled) tag.  The adjacent PDF xref
table is clobbered by the runaway write, which the run reports — unless
the guard-page defense displaces/blocks the overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: Bytes per transfer-function sample record.
SAMPLE_SIZE = 16

#: Magic the xref table must keep for the PDF to be intact.
XREF_MAGIC = 0x78726566  # "xref"


@dataclass(frozen=True)
class TiffFile:
    """A TIFF: the counted samples vs. the samples actually present."""

    declared_samples: int
    actual_samples: int


class TiffToPdf(VulnerableProgram):
    """The vulnerable converter."""

    name = "tiff-4.0.8"
    reference = "CVE-2017-9935"
    vulnerability = "Overflow"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "t2p_write_pdf")
        graph.add_call_site("t2p_write_pdf", "malloc", "tf_object")
        graph.add_call_site("t2p_write_pdf", "malloc", "xref")
        graph.add_call_site("t2p_write_pdf", "write_samples")
        graph.add_call_site("t2p_write_pdf", "free", "tf_object")
        graph.add_call_site("t2p_write_pdf", "free", "xref")
        return graph

    @staticmethod
    def attack_input() -> TiffFile:
        """Ships twice the declared samples → continuous overwrite."""
        return TiffFile(declared_samples=8, actual_samples=20)

    @staticmethod
    def benign_input() -> TiffFile:
        return TiffFile(declared_samples=8, actual_samples=8)

    def main(self, p: Process, tiff: TiffFile) -> RunOutcome:
        return p.call("t2p_write_pdf", self._t2p_write_pdf, tiff)

    def _t2p_write_pdf(self, p: Process, tiff: TiffFile) -> RunOutcome:
        tf_object = p.malloc(tiff.declared_samples * SAMPLE_SIZE,
                             site="tf_object")
        xref = p.malloc(SAMPLE_SIZE, site="xref")
        p.write_int(xref, XREF_MAGIC)
        p.call("write_samples", self._write_samples, tiff, tf_object)
        xref_value = p.read_int(xref).to_int()
        # Like tiff2pdf on the crafted input, teardown is skipped when
        # heap structures may already be clobbered.
        if tiff.actual_samples <= tiff.declared_samples:
            p.free(tf_object)
            p.free(xref)
        return RunOutcome(facts={"xref_magic": xref_value})

    def _write_samples(self, p: Process, tiff: TiffFile,
                       tf_object: int) -> None:
        """The runaway writer: bounded by the *actual* sample count."""
        for index in range(tiff.actual_samples):
            record = bytes([0x40 + (index % 32)]) * SAMPLE_SIZE
            p.write(tf_object + index * SAMPLE_SIZE, record)

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = the adjacent xref table was clobbered."""
        if outcome is None:
            return False
        return outcome.facts.get("xref_magic") != XREF_MAGIC

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.facts.get("xref_magic") == XREF_MAGIC
