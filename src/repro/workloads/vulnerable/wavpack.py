"""WavPack-5.1.0-like use after free (CVE-2018-7253).

The real bug: ``ParseDsdiffHeaderConfig`` frees the DSDIFF channel
configuration on a malformed-chunk path but continues decoding with the
stale pointer; crafted chunk ordering lets attacker bytes occupy the
freed memory and steer the decoder.

The simulation: the decoder allocates an *aligned* channel-config block
(DSD buffers are alignment-sensitive — this exercises the ``memalign``
patch path and buffer Structure 3), frees it when a malformed chunk is
seen, lets the attacker's next chunk reuse the memory, then reads the
channel mask through the stale pointer.  Natively the decoder adopts the
attacker's mask; with the deferred-free defense the stale read still
returns the legitimate mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: The legitimate stereo channel mask.
LEGIT_MASK = 0x0003
#: The attacker's absurd mask that breaks downstream decoding.
EVIL_MASK = 0xFFFF_FFFF

#: Size and alignment of the channel-config block.
CONFIG_SIZE = 128
CONFIG_ALIGN = 64


@dataclass(frozen=True)
class DsdiffStream:
    """Chunk sequence of a DSDIFF file."""

    #: Whether a malformed PROP chunk triggers the premature free.
    malformed_prop: bool
    #: Attacker-controlled bytes of the following chunk.
    next_chunk: bytes


class WavPackDecoder(VulnerableProgram):
    """The vulnerable decoder."""

    name = "wavpack-5.1.0"
    reference = "CVE-2018-7253"
    vulnerability = "UaF"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "parse_header")
        graph.add_call_site("parse_header", "memalign", "channel_config")
        graph.add_call_site("main", "handle_prop_chunk")
        graph.add_call_site("handle_prop_chunk", "free", "channel_config")
        graph.add_call_site("main", "read_next_chunk")
        graph.add_call_site("read_next_chunk", "memalign", "chunk_buf")
        graph.add_call_site("main", "decode_samples")
        graph.add_call_site("main", "free", "chunk_buf")
        return graph

    @staticmethod
    def attack_input() -> DsdiffStream:
        evil = EVIL_MASK.to_bytes(8, "little") * (CONFIG_SIZE // 8)
        return DsdiffStream(malformed_prop=True, next_chunk=evil)

    @staticmethod
    def benign_input() -> DsdiffStream:
        return DsdiffStream(malformed_prop=False, next_chunk=b"\x11" * 64)

    def main(self, p: Process, stream: DsdiffStream) -> RunOutcome:
        config = p.call("parse_header", self._parse_header)
        p.call("handle_prop_chunk", self._handle_prop_chunk, stream, config)
        chunk = p.call("read_next_chunk", self._read_next_chunk, stream)
        mask = p.call("decode_samples", self._decode_samples, config)
        p.free(chunk)
        return RunOutcome(facts={"channel_mask": mask})

    def _parse_header(self, p: Process) -> int:
        config = p.memalign(CONFIG_ALIGN, CONFIG_SIZE, site="channel_config")
        p.fill(config, CONFIG_SIZE, 0)
        p.write_int(config, LEGIT_MASK)
        return config

    def _handle_prop_chunk(self, p: Process, stream: DsdiffStream,
                           config: int) -> None:
        p.compute(150)
        if stream.malformed_prop:
            # The premature free — config is still referenced below.
            p.free(config)

    def _read_next_chunk(self, p: Process, stream: DsdiffStream) -> int:
        chunk = p.memalign(CONFIG_ALIGN, len(stream.next_chunk),
                           site="chunk_buf")
        p.syscall_in(chunk, stream.next_chunk)
        return chunk

    def _decode_samples(self, p: Process, config: int) -> int:
        mask_value = p.read_int(config)
        return p.branch_on(mask_value)

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = decoder adopted the attacker's channel mask."""
        if outcome is None:
            return False
        return outcome.facts.get("channel_mask") == EVIL_MASK

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.facts.get("channel_mask") == LEGIT_MASK
