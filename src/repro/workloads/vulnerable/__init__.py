"""Table II vulnerable workloads."""

from typing import List

from .base import RunOutcome, VulnerableProgram
from .bc import BcCalculator
from .eternalblue import SmbServer
from .ghostxps import GhostXpsRenderer
from .heartbleed import HeartbleedService
from .libming import LibmingParser
from .optipng import OptiPngOptimizer
from .samate import SAMATE_SPECS, SamateCase, SamateSpec, all_samate_cases
from .tiff import TiffToPdf
from .wavpack import WavPackDecoder


def extension_programs() -> List[VulnerableProgram]:
    """Workloads beyond Table II (e.g. the paper's intro motivation)."""
    return [SmbServer()]


def table2_programs() -> List[VulnerableProgram]:
    """The named CVE programs of Table II (SAMATE cases excluded)."""
    return [
        HeartbleedService(),
        BcCalculator(),
        GhostXpsRenderer(),
        OptiPngOptimizer(),
        TiffToPdf(),
        WavPackDecoder(),
        LibmingParser(),
    ]


__all__ = [
    "BcCalculator",
    "GhostXpsRenderer",
    "HeartbleedService",
    "LibmingParser",
    "OptiPngOptimizer",
    "RunOutcome",
    "SAMATE_SPECS",
    "SmbServer",
    "SamateCase",
    "SamateSpec",
    "TiffToPdf",
    "VulnerableProgram",
    "WavPackDecoder",
    "all_samate_cases",
    "extension_programs",
    "table2_programs",
]
