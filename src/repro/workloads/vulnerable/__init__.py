"""Table II vulnerable workloads."""

from typing import Callable, Dict, List

from .base import RunOutcome, VulnerableProgram
from .bc import BcCalculator
from .eternalblue import SmbServer
from .ghostxps import GhostXpsRenderer
from .heartbleed import HeartbleedService
from .libming import LibmingParser
from .optipng import OptiPngOptimizer
from .samate import SAMATE_SPECS, SamateCase, SamateSpec, all_samate_cases
from .tiff import TiffToPdf
from .wavpack import WavPackDecoder


def extension_programs() -> List[VulnerableProgram]:
    """Workloads beyond Table II (e.g. the paper's intro motivation)."""
    return [SmbServer()]


def table2_programs() -> List[VulnerableProgram]:
    """The named CVE programs of Table II (SAMATE cases excluded)."""
    return [
        HeartbleedService(),
        BcCalculator(),
        GhostXpsRenderer(),
        OptiPngOptimizer(),
        TiffToPdf(),
        WavPackDecoder(),
        LibmingParser(),
    ]


def workload_registry() -> Dict[str, Callable[[], VulnerableProgram]]:
    """Stable name -> factory map over every bundled workload.

    The CLI, the attack-corpus builders and the parallel diagnosis
    workers all resolve workloads through this one registry, so a corpus
    entry produced on one process names exactly the program a pool
    worker will rebuild on another.
    """
    registry: Dict[str, Callable[[], VulnerableProgram]] = {}
    for program in table2_programs() + extension_programs():
        key = program.name.split()[0].split("-")[0].lower()
        registry[key] = type(program)
    for case in all_samate_cases():
        spec = case.spec
        registry[f"samate-{spec.case_id:02d}"] = (
            lambda spec=spec: SamateCase(spec))
    return registry


__all__ = [
    "BcCalculator",
    "GhostXpsRenderer",
    "HeartbleedService",
    "LibmingParser",
    "OptiPngOptimizer",
    "RunOutcome",
    "SAMATE_SPECS",
    "SmbServer",
    "SamateCase",
    "SamateSpec",
    "TiffToPdf",
    "VulnerableProgram",
    "WavPackDecoder",
    "all_samate_cases",
    "extension_programs",
    "table2_programs",
    "workload_registry",
]
