"""optipng-0.6.4-like use after free (CVE-2015-7801).

The real bug: optipng frees its image-reduction bookkeeping on one
processing path but a later trial-compression pass still dereferences
the stale pointer; a crafted PNG steers allocation so attacker-controlled
data occupies the freed memory, letting the stale dereference read an
attacker value (in the wild: a hijacked function pointer → arbitrary code
execution).

The simulation: the optimizer builds a palette descriptor holding a
"row-filter handler id" (standing in for the function pointer), frees it
on the reduction path, then lets attacker-controlled IDAT data be
allocated (reusing the hole), and finally dispatches through the stale
descriptor.  Natively the dispatched id is the attacker's marker — a
hijack.  The deferred-free defense keeps the descriptor memory out of
reuse, so the stale read still sees the legitimate handler id and the
hijack fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: The legitimate row-filter handler id.
LEGIT_HANDLER = 0x0F11
#: The attacker's marker (their "function pointer").
HIJACKED_HANDLER = 0xBADC0DE

#: Size of the palette descriptor (and of the attacker's IDAT chunk —
#: same size class so the allocator reuses the hole).
DESCRIPTOR_SIZE = 64


@dataclass(frozen=True)
class PngImage:
    """A PNG: whether it triggers the premature-free reduction path and
    the attacker-controlled IDAT bytes."""

    triggers_reduction: bool
    idat: bytes


class OptiPngOptimizer(VulnerableProgram):
    """The vulnerable optimizer."""

    name = "optipng-0.6.4"
    reference = "CVE-2015-7801"
    vulnerability = "UaF"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "build_palette")
        graph.add_call_site("build_palette", "malloc", "descriptor")
        graph.add_call_site("main", "reduce_image")
        graph.add_call_site("reduce_image", "free", "descriptor")
        graph.add_call_site("main", "read_idat")
        graph.add_call_site("read_idat", "malloc", "idat")
        graph.add_call_site("main", "trial_compress")
        graph.add_call_site("main", "free", "idat")
        return graph

    @staticmethod
    def attack_input() -> PngImage:
        """Triggers the reduction free, then plants a hijack marker."""
        idat = HIJACKED_HANDLER.to_bytes(8, "little") * (DESCRIPTOR_SIZE // 8)
        return PngImage(triggers_reduction=True, idat=idat)

    @staticmethod
    def benign_input() -> PngImage:
        return PngImage(triggers_reduction=False, idat=b"\x00" * 32)

    def main(self, p: Process, image: PngImage) -> RunOutcome:
        descriptor = p.call("build_palette", self._build_palette)
        p.call("reduce_image", self._reduce_image, image, descriptor)
        idat = p.call("read_idat", self._read_idat, image)
        handler = p.call("trial_compress", self._trial_compress, descriptor)
        p.free(idat)
        return RunOutcome(facts={"dispatched_handler": handler})

    def _build_palette(self, p: Process) -> int:
        descriptor = p.malloc(DESCRIPTOR_SIZE, site="descriptor")
        p.fill(descriptor, DESCRIPTOR_SIZE, 0)
        p.write_int(descriptor, LEGIT_HANDLER)
        return descriptor

    def _reduce_image(self, p: Process, image: PngImage,
                      descriptor: int) -> None:
        """The buggy path frees the descriptor that is still referenced."""
        p.compute(300)
        if image.triggers_reduction:
            p.free(descriptor)

    def _read_idat(self, p: Process, image: PngImage) -> int:
        """Attacker-controlled allocation: same size class as the hole."""
        idat = p.malloc(len(image.idat), site="idat")
        p.syscall_in(idat, image.idat)
        return idat

    def _trial_compress(self, p: Process, descriptor: int) -> int:
        """Dispatches through the (possibly stale) descriptor."""
        handler_value = p.read_int(descriptor)
        return p.use_as_address(handler_value)

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = the dispatch used the attacker's planted handler."""
        if outcome is None:
            return False
        return outcome.facts.get("dispatched_handler") == HIJACKED_HANDLER

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.facts.get("dispatched_handler") == LEGIT_HANDLER
