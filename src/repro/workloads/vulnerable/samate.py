"""SAMATE-dataset-like suite: 23 small heap-vulnerability programs.

The paper's Table II closes with "SAMATE Dataset … 23 heap bugs" from the
NIST reference dataset (heap overflow / use after free / uninitialized
read test cases).  The dataset programs themselves are tiny C snippets;
this module generates 23 equivalent guest programs from a spec table,
systematically varying:

* vulnerability class — overflow write, overflow read, use after free,
  uninitialized read;
* allocation entry point — ``malloc``, ``calloc``, ``memalign``,
  ``realloc`` (each yields a different ``FUN`` in the patch);
* calling depth — the allocation happens directly in ``main`` or behind
  one or two wrapper functions (exercising non-trivial calling contexts);
* buffer size.

Every case is a complete :class:`VulnerableProgram`: the attack input
observably leaks or corrupts, the benign input computes a checkable
result, so the effectiveness harness can assert both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...program.callgraph import CallGraph
from ...program.process import Process
from ...vulntypes import VulnType
from .base import RunOutcome, VulnerableProgram

#: Marker planted in the victim buffer adjacent to overflow targets.
VICTIM_MAGIC = 0x56494354  # "VICT"
#: Marker the attacker plants on use-after-free reuse.
EVIL_MAGIC = 0xE71C
#: Secret seeded into stale heap memory for leak cases.
STALE_SECRET = b"[stale-credential-7731]"


@dataclass(frozen=True)
class SamateSpec:
    """One generated test case."""

    case_id: int
    kind: VulnType
    #: "write" or "read" for overflows; ignored otherwise.
    flavor: str
    alloc_fun: str
    wrapper_depth: int
    buffer_size: int

    @property
    def name(self) -> str:
        """Stable, self-describing case identifier."""
        return (f"samate-{self.case_id:02d}-{self.kind.describe()}"
                f"-{self.alloc_fun}-d{self.wrapper_depth}")


def _build_specs() -> Tuple[SamateSpec, ...]:
    """The 23-case table: 9 overflow, 7 UAF, 7 uninitialized read."""
    specs: List[SamateSpec] = []
    case_id = 1

    overflow = [
        ("write", "malloc", 0, 64), ("write", "malloc", 1, 48),
        ("write", "calloc", 0, 64), ("write", "memalign", 1, 96),
        ("write", "realloc", 2, 64), ("read", "malloc", 0, 64),
        ("read", "calloc", 1, 80), ("read", "memalign", 0, 64),
        ("read", "realloc", 1, 48),
    ]
    for flavor, fun, depth, size in overflow:
        specs.append(SamateSpec(case_id, VulnType.OVERFLOW, flavor, fun,
                                depth, size))
        case_id += 1

    uaf = [
        ("read", "malloc", 0, 64), ("read", "malloc", 2, 64),
        ("read", "calloc", 1, 96), ("read", "memalign", 0, 64),
        ("read", "realloc", 1, 64), ("write", "malloc", 1, 48),
        ("write", "calloc", 0, 64),
    ]
    for flavor, fun, depth, size in uaf:
        specs.append(SamateSpec(case_id, VulnType.USE_AFTER_FREE, flavor,
                                fun, depth, size))
        case_id += 1

    uninit = [
        ("read", "malloc", 0, 64), ("read", "malloc", 1, 128),
        ("read", "malloc", 2, 64), ("read", "memalign", 0, 96),
        ("read", "memalign", 1, 64), ("read", "realloc", 0, 64),
        ("read", "realloc", 2, 96),
    ]
    for flavor, fun, depth, size in uninit:
        specs.append(SamateSpec(case_id, VulnType.UNINIT_READ, flavor, fun,
                                depth, size))
        case_id += 1

    assert len(specs) == 23
    return tuple(specs)


SAMATE_SPECS: Tuple[SamateSpec, ...] = _build_specs()


class SamateCase(VulnerableProgram):
    """One generated SAMATE-style test program."""

    def __init__(self, spec: SamateSpec) -> None:
        super().__init__()
        self.spec = spec
        self.name = spec.name
        self.reference = "SAMATE Dataset"
        self.vulnerability = spec.kind.describe()

    # ------------------------------------------------------------------
    # Graph
    # ------------------------------------------------------------------

    def build_graph(self) -> CallGraph:
        spec = self.spec
        graph = CallGraph(entry="main")
        # Wrapper chain down to the vulnerable allocation.
        caller = "main"
        for level in range(spec.wrapper_depth):
            callee = f"wrapper{level + 1}"
            graph.add_call_site(caller, callee)
            caller = callee
        if spec.alloc_fun == "realloc":
            graph.add_call_site(caller, "malloc", "initial")
            graph.add_call_site(caller, "realloc", "vuln")
        else:
            graph.add_call_site(caller, spec.alloc_fun, "vuln")
        # Supporting allocations made directly from main.
        graph.add_call_site("main", "malloc", "victim")
        graph.add_call_site("main", "malloc", "seed")
        graph.add_call_site("main", "malloc", "reuse")
        graph.add_call_site("main", "free", "any")
        return graph

    # ------------------------------------------------------------------
    # Inputs: (attack: bool,) — the spec fixes everything else
    # ------------------------------------------------------------------

    def attack_input(self) -> bool:  # type: ignore[override]
        return True

    def benign_input(self) -> bool:  # type: ignore[override]
        return False

    # ------------------------------------------------------------------
    # Body
    # ------------------------------------------------------------------

    def _allocate_vulnerable(self, p: Process) -> int:
        """Allocate the vulnerable buffer through the wrapper chain."""
        if self.spec.wrapper_depth == 0:
            return self._vulnerable_alloc(p)
        return p.call("wrapper1", self._wrapper_runner, 1)

    def _wrapper_runner(self, p: Process, level: int) -> int:
        if level < self.spec.wrapper_depth:
            return p.call(f"wrapper{level + 1}", self._wrapper_runner,
                          level + 1)
        return self._vulnerable_alloc(p)

    def _vulnerable_alloc(self, p: Process) -> int:
        spec = self.spec
        if spec.alloc_fun == "malloc":
            return p.malloc(spec.buffer_size, site="vuln")
        if spec.alloc_fun == "calloc":
            return p.calloc(1, spec.buffer_size, site="vuln")
        if spec.alloc_fun == "memalign":
            return p.memalign(32, spec.buffer_size, site="vuln")
        if spec.alloc_fun == "realloc":
            initial = p.malloc(spec.buffer_size // 2, site="initial")
            return p.realloc(initial, spec.buffer_size, site="vuln")
        raise ValueError(spec.alloc_fun)

    def main(self, p: Process, attack: bool) -> RunOutcome:
        kind = self.spec.kind
        if kind & VulnType.OVERFLOW:
            return self._run_overflow(p, attack)
        if kind & VulnType.USE_AFTER_FREE:
            return self._run_uaf(p, attack)
        return self._run_uninit(p, attack)

    # -- overflow --------------------------------------------------------

    def _run_overflow(self, p: Process, attack: bool) -> RunOutcome:
        size = self.spec.buffer_size
        buf = self._allocate_vulnerable(p)
        # 48 bytes so the victim cannot be satisfied from the small holes
        # a memalign prefix split leaves *below* the buffer — it must land
        # in the physically following chunk, in the overflow's path.
        victim = p.malloc(48, site="victim")
        p.write_int(victim, VICTIM_MAGIC)
        span = size + 64 if attack else size
        if self.spec.flavor == "write":
            p.write(buf, b"A" * span)
            magic = p.read_int(victim).to_int()
            return RunOutcome(facts={"victim_magic": magic})
        p.fill(buf, size, ord("d"))
        p.write(victim + 8, STALE_SECRET[:8])
        leaked = p.syscall_out(buf, span)
        magic = p.read_int(victim).to_int()
        return RunOutcome(response=leaked, facts={"victim_magic": magic})

    # -- use after free ---------------------------------------------------

    def _run_uaf(self, p: Process, attack: bool) -> RunOutcome:
        size = self.spec.buffer_size
        buf = self._allocate_vulnerable(p)
        p.fill(buf, size, 0)
        p.write_int(buf, VICTIM_MAGIC)
        if attack:
            p.free(buf)
            reuse = p.malloc(size, site="reuse")
            p.syscall_in(reuse, EVIL_MAGIC.to_bytes(8, "little") * (size // 8))
        if self.spec.flavor == "write":
            p.write_int(buf + 8, 0x5AFE)
        observed = p.branch_on(p.read_int(buf))
        return RunOutcome(facts={"observed": observed})

    # -- uninitialized read ------------------------------------------------

    def _run_uninit(self, p: Process, attack: bool) -> RunOutcome:
        size = self.spec.buffer_size
        # Seed stale secrets into heap memory that will be reused.
        seed = p.malloc(size, site="seed")
        p.fill(seed, size, ord("x"))
        p.write(seed + 16, STALE_SECRET)
        p.free(seed)
        buf = self._allocate_vulnerable(p)
        initialized = size if not attack else 8
        p.syscall_in(buf, b"I" * initialized)
        leaked = p.syscall_out(buf, size)
        return RunOutcome(response=leaked)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        kind = self.spec.kind
        if kind & VulnType.OVERFLOW:
            if self.spec.flavor == "write":
                return outcome.facts.get("victim_magic") != VICTIM_MAGIC
            body = outcome.response[self.spec.buffer_size:]
            return any(byte != 0 for byte in body)
        if kind & VulnType.USE_AFTER_FREE:
            return outcome.facts.get("observed") == EVIL_MAGIC
        body = outcome.response[8:]
        return any(byte != 0 for byte in body)

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        kind = self.spec.kind
        if kind & VulnType.OVERFLOW:
            if self.spec.flavor == "write":
                return outcome.facts.get("victim_magic") == VICTIM_MAGIC
            return outcome.response == b"d" * self.spec.buffer_size
        if kind & VulnType.USE_AFTER_FREE:
            expected = VICTIM_MAGIC
            return outcome.facts.get("observed") == expected
        return outcome.response == b"I" * self.spec.buffer_size


def all_samate_cases() -> List[SamateCase]:
    """Instantiate the full 23-program suite."""
    return [SamateCase(spec) for spec in SAMATE_SPECS]
