"""bc-1.06-like arbitrary-precision calculator overflow (BugBench).

The real bug (BugBench's ``bc`` entry): ``more_arrays()`` in
``storage.c`` sizes the new array bookkeeping from ``a_count`` but the
copy loop runs to ``v_count``, overflowing the heap buffer when more
variables than arrays exist and corrupting adjacent heap data.

The simulation: the calculator provisions a fixed number of per-variable
slots, allocates its result accumulator (which the allocator places in
the physically adjacent chunk), and then runs a store loop bounded by the
attacker-influenced variable count.  A malicious script drives the loop
past the slot buffer and clobbers the accumulator — the observable
"corrupts the adjacent data" of the paper's evaluation.  Under the
guard-page defense the first out-of-bounds store faults before any
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: Number of array slots ``more_arrays`` provisions for.
PROVISIONED_SLOTS = 32

#: Bytes per variable slot.
SLOT_SIZE = 8

#: Marker value the accumulator holds while evaluation runs.
EXPECTED_ACCUMULATOR = 0x1D4B42


@dataclass(frozen=True)
class CalcScript:
    """A bc input script: how many variables it declares, plus constants."""

    variable_count: int
    constants: tuple

    @property
    def expected_sum(self) -> int:
        """The answer a correct evaluation must produce."""
        return sum(self.constants)


class BcCalculator(VulnerableProgram):
    """The vulnerable calculator."""

    name = "bc-1.06"
    reference = "Bugbench"
    vulnerability = "Overflow"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "init_storage")
        graph.add_call_site("main", "evaluate")
        graph.add_call_site("init_storage", "more_arrays")
        graph.add_call_site("more_arrays", "malloc", "arrays")
        graph.add_call_site("main", "malloc", "accumulator")
        graph.add_call_site("evaluate", "store_variables")
        return graph

    @staticmethod
    def attack_input() -> CalcScript:
        """Declares more variables than provisioned slots → overflow."""
        return CalcScript(variable_count=PROVISIONED_SLOTS + 8,
                          constants=(7, 35, 100))

    @staticmethod
    def benign_input() -> CalcScript:
        """Fits within the provisioned storage."""
        return CalcScript(variable_count=PROVISIONED_SLOTS - 2,
                          constants=(7, 35, 100))

    def main(self, p: Process, script: CalcScript) -> RunOutcome:
        arrays = p.call("init_storage", self._init_storage)
        accumulator = p.malloc(SLOT_SIZE, site="accumulator")
        p.write_int(accumulator, EXPECTED_ACCUMULATOR)
        total = p.call("evaluate", self._evaluate, script, arrays)
        final_marker = p.read_int(accumulator).to_int()
        # bc exits without freeing its storage arrays; with the attack
        # input the adjacent chunk header is clobbered anyway, so freeing
        # would abort inside the allocator — exactly like the real crash.
        return RunOutcome(facts={
            "sum": total,
            "accumulator_marker": final_marker,
        })

    def _init_storage(self, p: Process) -> int:
        return p.call("more_arrays", self._more_arrays)

    def _more_arrays(self, p: Process) -> int:
        """Provisions PROVISIONED_SLOTS slots — the under-sized buffer."""
        return p.malloc(PROVISIONED_SLOTS * SLOT_SIZE, site="arrays")

    def _evaluate(self, p: Process, script: CalcScript, arrays: int) -> int:
        total = 0
        for constant in script.constants:
            p.compute(12)
            total += constant
        p.call("store_variables", self._store_variables, script, arrays)
        return total

    def _store_variables(self, p: Process, script: CalcScript,
                         arrays: int) -> None:
        """The buggy loop: bounded by ``v_count``, not the buffer size."""
        for index in range(script.variable_count):
            p.write_int(arrays + index * SLOT_SIZE, index + 1)

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        """Success = the adjacent accumulator got clobbered."""
        if outcome is None:
            return False
        return outcome.facts.get("accumulator_marker") != EXPECTED_ACCUMULATOR

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return (outcome.facts.get("sum") == self.benign_input().expected_sum
                and outcome.facts.get("accumulator_marker")
                == EXPECTED_ACCUMULATOR)
