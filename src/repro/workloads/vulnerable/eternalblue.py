"""EternalBlue-like SMB pool overflow (CVE-2017-0144) — extension.

The paper's introduction motivates heap protection with WannaCry's
EternalBlue exploit: SMBv1's conversion of OS/2 FEA (file extended
attribute) lists to NT format miscalculates the output size — the
attacker-supplied 32-bit total is written through a 16-bit field, so a
total just above 0xFFFF wraps to a tiny allocation while the copy loop
uses the full list.  The attacker *grooms* the non-paged pool with srvnet
connection buffers so the overflow lands on one of them and overwrites a
handler pointer, hijacking control.

This simulation reproduces the exploit structure end to end: grooming
allocations carrying a dispatch-handler field, the WORD-truncated size
computation, the oversized copy, and the hijacked dispatch.  It is not
part of the paper's Table II (kept out of ``table2_programs``) but shows
the system handling the attack the paper opens with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...program.callgraph import CallGraph
from ...program.process import Process
from .base import RunOutcome, VulnerableProgram

#: The legitimate srvnet receive handler "address".
LEGIT_HANDLER = 0x8000_1000
#: The attacker's shellcode "address" embedded in the FEA payload.
SHELLCODE = 0x41414141

#: Size of one groomed srvnet connection buffer.
SRVNET_BUF_SIZE = 128
#: Offset of the handler pointer within a srvnet buffer.
HANDLER_OFFSET = 64

#: How many srvnet buffers the attacker grooms the pool with.
GROOM_COUNT = 4


@dataclass(frozen=True)
class SmbSession:
    """One SMB conversation: the FEA list transaction."""

    #: The attacker-declared total FEA list size (32-bit).
    fea_total: int
    #: Actual FEA record bytes shipped.
    fea_data: bytes

    @property
    def truncated_total(self) -> int:
        """The WORD-cast size the vulnerable conversion allocates with."""
        return self.fea_total & 0xFFFF


class SmbServer(VulnerableProgram):
    """The vulnerable SMBv1-ish server."""

    name = "eternalblue-smb"
    reference = "CVE-2017-0144 (extension; paper intro)"
    vulnerability = "Overflow"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "accept_srvnet")
        graph.add_call_site("accept_srvnet", "malloc", "srvnet_buf")
        graph.add_call_site("main", "transact2_secondary")
        graph.add_call_site("transact2_secondary", "os2_to_nt_fea")
        graph.add_call_site("os2_to_nt_fea", "malloc", "nt_fea")
        graph.add_call_site("main", "dispatch_receive")
        graph.add_call_site("main", "free", "teardown")
        return graph

    @staticmethod
    def attack_input() -> SmbSession:
        """Total 0x1_0040 truncates to 0x40; data is much larger and
        carries the shellcode address at every handler-sized stride."""
        record = SHELLCODE.to_bytes(8, "little") * 64
        return SmbSession(fea_total=0x1_0040, fea_data=record)

    @staticmethod
    def benign_input() -> SmbSession:
        data = b"\x00" * 0x40
        return SmbSession(fea_total=len(data), fea_data=data)

    def main(self, p: Process, session: SmbSession) -> RunOutcome:
        # Pool grooming: connection buffers with handler pointers.
        srvnet = []
        for _ in range(GROOM_COUNT):
            srvnet.append(p.call("accept_srvnet", self._accept_srvnet))
        # The groom's finishing move: close one early connection so the
        # FEA conversion buffer is carved into the hole *below* the
        # remaining srvnet buffers — the overflow then runs upward into
        # their handler pointers.
        hole = srvnet.pop(1)
        p.free(hole)
        p.call("transact2_secondary", self._transact2_secondary, session)
        handler = p.call("dispatch_receive", self._dispatch_receive,
                         srvnet)
        # No teardown: the real exploit leaves the pool corrupted — the
        # connection buffers' own headers may hold payload bytes, so the
        # server never gets to free them (it has been hijacked).
        return RunOutcome(facts={"dispatched_handler": handler})

    def _accept_srvnet(self, p: Process) -> int:
        buf = p.malloc(SRVNET_BUF_SIZE, site="srvnet_buf")
        p.fill(buf, SRVNET_BUF_SIZE, 0)
        p.write_int(buf + HANDLER_OFFSET, LEGIT_HANDLER)
        return buf

    def _transact2_secondary(self, p: Process,
                             session: SmbSession) -> None:
        p.call("os2_to_nt_fea", self._os2_to_nt_fea, session)

    def _os2_to_nt_fea(self, p: Process, session: SmbSession) -> None:
        """The bug: allocate with the WORD-truncated total, copy the
        full list."""
        nt_fea = p.malloc(session.truncated_total, site="nt_fea")
        staging = p.malloc(len(session.fea_data), site="nt_fea")
        p.syscall_in(staging, session.fea_data)
        # The conversion loop trusts the 32-bit total:
        p.copy(nt_fea, staging, len(session.fea_data))
        # Transaction buffers are retained until connection teardown,
        # which the hijack preempts (and whose headers the overflow may
        # have clobbered anyway).

    def _dispatch_receive(self, p: Process, srvnet: List[int]) -> int:
        """The next packet dispatches through a groomed buffer's handler."""
        handlers = [p.read_int(buf + HANDLER_OFFSET).to_int()
                    for buf in srvnet]
        hijacked = [h for h in handlers if h != LEGIT_HANDLER]
        target = hijacked[0] if hijacked else handlers[0]
        p.compute(100)
        return target

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.facts.get("dispatched_handler") == SHELLCODE

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        return outcome.facts.get("dispatched_handler") == LEGIT_HANDLER
