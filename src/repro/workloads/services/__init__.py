"""Service-program workloads for throughput overhead (§VIII-B2)."""

from .harness import (
    ThroughputResult,
    measure_throughput,
    median_frequency_patches,
)
from .mysql import MySqlServer
from .nginx import NginxServer

__all__ = [
    "MySqlServer",
    "NginxServer",
    "ThroughputResult",
    "measure_throughput",
    "median_frequency_patches",
]
