"""MySQL-5.5.9-like storage-engine simulation.

The paper reports *no observable throughput overhead* for MySQL under
``mysql-stress-test.pl``.  The reason is structural: a database engine
front-loads its allocation work — the buffer pool, key cache and
per-connection arenas are allocated at startup and reused — so steady
state executes very few interposable heap calls per query.  The
simulation reproduces exactly that character: a startup phase builds the
buffer pool; each query then borrows pool pages and only occasionally
(e.g. large sorts) touches ``malloc``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Tuple

from ...program.blocks import BasicBlock, BlockBuilder
from ...program.callgraph import CallGraph
from ...program.process import Process
from ...program.program import Program

#: Pages in the buffer pool built at startup.
BUFFER_POOL_PAGES = 64

#: Bytes per pool page.
POOL_PAGE_SIZE = 16 * 1024

#: Fraction of queries that need a temporary sort buffer from malloc.
SORT_QUERY_FRACTION = 0.02


def request_stream_iter(count: int) -> Iterator[Tuple[int, bool]]:
    """The query mix as ``(page_index, needs_sort)`` tokens, lazily.

    Draw-for-draw identical to the legacy query loop's RNG use, so the
    serving engine, the bounded-admission lazy stream and the sequential
    oracle all execute the same queries in the same order.
    """
    rng = random.Random("mysql:queries")
    for _ in range(count):
        needs_sort = rng.random() < SORT_QUERY_FRACTION
        yield (rng.randrange(BUFFER_POOL_PAGES), needs_sort)


def request_stream(count: int) -> List[Tuple[int, bool]]:
    """The query mix as an explicit token list."""
    return list(request_stream_iter(count))


class MySqlServer(Program):
    """Storage-engine worker with a startup-allocated buffer pool."""

    name = "mysql-5.5.9"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "startup")
        graph.add_call_site("startup", "malloc", "pool_page")
        graph.add_call_site("startup", "malloc", "key_cache")
        graph.add_call_site("main", "query_loop")
        graph.add_call_site("query_loop", "execute_query")
        graph.add_call_site("execute_query", "sort_rows")
        graph.add_call_site("sort_rows", "malloc", "sort_buf")
        graph.add_call_site("sort_rows", "free", "sort_buf")
        graph.add_call_site("main", "free", "teardown")
        return graph

    def main(self, p: Process, query_count: int) -> Dict[str, int]:
        pool, key_cache = p.call("startup", self._startup)
        stats = p.call("query_loop", self._query_loop, pool, query_count)
        for page in pool:
            p.free(page)
        p.free(key_cache)
        return stats

    def _startup(self, p: Process) -> Tuple[List[int], int]:
        """Allocate the buffer pool and key cache once."""
        pool = []
        for _ in range(BUFFER_POOL_PAGES):
            page = p.malloc(POOL_PAGE_SIZE, site="pool_page")
            p.fill(page, 512, 0)  # page header initialization
            pool.append(page)
        key_cache = p.malloc(128 * 1024, site="key_cache")
        p.fill(key_cache, 1024, 0)
        return pool, key_cache

    def _query_loop(self, p: Process, pool: List[int],
                    query_count: int) -> Dict[str, int]:
        rows = 0
        sorts = 0
        for page_index, needs_sort in request_stream(query_count):
            rows += p.call("execute_query", self._execute_query, pool,
                           page_index, needs_sort)
            if needs_sort:
                sorts += 1
        return {"rows": rows, "sorts": sorts}

    def _execute_query(self, p: Process, pool: List[int], page_index: int,
                       needs_sort: bool) -> int:
        """One point query: touch a pool page; rare queries sort."""
        page = pool[page_index]
        # Row lookup: read a few cache lines from the pooled page.
        p.read(page + 256, 128)
        p.write(page + 64, b"\x01" * 16)
        p.compute(1600)  # btree descent + row eval + net reply
        if needs_sort:
            p.call("sort_rows", self._sort_rows)
        return 1

    def _sort_rows(self, p: Process) -> None:
        sort_buf = p.malloc(32 * 1024, site="sort_buf")
        p.fill(sort_buf, 4096, 0)
        p.compute(9000)  # filesort
        p.free(sort_buf)

    # ------------------------------------------------------------------
    # Serving mode (repro.serving): fused point-query blocks
    # ------------------------------------------------------------------

    def serve_main(self, p: Process,
                   queries: List[Tuple[int, bool]]) -> Dict[str, Any]:
        """Execute one query round in batched mode.

        Point queries replay as one fused basic block each (row read,
        dirty-flag write, compute); the rare sort queries keep the per-op
        ``execute_query`` frame chain so ``sort_buf`` allocations carry
        the exact sequential CCID.
        """
        pool, key_cache = p.call("startup", self._startup)
        stats = p.call("query_loop", self._serve_query_loop, pool, queries)
        for page in pool:
            p.free(page)
        p.free(key_cache)
        return stats

    def _serve_query_loop(self, p: Process, pool: List[int],
                          queries: List[Tuple[int, bool]]) -> Dict[str, Any]:
        rows = 0
        sorts = 0
        block = self._query_block()
        point_rows: List[Tuple[int]] = []
        append_row = point_rows.append
        for page_index, needs_sort in queries:
            if needs_sort:
                if point_rows:
                    p.exec_block_run(block, point_rows)
                    rows += len(point_rows)
                    point_rows = []
                    append_row = point_rows.append
                rows += p.call("execute_query", self._execute_query, pool,
                               page_index, True)
                sorts += 1
            else:
                append_row((pool[page_index],))
        if point_rows:
            p.exec_block_run(block, point_rows)
            rows += len(point_rows)
        outcomes = [("ok", 1)] * len(queries)
        return {"rows": rows, "sorts": sorts, "served": len(queries),
                "bytes_sent": rows, "outcomes": outcomes}

    def _query_block(self) -> BasicBlock:
        """The fused point-query body (arg 0 = the borrowed pool page)."""
        block: BasicBlock = self.__dict__.get("_serve_block")  # type: ignore
        if block is None:
            b = BlockBuilder()
            b.read(0, 256, 128)
            b.write(0, 64, b"\x01" * 16)
            b.compute(1600)
            block = b.build()
            self.__dict__["_serve_block"] = block
        return block

    def __getstate__(self) -> Dict[str, Any]:
        # The serve block is a per-process cache; workers rebuild it
        # lazily, keeping the shipped program plan pickle-clean.
        state = dict(self.__dict__)
        state.pop("_serve_block", None)
        return state
