"""MySQL-5.5.9-like storage-engine simulation.

The paper reports *no observable throughput overhead* for MySQL under
``mysql-stress-test.pl``.  The reason is structural: a database engine
front-loads its allocation work — the buffer pool, key cache and
per-connection arenas are allocated at startup and reused — so steady
state executes very few interposable heap calls per query.  The
simulation reproduces exactly that character: a startup phase builds the
buffer pool; each query then borrows pool pages and only occasionally
(e.g. large sorts) touches ``malloc``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ...program.callgraph import CallGraph
from ...program.process import Process
from ...program.program import Program

#: Pages in the buffer pool built at startup.
BUFFER_POOL_PAGES = 64

#: Bytes per pool page.
POOL_PAGE_SIZE = 16 * 1024

#: Fraction of queries that need a temporary sort buffer from malloc.
SORT_QUERY_FRACTION = 0.02


class MySqlServer(Program):
    """Storage-engine worker with a startup-allocated buffer pool."""

    name = "mysql-5.5.9"

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "startup")
        graph.add_call_site("startup", "malloc", "pool_page")
        graph.add_call_site("startup", "malloc", "key_cache")
        graph.add_call_site("main", "query_loop")
        graph.add_call_site("query_loop", "execute_query")
        graph.add_call_site("execute_query", "sort_rows")
        graph.add_call_site("sort_rows", "malloc", "sort_buf")
        graph.add_call_site("sort_rows", "free", "sort_buf")
        graph.add_call_site("main", "free", "teardown")
        return graph

    def main(self, p: Process, query_count: int) -> Dict[str, int]:
        pool, key_cache = p.call("startup", self._startup)
        stats = p.call("query_loop", self._query_loop, pool, query_count)
        for page in pool:
            p.free(page)
        p.free(key_cache)
        return stats

    def _startup(self, p: Process) -> Tuple[List[int], int]:
        """Allocate the buffer pool and key cache once."""
        pool = []
        for _ in range(BUFFER_POOL_PAGES):
            page = p.malloc(POOL_PAGE_SIZE, site="pool_page")
            p.fill(page, 512, 0)  # page header initialization
            pool.append(page)
        key_cache = p.malloc(128 * 1024, site="key_cache")
        p.fill(key_cache, 1024, 0)
        return pool, key_cache

    def _query_loop(self, p: Process, pool: List[int],
                    query_count: int) -> Dict[str, int]:
        rng = random.Random("mysql:queries")
        rows = 0
        sorts = 0
        for _ in range(query_count):
            needs_sort = rng.random() < SORT_QUERY_FRACTION
            rows += p.call("execute_query", self._execute_query, pool,
                           rng.randrange(BUFFER_POOL_PAGES), needs_sort)
            if needs_sort:
                sorts += 1
        return {"rows": rows, "sorts": sorts}

    def _execute_query(self, p: Process, pool: List[int], page_index: int,
                       needs_sort: bool) -> int:
        """One point query: touch a pool page; rare queries sort."""
        page = pool[page_index]
        # Row lookup: read a few cache lines from the pooled page.
        p.read(page + 256, 128)
        p.write(page + 64, b"\x01" * 16)
        p.compute(1600)  # btree descent + row eval + net reply
        if needs_sort:
            p.call("sort_rows", self._sort_rows)
        return 1

    def _sort_rows(self, p: Process) -> None:
        sort_buf = p.malloc(32 * 1024, site="sort_buf")
        p.fill(sort_buf, 4096, 0)
        p.compute(9000)  # filesort
        p.free(sort_buf)
