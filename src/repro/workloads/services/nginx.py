"""Nginx-1.2-like static web server simulation.

The paper measures HeapTherapy+'s throughput overhead on Nginx with
Apache Benchmark at 20–200 concurrent requests (average overhead 4.2%).
The simulation reproduces the allocation character of serving static
files: per request a connection context, a header buffer, a URI copy and
a response body are heap-allocated, the file content is copied into the
response, and everything is freed at request end — several short-lived
allocations per request, which is why interposition overhead is visible
but small.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ...program.callgraph import CallGraph
from ...program.process import Process
from ...program.program import Program

#: The server's document tree: path -> file size in bytes.
DOCUMENT_TREE: Dict[str, int] = {
    "/index.html": 4 * 1024,
    "/style.css": 2 * 1024,
    "/app.js": 8 * 1024,
    "/logo.png": 16 * 1024,
    "/api/status": 256,
}

#: Request mix: mostly documents, occasionally a missing path, which
#: exercises the (rare) error-page allocation context — the kind of
#: seldom-run code path real heap CVEs tend to live on.
MISSING_PATH = "/favicon.ico"
MISSING_PATH_WEIGHT = 0.03

#: Pre-rendered 404 body size.
ERROR_PAGE_SIZE = 512

#: Per-request connection-context size.
CONNECTION_CTX_SIZE = 424

#: Header buffer size (client request head).
HEADER_BUF_SIZE = 1024


class NginxServer(Program):
    """Request-loop worker process."""

    name = "nginx-1.2"

    def __init__(self) -> None:
        super().__init__()
        self._documents: Dict[str, bytes] = {
            path: bytes((i * 131 + len(path)) % 256 for i in range(size))
            for path, size in DOCUMENT_TREE.items()
        }

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "worker_loop")
        graph.add_call_site("worker_loop", "handle_request")
        graph.add_call_site("handle_request", "accept_connection")
        graph.add_call_site("accept_connection", "malloc", "conn_ctx")
        graph.add_call_site("handle_request", "read_headers")
        graph.add_call_site("read_headers", "malloc", "header_buf")
        graph.add_call_site("handle_request", "parse_uri")
        graph.add_call_site("parse_uri", "malloc", "uri_buf")
        graph.add_call_site("handle_request", "send_response")
        graph.add_call_site("send_response", "malloc", "body_buf")
        graph.add_call_site("handle_request", "send_error_page")
        graph.add_call_site("send_error_page", "malloc", "error_page")
        graph.add_call_site("handle_request", "free", "teardown")
        return graph

    def main(self, p: Process, request_count: int,
             concurrency: int = 20) -> Dict[str, int]:
        return p.call("worker_loop", self._worker_loop, request_count,
                      concurrency)

    def _worker_loop(self, p: Process, request_count: int,
                     concurrency: int) -> Dict[str, int]:
        """Admits up to ``concurrency`` in-flight requests per round."""
        rng = random.Random("nginx:requests")
        paths = sorted(self._documents)
        served = 0
        bytes_sent = 0
        while served < request_count:
            batch = min(concurrency, request_count - served)
            for _ in range(batch):
                if rng.random() < MISSING_PATH_WEIGHT:
                    path = MISSING_PATH
                else:
                    path = paths[rng.randrange(len(paths))]
                bytes_sent += p.call("handle_request", self._handle_request,
                                     path)
                served += 1
        return {"served": served, "bytes_sent": bytes_sent}

    def _handle_request(self, p: Process, path: str) -> int:
        conn = p.call("accept_connection", self._accept_connection)
        header_buf = p.call("read_headers", self._read_headers, path)
        uri_buf, uri_len = p.call("parse_uri", self._parse_uri, header_buf,
                                  path)
        if path in self._documents:
            sent = p.call("send_response", self._send_response, path)
        else:
            sent = p.call("send_error_page", self._send_error_page, path)
        p.free(conn)
        p.free(header_buf)
        p.free(uri_buf)
        return sent

    def _accept_connection(self, p: Process) -> int:
        conn = p.malloc(CONNECTION_CTX_SIZE, site="conn_ctx")
        p.fill(conn, CONNECTION_CTX_SIZE, 0)
        p.compute(6200)  # accept4 + epoll + connection setup
        return conn

    def _read_headers(self, p: Process, path: str) -> int:
        header_buf = p.malloc(HEADER_BUF_SIZE, site="header_buf")
        request_head = (f"GET {path} HTTP/1.1\r\nHost: repro\r\n"
                        f"Connection: keep-alive\r\n\r\n").encode()
        p.syscall_in(header_buf, request_head)
        p.compute(7400 + len(request_head) * 6)  # recv + header parsing
        return header_buf

    def _parse_uri(self, p: Process, header_buf: int,
                   path: str) -> Tuple[int, int]:
        uri_len = len(path)
        uri_buf = p.malloc(uri_len + 1, site="uri_buf")
        p.copy(uri_buf, header_buf + 4, uri_len)
        p.write(uri_buf + uri_len, b"\x00")
        p.compute(2100)  # uri normalization + location match
        return uri_buf, uri_len

    def _send_response(self, p: Process, path: str) -> int:
        content = self._documents[path]
        body = p.malloc(len(content), site="body_buf")
        p.write(body, content)
        p.compute(8800 + len(content) // 16)  # writev + headers + logging
        sent = p.syscall_out(body, len(content))
        p.free(body)
        return len(sent)

    def _send_error_page(self, p: Process, path: str) -> int:
        """The rare path: render a 404 into a freshly allocated buffer."""
        body = p.malloc(ERROR_PAGE_SIZE, site="error_page")
        message = (f"<html><body>404 Not Found: {path}</body></html>"
                   .encode())
        p.fill(body, ERROR_PAGE_SIZE, 0x20)
        p.write(body, message[:ERROR_PAGE_SIZE])
        p.compute(7000)
        sent = p.syscall_out(body, ERROR_PAGE_SIZE)
        p.free(body)
        return len(sent)
