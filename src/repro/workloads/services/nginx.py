"""Nginx-1.2-like static web server simulation.

The paper measures HeapTherapy+'s throughput overhead on Nginx with
Apache Benchmark at 20–200 concurrent requests (average overhead 4.2%).
The simulation reproduces the allocation character of serving static
files: per request a connection context, a header buffer, a URI copy and
a response body are heap-allocated, the file content is copied into the
response, and everything is freed at request end — several short-lived
allocations per request, which is why interposition overhead is visible
but small.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Tuple

from ...machine.layout import PAGE_SIZE
from ...program.blocks import BasicBlock, BlockBuilder
from ...program.callgraph import CallGraph
from ...program.process import Process
from ...program.program import Program

#: The server's document tree: path -> file size in bytes.
DOCUMENT_TREE: Dict[str, int] = {
    "/index.html": 4 * 1024,
    "/style.css": 2 * 1024,
    "/app.js": 8 * 1024,
    "/logo.png": 16 * 1024,
    "/api/status": 256,
}

#: Request mix: mostly documents, occasionally a missing path, which
#: exercises the (rare) error-page allocation context — the kind of
#: seldom-run code path real heap CVEs tend to live on.
MISSING_PATH = "/favicon.ico"
MISSING_PATH_WEIGHT = 0.03

#: Pre-rendered 404 body size.
ERROR_PAGE_SIZE = 512

#: Per-request connection-context size.
CONNECTION_CTX_SIZE = 424

#: Header buffer size (client request head).
HEADER_BUF_SIZE = 1024

#: Request token the serving engine injects to simulate a Heartbleed-
#: style overread attack: the response path sends ``LEAK_EXTRA`` bytes
#: past the body buffer.
LEAK_REQUEST = "!leak"

#: Response-body size the attack's crafted content-length provokes.
#: 120 bytes is chosen so the body lives in a size class no benign
#: request touches — natively (120 -> class 128) and under the
#: defense's inline-metadata fast path (128 -> class 128) — which makes
#: the grooming below deterministic.
LEAK_BODY_SIZE = 120

#: Bytes the leak attack overreads past the response body.  One full
#: page: a guarded buffer's slack between buffer end and guard page is
#: always < PAGE_SIZE, so a page-long overread provably reaches the
#: sealed guard under *any* placement.
LEAK_EXTRA = PAGE_SIZE

#: Grooming allocations the attack sprays on either side of the body.
#: 34 slots x 128 bytes > LEAK_BODY_SIZE + LEAK_EXTRA: whichever
#: direction the allocator hands out slots, the overread stays inside
#: live, mapped attacker allocations — so the *native* server leaks
#: heap bytes instead of crashing, exactly the Heartbleed shape.  Only
#: the patched defense (guard page sealed directly against the body's
#: context) turns the read into a fault.
LEAK_GROOM = 34

#: Path the leak attack requests.
LEAK_PATH = "/api/status"

#: Requests per fused serving chunk: bounds peak live buffers per group
#: and keeps freed response-body mappings flowing through the
#: allocator's large-mapping cache into the next chunk.
SERVE_CHUNK = 64

#: Keep-alive connections a serving chunk multiplexes its requests
#: over — Apache Benchmark's concurrency level in the paper's Nginx
#: experiments.  Connection context and header buffer are allocated
#: once per connection and reused across its requests.
SERVE_CONCURRENCY = 20


def request_stream_iter(count: int) -> Iterator[str]:
    """The benign request mix, one token at a time.

    Draw-for-draw identical to the legacy worker loop's RNG use, so the
    serving engine, the bounded-admission lazy stream and the
    sequential oracle all serve the same requests in the same order.
    """
    rng = random.Random("nginx:requests")
    paths = sorted(DOCUMENT_TREE)
    for _ in range(count):
        if rng.random() < MISSING_PATH_WEIGHT:
            yield MISSING_PATH
        else:
            yield paths[rng.randrange(len(paths))]


def request_stream(count: int) -> List[str]:
    """The benign request mix as an explicit token list."""
    return list(request_stream_iter(count))


class NginxServer(Program):
    """Request-loop worker process."""

    name = "nginx-1.2"

    def __init__(self) -> None:
        super().__init__()
        self._documents: Dict[str, bytes] = {
            path: bytes((i * 131 + len(path)) % 256 for i in range(size))
            for path, size in DOCUMENT_TREE.items()
        }

    def build_graph(self) -> CallGraph:
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "worker_loop")
        graph.add_call_site("worker_loop", "handle_request")
        graph.add_call_site("handle_request", "accept_connection")
        graph.add_call_site("accept_connection", "malloc", "conn_ctx")
        graph.add_call_site("handle_request", "read_headers")
        graph.add_call_site("read_headers", "malloc", "header_buf")
        graph.add_call_site("handle_request", "parse_uri")
        graph.add_call_site("parse_uri", "malloc", "uri_buf")
        graph.add_call_site("handle_request", "send_response")
        graph.add_call_site("send_response", "malloc", "body_buf")
        graph.add_call_site("handle_request", "send_error_page")
        graph.add_call_site("send_error_page", "malloc", "error_page")
        graph.add_call_site("handle_request", "free", "teardown")
        return graph

    def main(self, p: Process, request_count: int,
             concurrency: int = 20) -> Dict[str, int]:
        return p.call("worker_loop", self._worker_loop, request_count,
                      concurrency)

    def _worker_loop(self, p: Process, request_count: int,
                     concurrency: int) -> Dict[str, int]:
        """Sequential oracle: one per-op request at a time, in stream
        order (``concurrency`` shapes admission, not behavior)."""
        served = 0
        bytes_sent = 0
        for path in request_stream(request_count):
            bytes_sent += p.call("handle_request", self._handle_request,
                                 path)
            served += 1
        return {"served": served, "bytes_sent": bytes_sent}

    def _handle_request(self, p: Process, path: str) -> int:
        conn = p.call("accept_connection", self._accept_connection)
        header_buf = p.call("read_headers", self._read_headers, path)
        uri_buf, uri_len = p.call("parse_uri", self._parse_uri, header_buf,
                                  path)
        if path in self._documents:
            sent = p.call("send_response", self._send_response, path)
        else:
            sent = p.call("send_error_page", self._send_error_page, path)
        p.free(conn)
        p.free(header_buf)
        p.free(uri_buf)
        return sent

    def _accept_connection(self, p: Process) -> int:
        conn = p.malloc(CONNECTION_CTX_SIZE, site="conn_ctx")
        p.fill(conn, CONNECTION_CTX_SIZE, 0)
        p.compute(6200)  # accept4 + epoll + connection setup
        return conn

    def _read_headers(self, p: Process, path: str) -> int:
        header_buf = p.malloc(HEADER_BUF_SIZE, site="header_buf")
        request_head = (f"GET {path} HTTP/1.1\r\nHost: repro\r\n"
                        f"Connection: keep-alive\r\n\r\n").encode()
        p.syscall_in(header_buf, request_head)
        p.compute(7400 + len(request_head) * 6)  # recv + header parsing
        return header_buf

    def _parse_uri(self, p: Process, header_buf: int,
                   path: str) -> Tuple[int, int]:
        uri_len = len(path)
        uri_buf = p.malloc(uri_len + 1, site="uri_buf")
        p.copy(uri_buf, header_buf + 4, uri_len)
        p.write(uri_buf + uri_len, b"\x00")
        p.compute(2100)  # uri normalization + location match
        return uri_buf, uri_len

    def _send_response(self, p: Process, path: str) -> int:
        content = self._documents[path]
        body = p.malloc(len(content), site="body_buf")
        p.write(body, content)
        p.compute(8800 + len(content) // 16)  # writev + headers + logging
        sent = p.syscall_out(body, len(content))
        p.free(body)
        return len(sent)

    def _send_error_page(self, p: Process, path: str) -> int:
        """The rare path: render a 404 into a freshly allocated buffer."""
        body = p.malloc(ERROR_PAGE_SIZE, site="error_page")
        message = (f"<html><body>404 Not Found: {path}</body></html>"
                   .encode())
        p.fill(body, ERROR_PAGE_SIZE, 0x20)
        p.write(body, message[:ERROR_PAGE_SIZE])
        p.compute(7000)
        sent = p.syscall_out(body, ERROR_PAGE_SIZE)
        p.free(body)
        return len(sent)

    # ------------------------------------------------------------------
    # Serving mode (repro.serving): batched same-path request groups
    # ------------------------------------------------------------------
    #
    # The serving engine drives request *rounds* through ``serve_main``.
    # Requests are grouped by path; each group allocates its buffers in
    # same-call-site ``malloc_run`` batches — entered through the exact
    # frames the per-op path uses, so every allocation carries the same
    # CCID — and replays the straight-line request body as one fused
    # basic block per request.  Unlike the sequential oracle's
    # close-per-request loop (``ab`` without ``-k``), the engine admits
    # *keep-alive* connections: each chunk runs its requests over
    # ``SERVE_CONCURRENCY`` persistent connections whose context and
    # header buffer are allocated once and reused — nginx's
    # ``ngx_http_keepalive_handler`` shape.  A round containing the
    # attack token is a singleton (the engine splits rounds at attacks)
    # and takes the per-op path, because its overread may fault
    # mid-request.

    def serve_main(self, p: Process, requests: List[str]) -> Dict[str, Any]:
        """Serve one request round in batched mode."""
        return p.call("worker_loop", self._serve_worker_loop, requests)

    def _serve_worker_loop(self, p: Process,
                           requests: List[str]) -> Dict[str, Any]:
        groups: Dict[str, List[int]] = {}
        for index, path in enumerate(requests):
            groups.setdefault(path, []).append(index)
        outcomes: List[Tuple[str, int]] = [("", 0)] * len(requests)
        bytes_sent = 0
        for path in sorted(groups):
            indices = groups[path]
            if path == LEAK_REQUEST:
                for index in indices:
                    sent = p.call("handle_request",
                                  self._handle_leak_request)
                    outcomes[index] = ("leak", sent)
                    bytes_sent += sent
            elif path in self._documents:
                sent = p.call("handle_request", self._serve_group, path,
                              len(indices))
                for index in indices:
                    outcomes[index] = ("ok", sent)
                bytes_sent += sent * len(indices)
            else:
                sent = p.call("handle_request", self._serve_error_group,
                              path, len(indices))
                for index in indices:
                    outcomes[index] = ("ok", sent)
                bytes_sent += sent * len(indices)
        return {"served": len(requests), "bytes_sent": bytes_sent,
                "outcomes": outcomes}

    # -- batched stage bodies (one frame entry per group) --------------

    def _serve_accept(self, p: Process, k: int) -> List[int]:
        """Accept ``k`` keep-alive connections: context + setup each."""
        conns = p.malloc_run([CONNECTION_CTX_SIZE] * k, site="conn_ctx")
        block: BasicBlock = self.__dict__.get("_conn_block")  # type: ignore
        if block is None:
            b = BlockBuilder()
            b.fill(0, 0, CONNECTION_CTX_SIZE, 0)
            b.compute(6200)  # accept4 + epoll + connection setup
            block = b.build()
            self.__dict__["_conn_block"] = block
        p.exec_block_run(block, [(conn,) for conn in conns])
        return conns

    def _serve_read_headers(self, p: Process, k: int) -> List[int]:
        return p.malloc_run([HEADER_BUF_SIZE] * k, site="header_buf")

    def _serve_parse_uri(self, p: Process, path: str, k: int) -> List[int]:
        return p.malloc_run([len(path) + 1] * k, site="uri_buf")

    def _serve_send_response(self, p: Process, path: str,
                             k: int) -> List[int]:
        return p.malloc_run([len(self._documents[path])] * k,
                            site="body_buf")

    def _serve_error_body(self, p: Process, k: int) -> List[int]:
        return p.malloc_run([ERROR_PAGE_SIZE] * k, site="error_page")

    def _serve_group(self, p: Process, path: str, k: int) -> int:
        """Serve ``k`` requests for one document path, batched.

        Requests run in chunks of :data:`SERVE_CHUNK`, multiplexed over
        :data:`SERVE_CONCURRENCY` keep-alive connections whose context
        and header buffer are allocated once per chunk and reused.  The
        first request of each chunk renders the document into its body
        buffer (the open-file-cache fill); the remaining responses send
        from that cached copy — nginx's sendfile/writev shape, where hot
        content is not re-copied through the heap per request.  Every
        request still allocates its own URI and body buffers through the
        exact per-op frames, so those CCIDs match the sequential oracle;
        chunking bounds peak live buffers and lets the allocator's
        large-mapping cache recycle one chunk's bodies into the next.
        """
        sent = 0
        for start in range(0, k, SERVE_CHUNK):
            n = min(SERVE_CHUNK, k - start)
            c = min(n, SERVE_CONCURRENCY)
            conns = p.call("accept_connection", self._serve_accept, c)
            headers = p.call("read_headers", self._serve_read_headers, c)
            uris = p.call("parse_uri", self._serve_parse_uri, path, n)
            bodies = p.call("send_response", self._serve_send_response,
                            path, n)
            sent = self._serve_rows(p, path, headers, uris, bodies)
            p.free_run(bodies)
            p.free_run(uris)
            p.free_run(headers)
            p.free_run(conns)
        return sent

    def _serve_error_group(self, p: Process, path: str, k: int) -> int:
        """Serve ``k`` requests for a missing path, batched."""
        sent = 0
        for start in range(0, k, SERVE_CHUNK):
            n = min(SERVE_CHUNK, k - start)
            c = min(n, SERVE_CONCURRENCY)
            conns = p.call("accept_connection", self._serve_accept, c)
            headers = p.call("read_headers", self._serve_read_headers, c)
            uris = p.call("parse_uri", self._serve_parse_uri, path, n)
            bodies = p.call("send_error_page", self._serve_error_body, n)
            sent = self._serve_rows(p, path, headers, uris, bodies)
            p.free_run(bodies)
            p.free_run(uris)
            p.free_run(headers)
            p.free_run(conns)
        return sent

    def _serve_rows(self, p: Process, path: str, headers: List[int],
                    uris: List[int], bodies: List[int]) -> int:
        """Run the fill block on request 0, the cached block on the rest.

        Request ``i`` is served on keep-alive connection ``i % C`` (its
        header buffer is reused for the read).
        """
        fill, cached = self._serve_block(path)
        outs = p.exec_block(fill, headers[0], uris[0], bodies[0])
        sent = outs[-1]
        n = len(uris)
        if n > 1:
            c = len(headers)
            src = bodies[0]
            rows = [(headers[i % c], uris[i], src) for i in range(1, n)]
            p.exec_block_run(cached, rows)
        return sent

    def _serve_block(self, path: str) -> Tuple[BasicBlock, BasicBlock]:
        """The fused per-request bodies for ``path``: (fill, cached).

        Args: 0 = header buffer (the connection's, reused), 1 = URI
        buffer, 2 = response-body source.  The *fill* variant renders
        the response content into arg 2 before sending; the *cached*
        variant sends straight from arg 2 (the chunk's already-rendered
        first body).  Op order mirrors the per-op handlers — connection
        setup lives in the per-connection accept block — and heap calls
        stay outside (blocks never allocate).
        """
        cache: Dict[str, Tuple[BasicBlock, BasicBlock]]
        cache = self.__dict__.setdefault("_serve_blocks", {})
        blocks = cache.get(path)
        if blocks is not None:
            return blocks
        request_head = (f"GET {path} HTTP/1.1\r\nHost: repro\r\n"
                        f"Connection: keep-alive\r\n\r\n").encode()
        content = self._documents.get(path)
        # One merged charge per stage set — header parse (7400 + 6/byte),
        # URI handling (2100), response assembly — keeps the block at
        # three or four memory ops per request.
        parse_cycles = 7400 + len(request_head) * 6 + 2100
        variants: List[BasicBlock] = []
        for render in (True, False):
            b = BlockBuilder()
            b.syscall_in(0, 0, request_head)           # read_headers
            b.write(1, 0, path.encode() + b"\x00")     # parse_uri
            if content is not None:                    # send_response
                if render:
                    b.write(2, 0, content)
                b.compute(parse_cycles + 8800 + len(content) // 16)
                b.sendfile(2, 0, len(content))
            else:                                      # send_error_page
                if render:
                    message = (f"<html><body>404 Not Found: {path}"
                               f"</body></html>").encode()
                    b.fill(2, 0, ERROR_PAGE_SIZE, 0x20)
                    b.write(2, 0, message[:ERROR_PAGE_SIZE])
                b.compute(parse_cycles + 7000)
                b.sendfile(2, 0, ERROR_PAGE_SIZE)
            variants.append(b.build())
        blocks = (variants[0], variants[1])
        cache[path] = blocks
        return blocks

    def __getstate__(self) -> Dict[str, Any]:
        # Serve blocks are a per-process cache; workers rebuild them
        # lazily, keeping the shipped program plan pickle-clean.
        state = dict(self.__dict__)
        state.pop("_serve_blocks", None)
        state.pop("_conn_block", None)
        return state

    # -- the planted vulnerability (serving attack path) ---------------

    def _handle_leak_request(self, p: Process) -> int:
        """One attack request, per-op: overread past the response body."""
        conn = p.call("accept_connection", self._accept_connection)
        header_buf = p.call("read_headers", self._read_headers, LEAK_PATH)
        uri_buf, _ = p.call("parse_uri", self._parse_uri, header_buf,
                            LEAK_PATH)
        sent = p.call("send_response", self._send_leak_response, LEAK_PATH)
        p.free(conn)
        p.free(header_buf)
        p.free(uri_buf)
        return sent

    def _send_leak_response(self, p: Process, path: str) -> int:
        """Like ``_send_response`` but the body size and reply length
        are attacker-controlled (crafted content-length), and the
        attacker grooms the heap around the body first: the reply reads
        ``LEAK_EXTRA`` bytes beyond the body buffer into the groomed
        neighbourhood — the Heartbleed shape."""
        content = self._documents[path]
        groom = [p.malloc(LEAK_BODY_SIZE, site="body_buf")
                 for _ in range(LEAK_GROOM)]
        body = p.malloc(LEAK_BODY_SIZE, site="body_buf")
        groom += [p.malloc(LEAK_BODY_SIZE, site="body_buf")
                  for _ in range(LEAK_GROOM)]
        p.write(body, content[:LEAK_BODY_SIZE])
        p.compute(8800 + LEAK_BODY_SIZE // 16)
        sent = p.syscall_out(body, LEAK_BODY_SIZE + LEAK_EXTRA)
        p.free(body)
        for address in groom:
            p.free(address)
        return len(sent)
