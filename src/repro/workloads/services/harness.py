"""Service throughput measurement (paper §VIII-B2).

Runs a service program natively and under the online defense, computes
throughput as work units per simulated cycle, and reports the overhead —
the quantity the paper measures with Apache Benchmark (Nginx) and
``mysql-stress-test.pl`` (MySQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ...ccencoding import Strategy
from ...core.pipeline import HeapTherapy
from ...defense.patch_table import PatchTable
from ...patch.model import HeapPatch
from ...program.program import Program
from ...vulntypes import VulnType


@dataclass(frozen=True)
class ThroughputResult:
    """Native-vs-defended throughput for one configuration."""

    label: str
    work_units: int
    native_cycles: float
    defended_cycles: float

    def _require_cycles(self, field: str) -> float:
        cycles = getattr(self, field)
        if cycles == 0:
            raise ValueError(
                f"ThroughputResult({self.label!r}): {field} is 0 — the "
                f"measured run executed no costed work, so throughput "
                f"and overhead are undefined (did the meter run?)")
        return cycles

    @property
    def native_throughput(self) -> float:
        """Work units per million simulated cycles."""
        return self.work_units / self._require_cycles("native_cycles") * 1e6

    @property
    def defended_throughput(self) -> float:
        """Work units per million simulated cycles, defended."""
        return (self.work_units
                / self._require_cycles("defended_cycles") * 1e6)

    @property
    def overhead_pct(self) -> float:
        """Throughput loss in percent (defended vs native)."""
        return (self.defended_cycles
                / self._require_cycles("native_cycles") - 1) * 100


def median_frequency_patches(system: HeapTherapy, *profile_args: Any,
                             count: int = 1,
                             vuln: VulnType = VulnType.OVERFLOW,
                             **profile_kwargs: Any) -> List[HeapPatch]:
    """The Figure 8 methodology: profile a run, rank allocation CCIDs by
    frequency, and hypothesize the median-frequency ones as vulnerable."""
    from ...core.profiling import AllocationProfile

    profiling = system.run_native(*profile_args, **profile_kwargs)
    profile = AllocationProfile()
    profile.ingest(profiling.process)
    return profile.hypothesize_patches(vuln, "median", count)


def measure_throughput(program: Program, label: str, work_units: int,
                       run_args: Tuple[Any, ...],
                       patch_count: int = 0,
                       strategy: Strategy = Strategy.INCREMENTAL,
                       workers: int = 1,
                       ) -> ThroughputResult:
    """Run ``program`` native and defended; return the comparison.

    ``patch_count`` defaults to 0 — the paper's service measurements
    reflect the deployed defense library (interposition + metadata +
    encoding) rather than any specific installed patch; pass a count to
    additionally enforce median-frequency hypothesized patches.

    ``workers=1`` runs the legacy sequential loop (the oracle);
    ``workers>1`` routes both runs through the concurrent serving
    engine (:mod:`repro.serving`), whose cycle totals are byte-
    identical to its own ``workers=1`` run by construction.
    """
    if workers > 1:
        return _measure_throughput_serving(program, label, work_units,
                                           patch_count, strategy, workers)
    system = HeapTherapy(program, strategy=strategy)
    patches = median_frequency_patches(system, *run_args,
                                       count=patch_count)
    native = system.run_native(*run_args)
    defended = system.run_defended(PatchTable(patches), *run_args)
    if defended.blocked:
        raise RuntimeError(f"service run unexpectedly blocked: "
                           f"{defended.fault}")
    return ThroughputResult(
        label=label,
        work_units=work_units,
        native_cycles=native.meter.total,
        defended_cycles=defended.meter.total,
    )


#: Program name -> serving-registry key (engine routing).
_SERVICE_KEYS = {"nginx-1.2": "nginx", "mysql-5.5.9": "mysql"}


def _measure_throughput_serving(program: Program, label: str,
                                work_units: int, patch_count: int,
                                strategy: Strategy,
                                workers: int) -> ThroughputResult:
    """The engine-backed measurement path (``workers > 1``)."""
    from ...serving import ServingEngine, ServingOptions

    service = _SERVICE_KEYS.get(program.name)
    if service is None:
        raise ValueError(
            f"program {program.name!r} is not a served service; "
            f"known: {', '.join(sorted(_SERVICE_KEYS))}")
    patches_text = ""
    if patch_count:
        system = HeapTherapy(program, strategy=strategy)
        patches = median_frequency_patches(system, work_units,
                                           count=patch_count)
        patches_text = PatchTable(patches).serialize()
    common = dict(service=service, workers=workers, requests=work_units,
                  strategy=strategy.value)
    native = ServingEngine(
        ServingOptions(defended=False, **common), program=program).serve()
    defended = ServingEngine(
        ServingOptions(defended=True, patches_text=patches_text,
                       **common), program=program).serve()
    if defended.report["outcomes"].get("blocked"):
        raise RuntimeError("service run unexpectedly blocked")
    return ThroughputResult(
        label=label,
        work_units=work_units,
        native_cycles=native.total_cycles,
        defended_cycles=defended.total_cycles,
    )
