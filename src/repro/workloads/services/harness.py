"""Service throughput measurement (paper §VIII-B2).

Runs a service program natively and under the online defense, computes
throughput as work units per simulated cycle, and reports the overhead —
the quantity the paper measures with Apache Benchmark (Nginx) and
``mysql-stress-test.pl`` (MySQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ...ccencoding import Strategy
from ...core.pipeline import HeapTherapy
from ...defense.patch_table import PatchTable
from ...patch.model import HeapPatch
from ...program.program import Program
from ...vulntypes import VulnType


@dataclass(frozen=True)
class ThroughputResult:
    """Native-vs-defended throughput for one configuration."""

    label: str
    work_units: int
    native_cycles: float
    defended_cycles: float

    @property
    def native_throughput(self) -> float:
        """Work units per million simulated cycles."""
        return self.work_units / self.native_cycles * 1e6

    @property
    def defended_throughput(self) -> float:
        """Work units per million simulated cycles, defended."""
        return self.work_units / self.defended_cycles * 1e6

    @property
    def overhead_pct(self) -> float:
        """Throughput loss in percent (defended vs native)."""
        return (self.defended_cycles / self.native_cycles - 1) * 100


def median_frequency_patches(system: HeapTherapy, *profile_args: Any,
                             count: int = 1,
                             vuln: VulnType = VulnType.OVERFLOW,
                             **profile_kwargs: Any) -> List[HeapPatch]:
    """The Figure 8 methodology: profile a run, rank allocation CCIDs by
    frequency, and hypothesize the median-frequency ones as vulnerable."""
    from ...core.profiling import AllocationProfile

    profiling = system.run_native(*profile_args, **profile_kwargs)
    profile = AllocationProfile()
    profile.ingest(profiling.process)
    return profile.hypothesize_patches(vuln, "median", count)


def measure_throughput(program: Program, label: str, work_units: int,
                       run_args: Tuple[Any, ...],
                       patch_count: int = 0,
                       strategy: Strategy = Strategy.INCREMENTAL,
                       ) -> ThroughputResult:
    """Run ``program`` native and defended; return the comparison.

    ``patch_count`` defaults to 0 — the paper's service measurements
    reflect the deployed defense library (interposition + metadata +
    encoding) rather than any specific installed patch; pass a count to
    additionally enforce median-frequency hypothesized patches.
    """
    system = HeapTherapy(program, strategy=strategy)
    patches = median_frequency_patches(system, *run_args,
                                       count=patch_count)
    native = system.run_native(*run_args)
    defended = system.run_defended(PatchTable(patches), *run_args)
    if defended.blocked:
        raise RuntimeError(f"service run unexpectedly blocked: "
                           f"{defended.fault}")
    return ThroughputResult(
        label=label,
        work_units=work_units,
        native_cycles=native.meter.total,
        defended_cycles=defended.meter.total,
    )
