"""Synthetic SPEC-like guest programs generated from profiles.

Each :class:`SyntheticSpecProgram` deterministically expands a
:class:`~repro.workloads.spec.profiles.SpecProfile` into

* a static call graph — noise subsystems (call trees that never allocate)
  plus allocating subsystems (a wrapper chain ending in a *hub* holding
  the allocation sites), and
* a dynamic trace — the profile's (scaled) allocation counts interleaved
  with noise walks, buffer writes and frees against a bounded live set.

The same seeded trace executes identically under every encoding strategy
and defense configuration, which is what makes the overhead comparisons
(Figures 8/9, §VIII-B1) apples-to-apples.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from ...program.callgraph import CallGraph
from ...program.process import Process
from ...program.program import Program
from .profiles import SpecProfile

#: Smallest allocation the generator will request.
MIN_ALLOC = 16


class SyntheticSpecProgram(Program):
    """One SPEC-like benchmark program.

    Args:
        profile: shape and counts.
        scale: extra multiplier on the (already scaled) allocation counts
            and noise walks — tests use ``scale=0.02`` for speed.
    """

    def __init__(self, profile: SpecProfile, scale: float = 1.0) -> None:
        super().__init__()
        self.profile = profile
        self.scale = scale
        self.name = profile.name

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------

    def build_graph(self) -> CallGraph:
        profile = self.profile
        graph = CallGraph(entry="main")
        graph.add_call_site("main", "free")
        for s in range(profile.noise_subsystems):
            root = f"noise{s}"
            graph.add_call_site("main", root)
            self._build_noise_tree(graph, root, profile.noise_depth,
                                   profile.noise_fanout)
        for ph in range(profile.phases):
            graph.add_call_site("main", f"phase{ph}")
        for a in range(profile.alloc_subsystems):
            entry = f"subsys{a}"
            for ph in range(profile.phases):
                graph.add_call_site(f"phase{ph}", entry)
            parent = entry
            for c in range(profile.chain_length):
                child = f"subsys{a}_c{c}"
                graph.add_call_site(parent, child)
                parent = child
            hub = f"subsys{a}_hub"
            graph.add_call_site(parent, hub)
            for fun in profile.hub_targets:
                for k in range(profile.sites_per_target):
                    graph.add_call_site(hub, fun, f"a{a}k{k}")
        return graph

    @staticmethod
    def _build_noise_tree(graph: CallGraph, node: str, depth: int,
                          fanout: int) -> None:
        if depth == 0:
            return
        for i in range(fanout):
            child = f"{node}_{i}"
            graph.add_call_site(node, child)
            SyntheticSpecProgram._build_noise_tree(graph, child, depth - 1,
                                                   fanout)

    # ------------------------------------------------------------------
    # Dynamic trace
    # ------------------------------------------------------------------

    def _scaled(self, count: int) -> int:
        value = int(count * self.scale)
        if count > 0 and value == 0:
            value = 1
        return value

    def _plan(self) -> Tuple[List[Tuple[str, int, str]], int]:
        """Deterministic allocation schedule + noise-walk count.

        Each entry is ``(fun, subsystem, site_label)``.
        """
        profile = self.profile
        rng = random.Random(f"{profile.name}:plan")
        schedule: List[Tuple[str, int, int, str]] = []
        per_fun = {
            "malloc": self._scaled(profile.scaled_malloc),
            "calloc": self._scaled(profile.scaled_calloc),
            "realloc": self._scaled(profile.scaled_realloc),
        }
        # Context combos (phase, subsystem, site) with zipf-skewed usage:
        # a few contexts dominate, the median-frequency context is rare.
        combos = [(ph, a, k)
                  for ph in range(profile.phases)
                  for a in range(profile.alloc_subsystems)
                  for k in range(profile.sites_per_target)]
        rng.shuffle(combos)
        weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(combos))]
        for fun, count in per_fun.items():
            if fun not in profile.hub_targets and count:
                # Route counts for absent hubs through malloc (keeps the
                # graph faithful to the profile's declared targets).
                fun = profile.hub_targets[0]
            if not count:
                continue
            picks = rng.choices(range(len(combos)), weights=weights,
                                k=count)
            for index in picks:
                ph, subsystem, k = combos[index]
                schedule.append((fun, ph, subsystem, f"a{subsystem}k{k}"))
        rng.shuffle(schedule)
        # The schedule is already scaled, so the per-alloc ratio applies
        # directly; always take at least one walk so every graph region
        # executes.
        noise_walks = max(
            1, int(len(schedule) * profile.noise_walks_per_alloc))
        return schedule, noise_walks

    def main(self, p: Process) -> Dict[str, int]:
        profile = self.profile
        rng = random.Random(f"{profile.name}:run")
        schedule, noise_walks = self._plan()
        live: List[Tuple[int, int]] = []  # (address, size)
        checksum = 0
        if profile.startup_compute:
            p.compute(int(profile.startup_compute * min(self.scale * 10, 1.0)))

        # Interleave noise walks evenly among allocations.
        total_steps = len(schedule) + noise_walks
        noise_every = (total_steps / noise_walks) if noise_walks else 0.0
        noise_emitted = 0
        steps_done = 0
        alloc_index = 0

        while steps_done < total_steps:
            want_noise = (noise_every and
                          noise_emitted < noise_walks and
                          steps_done >= noise_emitted * noise_every)
            if want_noise or alloc_index >= len(schedule):
                self._noise_walk(p, rng)
                noise_emitted += 1
            else:
                fun, phase, subsystem, site = schedule[alloc_index]
                alloc_index += 1
                size = self._alloc_size(rng)
                old: Optional[int] = None
                if fun == "realloc" and live:
                    old, _ = live.pop(rng.randrange(len(live)))
                address = p.call(f"phase{phase}", self._phase_entry,
                                 subsystem, fun, site, size, old)
                p.fill(address, size, 0x5A)
                if profile.compute_per_alloc:
                    p.compute(profile.compute_per_alloc)
                # Layout-independent checksum: data and sizes only, so
                # native and defended runs (whose addresses differ by
                # design) must agree — a tested system invariant.
                first = p.read(address, 1).to_int()
                checksum = (checksum * 31 + size + first) & 0xFFFF_FFFF
                live.append((address, size))
                while len(live) > profile.live_target:
                    victim, _ = live.pop(0)
                    p.free(victim)
            steps_done += 1

        for address, _ in live:
            p.free(address)
        return {"checksum": checksum,
                "allocations": alloc_index,
                "noise_walks": noise_emitted}

    def _alloc_size(self, rng: random.Random) -> int:
        avg = self.profile.avg_alloc_size
        return max(MIN_ALLOC, int(avg * rng.uniform(0.5, 1.5)))

    # -- allocating subsystem -------------------------------------------

    def _phase_entry(self, p: Process, subsystem: int, fun: str, site: str,
                     size: int, old: Optional[int]) -> int:
        p.compute(self.profile.compute_per_call)
        return p.call(f"subsys{subsystem}", self._subsystem_entry,
                      subsystem, 0, fun, site, size, old)

    def _subsystem_entry(self, p: Process, subsystem: int, depth: int,
                         fun: str, site: str, size: int,
                         old: Optional[int]) -> int:
        profile = self.profile
        p.compute(profile.compute_per_call)
        if depth < profile.chain_length:
            return p.call(f"subsys{subsystem}_c{depth}",
                          self._subsystem_chain, subsystem, depth, fun,
                          site, size, old)
        return p.call(f"subsys{subsystem}_hub", self._hub, fun, site, size,
                      old)

    def _subsystem_chain(self, p: Process, subsystem: int, depth: int,
                         fun: str, site: str, size: int,
                         old: Optional[int]) -> int:
        profile = self.profile
        p.compute(profile.compute_per_call)
        if depth + 1 < profile.chain_length:
            return p.call(f"subsys{subsystem}_c{depth + 1}",
                          self._subsystem_chain, subsystem, depth + 1, fun,
                          site, size, old)
        return p.call(f"subsys{subsystem}_hub", self._hub, fun, site, size,
                      old)

    def _hub(self, p: Process, fun: str, site: str, size: int,
             old: Optional[int]) -> int:
        p.compute(self.profile.compute_per_call)
        if fun == "malloc":
            return p.malloc(size, site=site)
        if fun == "calloc":
            return p.calloc(1, size, site=site)
        if fun == "realloc":
            return p.realloc(old if old is not None else 0, size, site=site)
        raise ValueError(f"hub cannot allocate via {fun!r}")

    # -- noise subsystem ---------------------------------------------------

    def _noise_walk(self, p: Process, rng: random.Random) -> None:
        root = f"noise{rng.randrange(self.profile.noise_subsystems)}"
        p.call(root, self._noise_node)

    def _noise_node(self, p: Process) -> None:
        p.compute(self.profile.compute_per_call)
        children = self.graph.out_sites(p.current_function)
        if not children:
            return
        # Descend one pseudo-random child; CRC (not hash()) so every
        # configuration and interpreter run takes the identical path.
        index = zlib.crc32(p.current_function.encode()) % len(children)
        p.call(children[index].callee, self._noise_node)
