"""SPEC CPU2006-like benchmark workloads (Tables III/IV, Figures 8/9)."""

from .profiles import ALLOC_SCALE, SPEC_PROFILES, SpecProfile, profile_by_name, scaled
from .synth import SyntheticSpecProgram

__all__ = [
    "ALLOC_SCALE",
    "SPEC_PROFILES",
    "SpecProfile",
    "SyntheticSpecProgram",
    "profile_by_name",
    "scaled",
]
