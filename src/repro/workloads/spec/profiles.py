"""SPEC CPU2006 INT-like benchmark profiles.

The paper evaluates on the 12 SPEC CPU2006 integer benchmarks.  Per the
substitution rule, each is replaced by a synthetic guest program whose
*measurable characteristics* mirror the original:

* **Allocation statistics** (Table IV): the exact malloc/calloc/realloc
  call counts, scaled 1:10,000 for simulation speed (tiny counts are kept
  verbatim — ``429.mcf`` really does call ``malloc`` five times).
* **Call-graph shape**: how much of the program can reach an allocation
  (drives TCS), how chain-like the allocation region is (drives Slim),
  and how often branching is across *different* allocation APIs rather
  than the same one (drives Incremental) — tuned per benchmark to echo
  Table III's per-benchmark pattern (e.g. ``bzip2``/``sjeng`` barely
  allocate, so TCS prunes nearly everything; ``astar``'s allocation paths
  are long chains, so Slim collapses them).
* **Call intensity**: the ratio of dynamic calls that do *not* lead to an
  allocation (drives the FCS-vs-TCS dynamic overhead gap).

The knobs are structural, not fitted: the benchmark harness derives the
paper's comparisons from graphs and traces generated off these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Scale factor applied to Table IV counts (1:10,000).
ALLOC_SCALE = 10_000


def scaled(count: int) -> int:
    """Scale a Table IV count, keeping small counts verbatim."""
    if count < ALLOC_SCALE:
        return count
    return count // ALLOC_SCALE


@dataclass(frozen=True)
class SpecProfile:
    """Shape parameters for one synthetic SPEC-like benchmark."""

    name: str

    # -- Table IV (original, unscaled counts) ---------------------------
    malloc_calls: int
    calloc_calls: int
    realloc_calls: int

    # -- static call-graph shape ----------------------------------------
    #: Number of non-allocating ("noise") subsystems hanging off main.
    noise_subsystems: int
    #: Depth of each noise subsystem's call tree.
    noise_depth: int
    #: Fan-out at each level of a noise subsystem.
    noise_fanout: int
    #: Number of allocating subsystems hanging off main.
    alloc_subsystems: int
    #: Length of the non-branching wrapper chain above each allocation hub.
    chain_length: int
    #: Allocation sites per hub *per allocation function* (>= 2 makes the
    #: hub true-branching; 1 with several functions makes it
    #: false-branching, which only Incremental exploits).
    sites_per_target: int
    #: Which allocation functions each hub calls.
    hub_targets: Tuple[str, ...]
    #: Program phases: each phase reaches every allocating subsystem
    #: through its own call path, multiplying the population of distinct
    #: allocation contexts.  Phase usage is zipf-skewed, so median-
    #: frequency contexts (the Figure 8 patch methodology) are genuinely
    #: rare, as in real SPEC programs.
    phases: int

    # -- dynamic behaviour -----------------------------------------------
    #: Dynamic noise-subsystem walks per allocation performed.
    noise_walks_per_alloc: float
    #: Cycles of straight-line compute charged per function visited.
    compute_per_call: int
    #: Mean user size of an allocation in bytes.
    avg_alloc_size: int
    #: Target number of simultaneously live buffers.
    live_target: int
    #: Cycles of data-processing work the program does per allocated
    #: buffer (calibrated from real cycles-per-allocation so encoding
    #: overhead amortizes realistically).
    compute_per_alloc: int = 0
    #: One-time bulk compute (cycles) modeling the benchmark's dominant
    #: inner loops that neither call nor allocate — e.g. sjeng's game-tree
    #: search or bzip2's block sort.  This is what makes the
    #: allocation-light benchmarks show near-zero overhead in Figure 8,
    #: as they do in the paper.
    startup_compute: int = 0

    #: Table III's measured FCS size increase for the real benchmark,
    #: in percent.  The modeled base binary size is derived from it
    #: (base = FCS-inserted-bytes / pct), so the *relative* TCS/Slim/
    #: Incremental comparison is the measured result while the absolute
    #: anchor matches the paper's FCS column.
    fcs_size_pct: float = 12.0

    def base_binary_bytes(self, fcs_inserted_bytes: int) -> int:
        """Base binary size consistent with the Table III FCS anchor."""
        return max(1, int(fcs_inserted_bytes / (self.fcs_size_pct / 100.0)))

    @property
    def scaled_malloc(self) -> int:
        """Table IV malloc count after 1:10,000 scaling."""
        return scaled(self.malloc_calls)

    @property
    def scaled_calloc(self) -> int:
        """Table IV calloc count after 1:10,000 scaling."""
        return scaled(self.calloc_calls)

    @property
    def scaled_realloc(self) -> int:
        """Table IV realloc count after 1:10,000 scaling."""
        return scaled(self.realloc_calls)

    @property
    def total_scaled_allocations(self) -> int:
        """All scaled allocation calls the synthetic program makes."""
        return self.scaled_malloc + self.scaled_calloc + self.scaled_realloc


#: The 12 SPEC CPU2006 INT profiles.  Allocation counts are Table IV
#: verbatim; shape knobs are set per the benchmark's published character.
SPEC_PROFILES: Tuple[SpecProfile, ...] = (
    SpecProfile(
        name="400.perlbench",
        malloc_calls=346_405_116, calloc_calls=0, realloc_calls=11_736_402,
        noise_subsystems=4, noise_depth=3, noise_fanout=3,
        alloc_subsystems=6, chain_length=1, sites_per_target=3,
        hub_targets=("malloc", "realloc"),
        phases=10,
        noise_walks_per_alloc=0.05, compute_per_call=24,
        avg_alloc_size=120, live_target=600,
        compute_per_alloc=2400,
        startup_compute=0,
        fcs_size_pct=19.6,
    ),
    SpecProfile(
        name="401.bzip2",
        malloc_calls=174, calloc_calls=0, realloc_calls=0,
        noise_subsystems=8, noise_depth=4, noise_fanout=3,
        alloc_subsystems=1, chain_length=1, sites_per_target=2,
        hub_targets=("malloc",),
        phases=3,
        noise_walks_per_alloc=400.0, compute_per_call=60,
        avg_alloc_size=4096, live_target=120,
        compute_per_alloc=0,
        startup_compute=4000000,
        fcs_size_pct=8.8,
    ),
    SpecProfile(
        name="403.gcc",
        malloc_calls=23_690_559, calloc_calls=4_723_237, realloc_calls=44_688,
        noise_subsystems=6, noise_depth=4, noise_fanout=3,
        alloc_subsystems=8, chain_length=2, sites_per_target=2,
        hub_targets=("malloc", "calloc", "realloc"),
        phases=12,
        noise_walks_per_alloc=0.4, compute_per_call=30,
        avg_alloc_size=256, live_target=800,
        compute_per_alloc=12000,
        startup_compute=10000000,
        fcs_size_pct=18.6,
    ),
    SpecProfile(
        name="429.mcf",
        malloc_calls=5, calloc_calls=3, realloc_calls=0,
        noise_subsystems=2, noise_depth=2, noise_fanout=2,
        alloc_subsystems=1, chain_length=0, sites_per_target=2,
        hub_targets=("malloc", "calloc"),
        phases=2,
        noise_walks_per_alloc=150.0, compute_per_call=70,
        avg_alloc_size=16384, live_target=8,
        compute_per_alloc=0,
        startup_compute=5000000,
        fcs_size_pct=0.53,
    ),
    SpecProfile(
        name="445.gobmk",
        malloc_calls=606_463, calloc_calls=0, realloc_calls=52_115,
        noise_subsystems=7, noise_depth=4, noise_fanout=3,
        alloc_subsystems=3, chain_length=2, sites_per_target=2,
        hub_targets=("malloc", "realloc"),
        phases=8,
        noise_walks_per_alloc=6.0, compute_per_call=45,
        avg_alloc_size=200, live_target=300,
        compute_per_alloc=15000,
        startup_compute=5000000,
        fcs_size_pct=4.8,
    ),
    SpecProfile(
        name="456.hmmer",
        malloc_calls=1_983_014, calloc_calls=122_564, realloc_calls=368_696,
        noise_subsystems=5, noise_depth=3, noise_fanout=3,
        alloc_subsystems=4, chain_length=4, sites_per_target=1,
        hub_targets=("malloc", "calloc", "realloc"),
        phases=6,
        noise_walks_per_alloc=1.5, compute_per_call=40,
        avg_alloc_size=320, live_target=400,
        compute_per_alloc=8000,
        startup_compute=2000000,
        fcs_size_pct=18.9,
    ),
    SpecProfile(
        name="458.sjeng",
        malloc_calls=5, calloc_calls=0, realloc_calls=0,
        noise_subsystems=8, noise_depth=4, noise_fanout=3,
        alloc_subsystems=1, chain_length=0, sites_per_target=2,
        hub_targets=("malloc",),
        phases=2,
        noise_walks_per_alloc=300.0, compute_per_call=55,
        avg_alloc_size=65536, live_target=5,
        compute_per_alloc=0,
        startup_compute=6000000,
        fcs_size_pct=10.6,
    ),
    SpecProfile(
        name="462.libquantum",
        malloc_calls=1, calloc_calls=121, realloc_calls=58,
        noise_subsystems=3, noise_depth=3, noise_fanout=2,
        alloc_subsystems=1, chain_length=1, sites_per_target=1,
        hub_targets=("malloc", "calloc", "realloc"),
        phases=3,
        noise_walks_per_alloc=40.0, compute_per_call=65,
        avg_alloc_size=8192, live_target=40,
        compute_per_alloc=0,
        startup_compute=3000000,
        fcs_size_pct=15.0,
    ),
    SpecProfile(
        name="464.h264ref",
        malloc_calls=7_270, calloc_calls=170_518, realloc_calls=0,
        noise_subsystems=6, noise_depth=4, noise_fanout=3,
        alloc_subsystems=2, chain_length=3, sites_per_target=1,
        hub_targets=("malloc", "calloc"),
        phases=6,
        noise_walks_per_alloc=12.0, compute_per_call=50,
        avg_alloc_size=700, live_target=250,
        compute_per_alloc=15000,
        startup_compute=4000000,
        fcs_size_pct=8.3,
    ),
    SpecProfile(
        name="471.omnetpp",
        malloc_calls=267_064_936, calloc_calls=0, realloc_calls=0,
        noise_subsystems=4, noise_depth=3, noise_fanout=3,
        alloc_subsystems=5, chain_length=2, sites_per_target=3,
        hub_targets=("malloc",),
        phases=10,
        noise_walks_per_alloc=0.08, compute_per_call=26,
        avg_alloc_size=150, live_target=900,
        compute_per_alloc=2600,
        startup_compute=0,
        fcs_size_pct=15.8,
    ),
    SpecProfile(
        name="473.astar",
        malloc_calls=4_799_959, calloc_calls=0, realloc_calls=0,
        noise_subsystems=1, noise_depth=2, noise_fanout=2,
        alloc_subsystems=3, chain_length=6, sites_per_target=1,
        hub_targets=("malloc",),
        phases=5,
        noise_walks_per_alloc=0.3, compute_per_call=35,
        avg_alloc_size=900, live_target=500,
        compute_per_alloc=12000,
        startup_compute=3000000,
        fcs_size_pct=7.0,
    ),
    SpecProfile(
        name="483.xalancbmk",
        malloc_calls=135_155_553, calloc_calls=0, realloc_calls=0,
        noise_subsystems=6, noise_depth=4, noise_fanout=3,
        alloc_subsystems=5, chain_length=2, sites_per_target=2,
        hub_targets=("malloc",),
        phases=12,
        noise_walks_per_alloc=0.2, compute_per_call=28,
        avg_alloc_size=110, live_target=1_000,
        compute_per_alloc=5000,
        startup_compute=0,
        fcs_size_pct=14.5,
    ),
)


def profile_by_name(name: str) -> SpecProfile:
    """Look up a profile by benchmark name."""
    for profile in SPEC_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown SPEC profile {name!r}")
