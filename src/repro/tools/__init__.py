"""Operator tooling built on the library's introspection surfaces."""

from .heapmap import HeapMap, render_heap

__all__ = ["HeapMap", "render_heap"]
