"""ASCII heap maps: what the defended heap actually looks like.

Forensics and teaching aid: renders the
:class:`~repro.allocator.libc.LibcAllocator` chunk tiling with the
defense's annotations layered on — metadata words, guard pages (and
their protection state), quarantined regions.  Used by the examples and
handy in a debugger::

    print(render_heap(allocator))            # plain allocator
    print(render_heap(defended.underlying, defended=defended))

Output::

    heap map: 5 chunk(s), top at 0x555500000410
    0x555500000000  +128   USED              buffer
    0x555500000080  +4224  USED  [defended]  meta+user(100)+pad+GUARD(sealed)
    ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..allocator.chunk import HEADER_SIZE
from ..allocator.libc import LibcAllocator
from ..defense.interpose import DefendedAllocator
from ..defense.metadata import METADATA_SIZE, BufferMetadata
from ..machine.memory import PROT_NONE
from ..vulntypes import VulnType


@dataclass(frozen=True)
class HeapMapRow:
    """One chunk (or mapping) in the rendered heap."""

    base: int
    size: int
    in_use: bool
    kind: str
    detail: str

    def render(self) -> str:
        """One fixed-width map line."""
        state = "USED" if self.in_use else "free"
        tag = f"[{self.kind}]" if self.kind else ""
        return (f"0x{self.base:012x}  {'+' + str(self.size):<8} "
                f"{state:<5} {tag:<12} {self.detail}")


class HeapMap:
    """Builds and renders the annotated chunk map."""

    def __init__(self, allocator: LibcAllocator,
                 defended: Optional[DefendedAllocator] = None) -> None:
        self.allocator = allocator
        self.defended = defended
        self.rows: List[HeapMapRow] = []
        self._build()

    # ------------------------------------------------------------------

    def _quarantined_bases(self) -> set:
        if self.defended is None:
            return set()
        return {block.address
                for block in self.defended.quarantine.blocks()}

    def _build(self) -> None:
        quarantined = self._quarantined_bases()
        for chunk in self.allocator.walk_heap():
            detail = ""
            kind = ""
            if chunk.in_use and self.defended is not None:
                annotated = self._annotate_defended(chunk.user_address,
                                                    chunk.user_size)
                if annotated:
                    kind, detail = annotated
            if not chunk.in_use:
                detail = "coalesced free chunk"
            if chunk.base + HEADER_SIZE in quarantined or \
                    chunk.user_address in quarantined:
                kind = "quarantine"
                detail = "deferred free (reuse blocked)"
            self.rows.append(HeapMapRow(chunk.base, chunk.size,
                                        chunk.in_use, kind, detail))

    def _annotate_defended(self, user: int, user_size: int):
        """Decode the defense's metadata word when one is present.

        The word sits at the *defended* user address - 8, which for a
        Structure 1/2 buffer is the chunk's first user word.
        """
        memory = self.allocator.memory
        word = memory.read_word(user)
        try:
            meta = BufferMetadata.decode(word)
        except Exception:  # pragma: no cover - decode is total, but safe
            return None
        defended_user = user + METADATA_SIZE
        if meta.has_guard:
            guard_state = ("sealed"
                           if memory.protection_of(meta.guard_page)
                           == PROT_NONE else "open")
            inner = meta.guard_page - defended_user
            return ("defended",
                    f"meta+user({inner})+pad+GUARD@0x{meta.guard_page:x}"
                    f"({guard_state})")
        if meta.vuln is not VulnType.NONE or meta.user_size:
            bits = meta.vuln.describe()
            if 0 < meta.user_size <= user_size:
                return ("defended",
                        f"meta+user({meta.user_size}) vuln={bits}")
        return None

    # ------------------------------------------------------------------

    def render(self) -> str:
        """The full annotated map."""
        lines = [f"heap map: {len(self.rows)} chunk(s), "
                 f"top at 0x{self.allocator.top:012x}"]
        lines.extend(row.render() for row in self.rows)
        if self.defended is not None:
            held = self.defended.quarantine.held_bytes
            lines.append(f"quarantine: {len(self.defended.quarantine)} "
                         f"block(s), {held} bytes held")
        return "\n".join(lines)


def render_heap(allocator: LibcAllocator,
                defended: Optional[DefendedAllocator] = None) -> str:
    """One-shot convenience wrapper."""
    return HeapMap(allocator, defended).render()
