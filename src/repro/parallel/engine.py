"""Multi-process offline diagnosis: the parallel patch factory.

HeapTherapy+'s offline phase is embarrassingly parallel — each attack
report is an independent shadow-memory replay yielding ``{FUN, CCID, T}``
patches — so :class:`DiagnosisPool` fans a corpus out over a
``concurrent.futures.ProcessPoolExecutor``:

* The parent instruments every workload in the corpus **once** and ships
  the pickled program plan + codec to each worker through the pool
  *initializer* — per-task messages carry only an entry index, so the
  plan is never re-shipped per attack.
* Each worker replays its entries under
  :class:`~repro.patch.generator.OfflinePatchGenerator` and returns a
  compact :class:`~repro.parallel.result.DiagnosisResult` (patches,
  vulnerability classification, cycle totals) — plain data, no live
  allocator or machine references.
* The parent merges all results into per-workload
  :class:`~repro.defense.patch_table.PatchTable` objects with the
  order-independent merge of :func:`repro.patch.model.merge_patches`
  (widest-``T`` conflict policy, canonical sort), so ``jobs=N`` output
  is bit-identical to ``jobs=1``.

Worker lifecycle: workers are long-lived for the duration of one
:meth:`DiagnosisPool.diagnose` call; the initializer unpickles the plan
into a module global, and per-workload generators are built lazily on
first use so a worker only pays for the workloads it actually sees.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..ccencoding import Strategy
from ..ccencoding.base import Codec
from ..core.instrument import instrument
from ..defense.patch_table import PatchTable
from ..patch.generator import OfflinePatchGenerator
from ..patch.model import HeapPatch
from ..program.program import Program
from ..shadow.analyzer import DEFAULT_QUOTA
from ..workloads.corpus import (
    AttackCorpus,
    CorpusEntry,
    CorpusError,
    fuzz_workload_seed,
    is_fuzz_workload,
)
from ..workloads.vulnerable import workload_registry
from .result import CorpusDiagnosis, DiagnosisResult


class DiagnosisError(RuntimeError):
    """A worker failed to diagnose an entry (message-only: picklable)."""


@dataclass(frozen=True)
class ProgramPlan:
    """One workload's shipped state: the program and its deployed codec.

    Shipping the parent's codec (rather than re-instrumenting in the
    worker) guarantees every process keys patches off the *same* CCID
    space — re-deriving the plan per worker would merely repeat work,
    but shipping it makes the invariant structural.
    """

    key: str
    program: Program
    codec: Codec


@dataclass(frozen=True)
class DiagnosisPlan:
    """Everything a worker needs, shipped once via the pool initializer."""

    programs: Tuple[ProgramPlan, ...]
    entries: Tuple[CorpusEntry, ...]
    quarantine_quota: int = DEFAULT_QUOTA


class _WorkerState:
    """Per-process diagnosis state (one per pool worker, or in-process
    for the serial path — both run the identical code)."""

    def __init__(self, plan: DiagnosisPlan) -> None:
        self.plan = plan
        self.entries = plan.entries
        self._programs: Dict[str, ProgramPlan] = {
            program_plan.key: program_plan
            for program_plan in plan.programs}
        self._generators: Dict[str, OfflinePatchGenerator] = {}

    def _generator(self, key: str) -> OfflinePatchGenerator:
        generator = self._generators.get(key)
        if generator is None:
            program_plan = self._programs[key]
            generator = OfflinePatchGenerator(
                program_plan.program, program_plan.codec,
                quarantine_quota=self.plan.quarantine_quota)
            self._generators[key] = generator
        return generator

    def diagnose(self, index: int) -> DiagnosisResult:
        entry = self.entries[index]
        program_plan = self._programs.get(entry.workload)
        if program_plan is None:
            raise DiagnosisError(
                f"{entry.entry_id}: workload {entry.workload!r} has no "
                f"shipped program plan")
        args = entry.resolve_args(program_plan.program)
        start = time.perf_counter()
        try:
            generation = self._generator(entry.workload).replay(*args)
        except Exception as exc:  # pragma: no cover - workload bugs
            raise DiagnosisError(
                f"{entry.entry_id}: replay failed: {exc!r}") from None
        seconds = time.perf_counter() - start
        summary = generation.report.summary()
        cycles: Tuple[Tuple[str, float], ...] = ()
        if generation.meter is not None:
            cycles = tuple(sorted(generation.meter.snapshot().items()))
        return DiagnosisResult(
            entry_id=entry.entry_id,
            workload=entry.workload,
            input_name=entry.input_name,
            expects_detection=entry.expects_detection,
            patches=tuple(generation.patches),
            vulns=summary.kinds,
            summary=summary,
            crashed=generation.crashed,
            cycles=cycles,
            seconds=seconds,
        )


#: The unpickled plan of this worker process (set by the initializer).
_STATE: Optional[_WorkerState] = None


def _init_worker(payload: bytes, shared_pages: bool = False) -> None:
    """Pool initializer: unpickle the plan once per worker process.

    With ``shared_pages`` the worker first installs a process-wide
    shared-memory page arena, so every replay's page frames live in
    OS-shared segments rather than per-page private buffers (see
    :func:`repro.machine.pagestore.install_shared_worker_store`).
    """
    global _STATE
    if shared_pages:
        from ..machine.pagestore import install_shared_worker_store

        install_shared_worker_store("repro-diag-pages")
    _STATE = _WorkerState(pickle.loads(payload))


def _diagnose_index(index: int) -> DiagnosisResult:
    """Pool task: diagnose one corpus entry by index."""
    assert _STATE is not None, "worker initializer did not run"
    return _STATE.diagnose(index)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap workers, Linux default); the shipped plan
    stays pickle-clean either way so ``spawn`` hosts work too."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


class DiagnosisPool:
    """Process-pool diagnosis engine over an attack corpus.

    Args:
        jobs: worker processes; ``1`` (the default) runs in-process
            through the identical worker code path, and ``None`` uses
            the host's CPU count.
        strategy/scheme/prune: instrumentation options applied when the
            pool instruments corpus workloads itself (ignored for plans
            passed explicitly to :meth:`diagnose`).
        quarantine_quota: offline freed-block FIFO quota per replay.
    """

    def __init__(self, jobs: Optional[int] = 1, *,
                 strategy: Strategy = Strategy.INCREMENTAL,
                 scheme: str = "pcc",
                 prune: bool = False,
                 quarantine_quota: int = DEFAULT_QUOTA,
                 shared_pages: bool = False) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.strategy = strategy
        self.scheme = scheme
        self.prune = prune
        self.quarantine_quota = quarantine_quota
        #: Back worker page frames with shared-memory arenas.  A
        #: worker-process feature: the serial (jobs=1) path has no
        #: process boundary, so the flag is a no-op there — results are
        #: independent of frame backing either way (the determinism
        #: tests pin this).
        self.shared_pages = shared_pages

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def build_plan(self, corpus: AttackCorpus,
                   programs: Optional[Mapping[str, Tuple[Program, Codec]]]
                   = None) -> DiagnosisPlan:
        """Instrument each corpus workload once and freeze the plan.

        ``programs`` overrides registry resolution with pre-instrumented
        ``key -> (program, codec)`` pairs (the pipeline integration path,
        where :class:`~repro.core.pipeline.HeapTherapy` already holds a
        deployed codec).
        """
        plans: List[ProgramPlan] = []
        registry = None
        for key in corpus.workloads():
            if programs is not None and key in programs:
                program, codec = programs[key]
            else:
                if is_fuzz_workload(key):
                    # Synthesized corpora reference the deterministic
                    # fuzz generator by seed; the import is lazy because
                    # the fuzz package itself fans out through
                    # repro.parallel (a cycle at module level).
                    from ..fuzz.generator import (
                        build_program,
                        spec_for_seed,
                    )

                    program = build_program(
                        spec_for_seed(fuzz_workload_seed(key)))
                else:
                    if registry is None:
                        registry = workload_registry()
                    factory = registry.get(key)
                    if factory is None:
                        raise CorpusError(
                            f"unknown workload {key!r} in corpus"
                            + (f" {corpus.source!r}"
                               if corpus.source else ""))
                    program = factory()
                codec = instrument(program, strategy=self.strategy,
                                   scheme=self.scheme,
                                   prune=self.prune).codec
            plans.append(ProgramPlan(key, program, codec))
        return DiagnosisPlan(tuple(plans), tuple(corpus.entries),
                             self.quarantine_quota)

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def diagnose(self, corpus: AttackCorpus,
                 programs: Optional[Mapping[str, Tuple[Program, Codec]]]
                 = None) -> CorpusDiagnosis:
        """Replay every corpus entry; merge patches deterministically."""
        plan = self.build_plan(corpus, programs)
        start = time.perf_counter()
        if self.jobs == 1 or len(plan.entries) <= 1:
            state = _WorkerState(plan)
            results = [state.diagnose(index)
                       for index in range(len(plan.entries))]
        else:
            results = self._diagnose_parallel(plan)
        seconds = time.perf_counter() - start
        merge_start = time.perf_counter()
        tables = self._merge(results)
        merge_seconds = time.perf_counter() - merge_start
        return CorpusDiagnosis(results=results, jobs=self.jobs,
                               seconds=seconds,
                               merge_seconds=merge_seconds,
                               tables=tables)

    def _diagnose_parallel(self,
                           plan: DiagnosisPlan) -> List[DiagnosisResult]:
        try:
            payload = pickle.dumps(plan,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise DiagnosisError(
                f"diagnosis plan is not picklable ({exc!r}); parallel "
                f"workers need pickle-clean programs and codecs — run "
                f"with jobs=1 or make the program picklable") from None
        chunksize = max(1, len(plan.entries) // (self.jobs * 4))
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 mp_context=_pool_context(),
                                 initializer=_init_worker,
                                 initargs=(payload, self.shared_pages)
                                 ) as executor:
            return list(executor.map(_diagnose_index,
                                     range(len(plan.entries)),
                                     chunksize=chunksize))

    # ------------------------------------------------------------------
    # Deterministic merge
    # ------------------------------------------------------------------

    @staticmethod
    def _merge(results: List[DiagnosisResult]) -> Dict[str, PatchTable]:
        """Per-workload, order-independent patch-table merge.

        Determinism argument: grouping is by workload key (a pure
        function of each result), and within a group the merge of
        :meth:`PatchTable.merged` unions vulnerability masks and params
        — commutative, associative operations — then sorts canonically.
        No step observes arrival order, worker identity or wall time, so
        any ``jobs`` count yields byte-identical serialized tables.
        """
        groups: Dict[str, List[Tuple[HeapPatch, ...]]] = {}
        for result in results:
            groups.setdefault(result.workload, []).append(result.patches)
        return {workload: PatchTable.merged(patch_groups)
                for workload, patch_groups in groups.items()}
