"""Per-attack and per-corpus outcomes of the parallel patch factory.

A :class:`DiagnosisResult` is the compact record one worker ships back
for one attack report: the derived ``{FUN, CCID, T}`` patches, the
vulnerability classification, the replay's cycle decomposition and its
wall time.  Everything in it is plain data — pickled across the process
boundary, it never references an allocator, a machine or an analyzer
(see :class:`repro.shadow.report.ReportSummary`).

A :class:`CorpusDiagnosis` is the merged outcome over one corpus: the
ordered result list plus one deterministic, per-workload
:class:`~repro.defense.patch_table.PatchTable` set.  Its
:meth:`~CorpusDiagnosis.serialize` form is the bit-identity anchor —
the same corpus diagnosed with any ``jobs`` count serializes to the
same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..defense.patch_table import PatchTable
from ..patch.config import HEADER
from ..patch.model import HeapPatch, patch_sort_key
from ..shadow.report import ReportSummary
from ..vulntypes import VulnType


@dataclass(frozen=True)
class DiagnosisResult:
    """What diagnosing one attack report produced."""

    #: The corpus entry this result answers.
    entry_id: str
    #: Registry key of the workload that was replayed.
    workload: str
    #: Which canonical input was replayed ("attack"/"benign"), if named.
    input_name: Optional[str]
    #: Whether the entry was expected to expose a vulnerability.
    expects_detection: bool
    #: Derived patches, already in canonical order.
    patches: Tuple[HeapPatch, ...]
    #: Union of all vulnerability kinds the replay exposed.
    vulns: VulnType
    #: Compact digest of the shadow-analysis report.
    summary: ReportSummary
    #: Fault message when the replay crashed mid-run (patches up to the
    #: crash are still present).
    crashed: Optional[str]
    #: Deterministic cycle totals of the replay, by meter category.
    cycles: Tuple[Tuple[str, float], ...]
    #: Wall-clock seconds the replay took on its worker.
    seconds: float

    @property
    def detected(self) -> bool:
        """True when the replay produced at least one patch."""
        return bool(self.patches)

    @property
    def ok(self) -> bool:
        """Did the entry behave as its corpus marking expects?"""
        return self.detected if self.expects_detection else True

    def cycle_total(self) -> float:
        """All simulated cycles the replay charged."""
        return sum(total for _, total in self.cycles)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload for one entry."""
        return {
            "entry": self.entry_id,
            "workload": self.workload,
            "input": self.input_name,
            "detected": self.detected,
            "expected": self.expects_detection,
            "vulns": self.vulns.describe(),
            "patches": [patch.render() for patch in self.patches],
            "warnings": self.summary.warnings,
            "crashed": self.crashed,
            "cycles": {category: total for category, total in self.cycles},
            "seconds": round(self.seconds, 6),
        }


@dataclass
class CorpusDiagnosis:
    """Merged outcome of diagnosing one corpus."""

    #: Per-entry results, in corpus order.
    results: List[DiagnosisResult]
    #: Worker count the fan-out ran with.
    jobs: int
    #: Wall-clock seconds of the fan-out (replays only).
    seconds: float
    #: Wall-clock seconds the deterministic merge took.
    merge_seconds: float = 0.0
    #: Per-workload merged tables (built once by the pool).
    tables: Dict[str, PatchTable] = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        """True when any entry produced patches."""
        return any(result.detected for result in self.results)

    @property
    def attacks(self) -> int:
        """How many attack reports were diagnosed."""
        return len(self.results)

    def table_for(self, workload: str) -> PatchTable:
        """The merged patch table for one workload (empty if none)."""
        return self.tables.get(workload, PatchTable.empty())

    def failures(self) -> List[DiagnosisResult]:
        """Entries that expected a detection but produced no patch."""
        return [result for result in self.results if not result.ok]

    def serialize(self) -> str:
        """Canonical multi-workload configuration text.

        Workload sections appear in sorted key order and each section's
        patches in :func:`~repro.patch.model.patch_sort_key` order, so
        this string depends only on the corpus content — never on worker
        count, scheduling or result arrival order.  The text remains a
        loadable patch-config file (section markers are comments).
        """
        lines = [HEADER]
        for workload in sorted(self.tables):
            table = self.tables[workload]
            if not len(table):
                continue
            lines.append(f"# workload: {workload}")
            lines.extend(patch.render()
                         for patch in sorted(table.patches,
                                             key=patch_sort_key))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """JSON document for ``repro diagnose --json``."""
        return {
            "jobs": self.jobs,
            "entries": len(self.results),
            "detected": sum(1 for r in self.results if r.detected),
            "failures": [r.entry_id for r in self.failures()],
            "seconds": round(self.seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "throughput_per_sec": round(
                len(self.results) / self.seconds, 2) if self.seconds
            else 0.0,
            "results": [result.to_dict() for result in self.results],
            "patch_tables": {
                workload: table.serialize()
                for workload, table in sorted(self.tables.items())},
        }

    def render(self) -> str:
        """Human-readable per-entry outcome table."""
        lines = [f"=== corpus diagnosis: {len(self.results)} entr"
                 f"{'y' if len(self.results) == 1 else 'ies'}, "
                 f"jobs={self.jobs}, {self.seconds:.3f}s ==="]
        for result in self.results:
            status = "DETECTED" if result.detected else (
                "clean" if not result.expects_detection else "MISSED")
            extra = f" crashed: {result.crashed}" if result.crashed else ""
            lines.append(
                f"{result.entry_id:<40} {status:<9} "
                f"T={result.vulns.describe():<20} "
                f"patches={len(result.patches)}{extra}")
        total_patches = sum(len(t.patches) for t in self.tables.values())
        lines.append(
            f"merged: {total_patches} patch(es) across "
            f"{sum(1 for t in self.tables.values() if len(t))} "
            f"workload(s) in {self.merge_seconds * 1000:.2f}ms")
        return "\n".join(lines)
