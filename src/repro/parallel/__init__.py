"""Parallel patch factory: multi-process offline diagnosis.

Fan an attack corpus out over worker processes, replay each report under
shadow analysis, and merge the resulting patches into deterministic
per-workload patch tables (``jobs=N`` bit-identical to ``jobs=1``).
"""

from .engine import (
    DiagnosisError,
    DiagnosisPlan,
    DiagnosisPool,
    ProgramPlan,
)
from .fanout import fanout_map, resolve_jobs
from .result import CorpusDiagnosis, DiagnosisResult

__all__ = [
    "CorpusDiagnosis",
    "DiagnosisError",
    "DiagnosisPlan",
    "DiagnosisPool",
    "DiagnosisResult",
    "ProgramPlan",
    "fanout_map",
    "resolve_jobs",
]
