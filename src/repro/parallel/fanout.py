"""Generic deterministic fan-out over the diagnosis process pool.

:class:`~repro.parallel.engine.DiagnosisPool` is specialized to corpus
diagnosis; :func:`fanout_map` is the reusable primitive underneath it —
"map a picklable function over items across N worker processes and
return the results in item order".  The fuzz campaign runner shards
seeds through it.

Determinism contract: results are returned in the order of ``items``
(``executor.map`` semantics), never in completion order, so ``jobs=N``
output is byte-identical to ``jobs=1`` as long as ``fn`` itself is a
pure function of its item.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from .engine import _pool_context

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def _init_fanout_worker(shared_pages: bool) -> None:
    """Worker initializer: optional shared-memory page backing."""
    if shared_pages:
        from ..machine.pagestore import install_shared_worker_store

        install_shared_worker_store("repro-fanout-pages")


def resolve_jobs(jobs: int = 0) -> int:
    """Normalize a jobs count (``0``/negative = host CPU count)."""
    if jobs < 1:
        return os.cpu_count() or 1
    return jobs


def fanout_map(fn: Callable[[_ItemT], _ResultT],
               items: Sequence[_ItemT],
               jobs: int = 1,
               shared_pages: bool = False) -> List[_ResultT]:
    """Map ``fn`` over ``items`` across ``jobs`` worker processes.

    ``fn`` must be a module-level function and every item/result must be
    picklable (the :mod:`repro.parallel` rules).  ``jobs=1`` — or a
    single item — runs in-process through the identical code path, with
    no executor.  ``shared_pages`` backs each worker's page frames with
    a shared-memory arena (no-op in-process; results never depend on
    frame backing).
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=_pool_context(),
                             initializer=_init_fanout_worker,
                             initargs=(shared_pages,)) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))
