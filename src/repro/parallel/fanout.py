"""Generic deterministic fan-out over the diagnosis process pool.

:class:`~repro.parallel.engine.DiagnosisPool` is specialized to corpus
diagnosis; :func:`fanout_map` is the reusable primitive underneath it —
"map a picklable function over items across N worker processes and
return the results in item order".  The fuzz campaign runner shards
seeds through it.

Determinism contract: results are returned in the order of ``items``
(``executor.map`` semantics), never in completion order, so ``jobs=N``
output is byte-identical to ``jobs=1`` as long as ``fn`` itself is a
pure function of its item.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from .engine import _pool_context

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def resolve_jobs(jobs: int = 0) -> int:
    """Normalize a jobs count (``0``/negative = host CPU count)."""
    if jobs < 1:
        return os.cpu_count() or 1
    return jobs


def fanout_map(fn: Callable[[_ItemT], _ResultT],
               items: Sequence[_ItemT],
               jobs: int = 1) -> List[_ResultT]:
    """Map ``fn`` over ``items`` across ``jobs`` worker processes.

    ``fn`` must be a module-level function and every item/result must be
    picklable (the :mod:`repro.parallel` rules).  ``jobs=1`` — or a
    single item — runs in-process through the identical code path, with
    no executor.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=_pool_context()) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))
