"""Boundary-tag chunk headers for the simulated libc allocator.

The allocator manages the heap as a tiling of *chunks*, each preceded by a
16-byte header in the style of dlmalloc/ptmalloc:

::

    chunk base ->  +--------------------------------+
                   | prev_size (8 bytes)            |
                   +--------------------------------+
                   | size | flags (8 bytes)         |
    user data ->   +--------------------------------+
                   | ...  size - 16 bytes ...       |
                   +--------------------------------+

``size`` is always a multiple of 16 and includes the header.  Bit 0 of the
size word is the IN_USE flag for *this* chunk.  ``prev_size`` is kept valid
for every chunk so that backward coalescing can locate the previous chunk's
header without a footer walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..machine.memory import VirtualMemory

#: Size of the per-chunk header (prev_size + size/flags words).
HEADER_SIZE: int = 16

#: All chunk sizes are multiples of this.
CHUNK_ALIGN: int = 16

#: Smallest chunk the allocator will create (header + 16 usable bytes).
MIN_CHUNK_SIZE: int = 32

#: Flag bit: this chunk is allocated.
IN_USE: int = 0x1

_FLAG_MASK: int = CHUNK_ALIGN - 1
_SIZE_MASK: int = ~_FLAG_MASK
_WORD_MASK: int = (1 << 64) - 1


@dataclass(frozen=True)
class ChunkView:
    """A decoded chunk header.

    Attributes:
        base: address of the chunk header.
        size: total chunk size in bytes, header included.
        prev_size: total size of the physically preceding chunk.
        in_use: whether the chunk is currently allocated.
    """

    base: int
    size: int
    prev_size: int
    in_use: bool

    @property
    def user_address(self) -> int:
        """Address of the first usable byte."""
        return self.base + HEADER_SIZE

    @property
    def user_size(self) -> int:
        """Number of usable bytes in the chunk."""
        return self.size - HEADER_SIZE

    @property
    def next_base(self) -> int:
        """Address of the physically following chunk header."""
        return self.base + self.size

    @property
    def prev_base(self) -> int:
        """Address of the physically preceding chunk header."""
        return self.base - self.prev_size


def request_to_chunk_size(request: int) -> int:
    """Round a user request up to a legal chunk size.

    A request of 0 is legal (``malloc(0)`` must return a unique pointer) and
    maps to the minimum chunk size.
    """
    if request < 0:
        raise ValueError(f"negative allocation request: {request}")
    total = request + HEADER_SIZE
    total = (total + CHUNK_ALIGN - 1) & _SIZE_MASK
    return max(total, MIN_CHUNK_SIZE)


def write_chunk(mem: VirtualMemory, base: int, size: int, prev_size: int,
                in_use: bool) -> None:
    """Write a chunk header at ``base``.

    The two header words are emitted as one word-pair store: ``base`` is
    16-aligned, so the store never crosses a page and always takes the
    memory system's single-translation word-view fast path.
    """
    if size % CHUNK_ALIGN or size < MIN_CHUNK_SIZE:
        raise ValueError(f"illegal chunk size {size}")
    mem.write_word_pair(base, prev_size,
                        (size | IN_USE) if in_use else size)


def read_header(mem: VirtualMemory, base: int) -> Tuple[int, int, bool]:
    """Decode the header at ``base`` as ``(size, prev_size, in_use)``.

    The tuple-returning twin of :func:`read_chunk` for the allocator's
    hot paths: one word-pair load, no dataclass construction.
    """
    prev_size, size_word = mem.read_word_pair(base)
    return (size_word & _SIZE_MASK, prev_size,
            bool(size_word & IN_USE))


def read_chunk(mem: VirtualMemory, base: int) -> ChunkView:
    """Decode the chunk header at ``base``."""
    size, prev_size, in_use = read_header(mem, base)
    return ChunkView(base=base, size=size, prev_size=prev_size,
                     in_use=in_use)


def set_in_use(mem: VirtualMemory, base: int, in_use: bool) -> None:
    """Flip only the IN_USE flag of the chunk at ``base``."""
    size_word = mem.read_word(base + 8)
    if in_use:
        size_word |= IN_USE
    else:
        size_word &= ~IN_USE
    mem.write_word(base + 8, size_word)


def set_prev_size(mem: VirtualMemory, base: int, prev_size: int) -> None:
    """Update the ``prev_size`` field of the chunk at ``base``."""
    mem.write_word(base, prev_size)
