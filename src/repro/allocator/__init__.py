"""Heap allocator substrate: the "underlying allocator" of the paper.

The defense layer in :mod:`repro.defense` wraps any :class:`Allocator`
without touching its internals — the paper's "no dependency on specific
heap allocators" property.
"""

from .base import ALLOCATION_FUNCTIONS, Allocator
from .chunk import (
    CHUNK_ALIGN,
    HEADER_SIZE,
    IN_USE,
    MIN_CHUNK_SIZE,
    ChunkView,
    read_chunk,
    request_to_chunk_size,
    write_chunk,
)
from .libc import GROWTH_MIN, SMALL_MAX, TRIM_THRESHOLD, LibcAllocator
from .segregated import SegregatedAllocator
from .stats import AllocationStats

__all__ = [
    "ALLOCATION_FUNCTIONS",
    "AllocationStats",
    "Allocator",
    "CHUNK_ALIGN",
    "ChunkView",
    "GROWTH_MIN",
    "HEADER_SIZE",
    "IN_USE",
    "LibcAllocator",
    "MIN_CHUNK_SIZE",
    "SMALL_MAX",
    "SegregatedAllocator",
    "TRIM_THRESHOLD",
    "read_chunk",
    "request_to_chunk_size",
    "write_chunk",
]
