"""A second, structurally different allocator: segregated storage.

The paper's property (5) — *no dependency on specific heap allocators* —
is only credible if the defense demonstrably works over allocators with
different internals.  ``SegregatedAllocator`` is deliberately nothing
like :class:`~repro.allocator.libc.LibcAllocator`:

* memory comes from ``mmap`` slabs, not ``sbrk`` (no contiguous heap,
  no boundary tags, no coalescing);
* small objects live in power-of-two size classes with per-class free
  slot lists (tcmalloc-style); slots are naturally aligned to their
  class size;
* large objects get dedicated page-aligned mappings released with
  ``munmap`` on free;
* object size is tracked in an internal page-map, not in headers before
  the user data.

The full HeapTherapy+ pipeline runs unchanged over it (see
``tests/allocator/test_segregated.py`` and the transparency tests),
because the defense only ever touches the public ``Allocator`` API.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.errors import DoubleFree, InvalidFree, OutOfMemoryError
from ..machine.layout import (PAGE_SIZE, SIZE_MAX, is_power_of_two,
                              page_align_up)
from ..machine.memory import VirtualMemory
from .base import Allocator
from .stats import AllocationStats

#: Smallest size class in bytes.
MIN_CLASS = 16

#: Largest size served from slabs; bigger requests get dedicated maps.
MAX_CLASS = 4096

#: Bytes per slab mapping.
SLAB_SIZE = 16 * PAGE_SIZE


def _size_class(size: int) -> int:
    """Round a request up to its power-of-two class."""
    if size <= MIN_CLASS:
        return MIN_CLASS
    return 1 << (size - 1).bit_length()


class SegregatedAllocator(Allocator):
    """Size-class slab allocator over ``mmap``."""

    def __init__(self, memory: Optional[VirtualMemory] = None,
                 map_cache: int = 0) -> None:
        self.memory = memory if memory is not None else VirtualMemory()
        #: class size -> free slot addresses (LIFO).
        self._free_slots: Dict[int, List[int]] = {}
        #: user address -> (kind, info): ("slot", class) or
        #: ("large", (map_base, map_length)).
        self._objects: Dict[int, Tuple[str, object]] = {}
        #: Addresses that were once live (double-free detection).
        self._retired: set = set()
        self.stats = AllocationStats()
        #: Slab mappings created, for introspection.
        self.slabs_mapped = 0
        #: Large-mapping cache (tcmalloc's span cache / dlmalloc's mmap
        #: threshold caching): up to ``map_cache`` freed dedicated
        #: mappings are retained per run and reused LIFO for same-length
        #: requests instead of ``munmap``/``mmap`` round trips.  Off by
        #: default — freed large objects then unmap eagerly, which is
        #: what the use-after-free detection tests rely on.
        self._map_cache: Dict[int, List[int]] = {}
        self._map_cache_limit = map_cache
        self._map_cached = 0

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _refill(self, cls: int) -> None:
        base = self.memory.mmap(SLAB_SIZE)
        self.slabs_mapped += 1
        slots = self._free_slots.setdefault(cls, [])
        for offset in range(0, SLAB_SIZE, cls):
            slots.append(base + offset)

    def _alloc_small(self, size: int) -> int:
        cls = _size_class(size)
        slots = self._free_slots.get(cls)
        if not slots:
            self._refill(cls)
            slots = self._free_slots[cls]
        address = slots.pop()
        self._objects[address] = ("slot", cls)
        self._retired.discard(address)
        return address

    def _alloc_large(self, size: int, alignment: int = PAGE_SIZE) -> int:
        if alignment <= PAGE_SIZE:
            length = page_align_up(max(size, 1))
            cached = self._map_cache.get(length)
            if cached:
                base = cached.pop()
                self._map_cached -= 1
            else:
                base = self.memory.mmap(length)
            self._objects[base] = ("large", (base, length))
            self._retired.discard(base)
            return base
        # Over-map, align inside, remember the true mapping extent.
        length = page_align_up(size + alignment)
        base = self.memory.mmap(length)
        user = (base + alignment - 1) & ~(alignment - 1)
        self._objects[user] = ("large", (base, length))
        self._retired.discard(user)
        return user

    def _allocate(self, size: int, alignment: int = 0) -> int:
        if alignment > MAX_CLASS or size > MAX_CLASS:
            return self._alloc_large(size, max(alignment, PAGE_SIZE))
        if alignment > 0:
            # Slots are naturally aligned to their class size; choose a
            # class no smaller than the alignment.
            cls = max(_size_class(max(size, 1)), alignment)
            return self._alloc_small(cls)
        return self._alloc_small(max(size, 1))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        if size < 0:
            raise ValueError("malloc: negative size")
        address = self._allocate(size)
        self.stats.record_alloc("malloc", size)
        return address

    def calloc(self, nmemb: int, size: int) -> int:
        if nmemb < 0 or size < 0:
            raise ValueError("calloc: negative argument")
        total = nmemb * size
        if total > SIZE_MAX:
            # glibc's overflow check: the product cannot be represented
            # in a size_t, so the request must fail, not wrap.
            raise OutOfMemoryError(
                f"calloc: {nmemb} * {size} overflows size_t")
        address = self._allocate(total)
        self.memory.fill(address, max(total, 1), 0)
        self.stats.record_alloc("calloc", total)
        return address

    def memalign(self, alignment: int, size: int) -> int:
        if not is_power_of_two(alignment):
            raise ValueError(
                f"memalign: alignment {alignment} is not a power of two")
        address = self._allocate(size, alignment)
        self.stats.record_alloc("memalign", size)
        return address

    def realloc(self, address: int, size: int) -> int:
        if address == 0:
            return self.malloc(size)
        if size == 0:
            self.free(address)
            return 0
        old_usable = self.malloc_usable_size(address)
        new_address = self._allocate(size)
        keep = min(old_usable, size)
        if keep:
            self.memory.write(new_address, self.memory.read(address, keep))
        self.stats.record_alloc("realloc", size)
        self._release(address)
        self.stats.record_free(old_usable)
        return new_address

    def free(self, address: int) -> None:
        if address == 0:
            return
        usable = self._release(address)
        self.stats.record_free(usable)

    # -- batched entry points (fused loops; see Allocator.malloc_run) --

    def malloc_run(self, sizes: Sequence[int]) -> List[int]:
        n = len(sizes)
        if n == 0:
            return []
        first = sizes[0]
        if 0 < first <= MAX_CLASS and sizes.count(first) == n:
            # Uniform small run (the request-batch shape): resolve the
            # size class once and take the slots in one slice — the
            # same addresses, in the same order, n pops would yield.
            cls = _size_class(first)
            slots = self._free_slots.get(cls)
            if slots is None:
                self._refill(cls)
                slots = self._free_slots[cls]
            out: List[int] = []
            while len(out) < n:
                # Scalar order: drain the current free list from its
                # tail, refilling only once it runs empty — a refill
                # mid-run must not jump ahead of older slots.
                if not slots:
                    self._refill(cls)
                take = min(n - len(out), len(slots))
                split = len(slots) - take
                chunk = slots[split:]
                chunk.reverse()
                del slots[split:]
                out.extend(chunk)
            entry = ("slot", cls)
            self._objects.update((address, entry) for address in out)
            if self._retired:
                self._retired.difference_update(out)
            self.stats.record_malloc_run(sizes)
            return out
        if first > MAX_CLASS and sizes.count(first) == n:
            # Uniform large run (response bodies): page-align once, then
            # drain the map cache LIFO before mapping fresh — the same
            # addresses, in the same order, n ``_alloc_large`` calls
            # would produce.
            length = page_align_up(first)
            cached = self._map_cache.get(length)
            out = []
            if cached:
                take = min(n, len(cached))
                split = len(cached) - take
                out = cached[split:]
                out.reverse()
                del cached[split:]
                self._map_cached -= take
            mmap = self.memory.mmap
            while len(out) < n:
                out.append(mmap(length))
            self._objects.update(
                (base, ("large", (base, length))) for base in out)
            if self._retired:
                self._retired.difference_update(out)
            self.stats.record_malloc_run(sizes)
            return out
        allocate = self._allocate
        out = []
        append = out.append
        for size in sizes:
            if size < 0:
                raise ValueError("malloc: negative size")
            append(allocate(size))
        self.stats.record_malloc_run(sizes)
        return out

    def free_run(self, addresses: Sequence[int]) -> None:
        # Bulk-pop every entry first (C-speed ``map``), then release by
        # shape.  Uniform runs — one size class, or one large length —
        # are the request-batch shapes and take list-wise fast paths
        # that do exactly what ``n`` scalar ``_release`` calls would.
        live = [address for address in addresses if address]
        n = len(live)
        if n == 0:
            self.stats.record_free_run([])
            return
        objects = self._objects
        entries = list(map(objects.pop, live, repeat(None, n)))
        if None in entries:
            # Unknown or double free somewhere in the run: restore the
            # popped entries and replay scalar, which releases the
            # prefix and raises the canonical error at the bad address.
            for address, entry in zip(live, entries):
                if entry is not None:
                    objects[address] = entry
            for address in live:
                self._release(address)
        first = entries[0]
        if first[0] == "slot":
            if entries.count(first) == n:
                cls = first[1]
                self._retired.update(live)
                self._free_slots.setdefault(cls, []).extend(live)
                self.stats.record_free_run([cls] * n)
                return
        elif first[0] == "large":
            length = first[1][1]
            if all(entry[0] == "large" and entry[1] == (address, length)
                   for address, entry in zip(live, entries)):
                self._retired.update(live)
                room = self._map_cache_limit - self._map_cached
                take = min(room, n) if room > 0 else 0
                if take:
                    self._map_cache.setdefault(
                        length, []).extend(live[:take])
                    self._map_cached += take
                munmap = self.memory.munmap
                for base in live[take:]:
                    munmap(base, length)
                self.stats.record_free_run([length] * n)
                return
        retired_add = self._retired.add
        free_slots = self._free_slots
        map_cache = self._map_cache
        map_cache_limit = self._map_cache_limit
        munmap = self.memory.munmap
        usables: List[int] = []
        append = usables.append
        for address, entry in zip(live, entries):
            retired_add(address)
            kind, info = entry
            if kind == "slot":
                free_slots.setdefault(info, []).append(address)
                append(info)
                continue
            base, length = info
            if address == base and self._map_cached < map_cache_limit:
                map_cache.setdefault(length, []).append(base)
                self._map_cached += 1
            else:
                munmap(base, length)
            append(base + length - address)
        self.stats.record_free_run(usables)

    def _release(self, address: int) -> int:
        """Return an object to its slab or unmap it; returns its size."""
        entry = self._objects.pop(address, None)
        if entry is None:
            if address in self._retired:
                raise DoubleFree(address)
            raise InvalidFree(address,
                              reason="free of pointer not from this heap")
        self._retired.add(address)
        kind, info = entry
        if kind == "slot":
            self._free_slots.setdefault(info, []).append(address)
            return info
        base, length = info
        if address == base and self._map_cached < self._map_cache_limit:
            # Retain the mapping for same-length reuse (over-aligned
            # mappings are excluded: their user address differs from the
            # mapping base, so reuse could not honor the alignment).
            self._map_cache.setdefault(length, []).append(base)
            self._map_cached += 1
        else:
            self.memory.munmap(base, length)
        return base + length - address

    def malloc_usable_size(self, address: int) -> int:
        if address == 0:
            return 0
        entry = self._objects.get(address)
        if entry is None:
            raise InvalidFree(address, reason="unknown pointer")
        kind, info = entry
        if kind == "slot":
            return info
        base, length = info
        return base + length - address

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_buffer_count(self) -> int:
        """Number of outstanding objects."""
        return len(self._objects)
