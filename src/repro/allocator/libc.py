"""A libc-style heap allocator over the simulated virtual memory.

``LibcAllocator`` is the "underlying allocator" of the paper's deployment
story: HeapTherapy+ interposes the allocation API *in front of* an allocator
like this one and must work without modifying it or relying on its
internals.  Implementing a realistic allocator (boundary tags, size-class
bins, splitting, coalescing, top-chunk extension via ``sbrk``, heap trim)
rather than a toy bump pointer gives the transparency claim teeth and makes
fragmentation/residency behaviour in the memory benchmarks meaningful.

Design, following dlmalloc/ptmalloc at small scale:

* The heap is a contiguous tiling of chunks from ``heap_start`` up to
  ``top``; the *top region* ``[top, brk)`` is untiled wilderness extended
  with ``sbrk`` on demand and trimmed back when large.
* Free chunks live in exact-size LIFO bins up to ``SMALL_MAX`` and in one
  sorted best-fit list above that.
* ``free`` coalesces with both physical neighbours and with the top region.
* ``memalign`` over-allocates, splits off the misaligned prefix as a free
  chunk, and returns a naturally-headered aligned chunk, so ``free`` needs
  no special casing for aligned buffers.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.errors import DoubleFree, InvalidFree, OutOfMemoryError
from ..machine.layout import (
    HEAP_BASE,
    SIZE_MAX,
    page_align_down,
    page_align_up,
)
from ..machine.memory import VirtualMemory
from .base import Allocator
from .chunk import (
    CHUNK_ALIGN,
    HEADER_SIZE,
    IN_USE,
    MIN_CHUNK_SIZE,
    ChunkView,
    read_chunk,
    read_header,
    request_to_chunk_size,
    write_chunk,
)
from .stats import AllocationStats

#: Largest chunk size served from exact-size bins.
SMALL_MAX: int = 2048

#: Number of exact-size small bins (sizes 0, 16, ..., SMALL_MAX).
_SMALL_BIN_COUNT = SMALL_MAX // CHUNK_ALIGN + 1

#: Minimum ``sbrk`` growth, to amortize system-call cost.
GROWTH_MIN: int = 64 * 1024

#: Trim the heap back when the top region exceeds this many bytes.
TRIM_THRESHOLD: int = 256 * 1024

#: Bytes of top region retained after a trim.
TRIM_KEEP: int = 64 * 1024

#: Requests at or above this size get a dedicated ``mmap`` region
#: (glibc's M_MMAP_THRESHOLD), released back to the system on free.
MMAP_THRESHOLD: int = 128 * 1024


# ----------------------------------------------------------------------
# Read-only size-class geometry (for static analyses; the allocator
# itself never consults these — they mirror its decision rules exactly)
# ----------------------------------------------------------------------


def request_uses_mmap(request: int) -> bool:
    """True when ``malloc(request)`` is served by a dedicated mapping.

    Mirrors the threshold test in :meth:`LibcAllocator.malloc`; such
    buffers live in their own mapping and are never heap-adjacent to
    any other allocation.
    """
    return request + HEADER_SIZE >= MMAP_THRESHOLD


def bin_kind(request: int) -> str:
    """Free-list class for a request: ``small``, ``large`` or ``mmap``.

    ``small`` chunks recycle through exact-size LIFO bins (deterministic
    hole reuse), ``large`` through the sorted best-fit list.
    """
    if request_uses_mmap(request):
        return "mmap"
    return ("small" if request_to_chunk_size(request) <= SMALL_MAX
            else "large")


def small_bin_index(request: int) -> Optional[int]:
    """Exact-size small-bin index for a request, or None.

    Two requests with the same index free into (and are served from)
    the same LIFO bin — the reuse relation heap-layout plans exploit.
    """
    if request_uses_mmap(request):
        return None
    csize = request_to_chunk_size(request)
    return csize // CHUNK_ALIGN if csize <= SMALL_MAX else None


def hole_reusable(hole_request: int, request: int) -> bool:
    """Can ``malloc(request)`` be served from a freed ``hole_request``
    chunk?

    The feasibility precondition ``hole-reuse`` layout plans rely on:
    the freed placeholder's chunk must be recyclable by the follow-up
    request — either both land in the same exact-size small bin (LIFO,
    fully deterministic) or the hole's chunk is at least as large as the
    request's (best-fit / split path).  ``mmap``-class requests never
    reuse heap holes.
    """
    if request_uses_mmap(hole_request) or request_uses_mmap(request):
        return False
    hole_bin = small_bin_index(hole_request)
    if hole_bin is not None and hole_bin == small_bin_index(request):
        return True
    return (request_to_chunk_size(hole_request)
            >= request_to_chunk_size(request))


class LibcAllocator(Allocator):
    """Free-list allocator with boundary-tag coalescing.

    Args:
        memory: the virtual memory to allocate from.  A fresh
            :class:`VirtualMemory` is created when omitted.
    """

    def __init__(self, memory: Optional[VirtualMemory] = None) -> None:
        self.memory = memory if memory is not None else VirtualMemory()
        self.heap_start: int = HEAP_BASE
        self._top: int = self.heap_start
        self._top_max: int = self.heap_start
        self._top_prev_size: int = 0
        #: Exact-size LIFO bins indexed by ``size // CHUNK_ALIGN``; the
        #: companion bitmap has bit ``i`` set iff bin ``i`` is non-empty,
        #: so the smallest fitting bin is found with one bit-scan instead
        #: of a linear probe over bin sizes.
        self._small_bins: List[List[int]] = [
            [] for _ in range(_SMALL_BIN_COUNT)]
        self._small_map: int = 0
        self._large_bin: List[Tuple[int, int]] = []  # sorted (size, base)
        self._free_index: Dict[int, int] = {}        # base -> size
        self._live: Dict[int, int] = {}              # user addr -> chunk size
        #: user addr -> (map base, map length, user size) for buffers
        #: served by dedicated mappings (requests >= MMAP_THRESHOLD).
        self._mmapped: Dict[int, Tuple[int, int, int]] = {}
        self.stats = AllocationStats()
        #: Neither ``memory`` nor ``stats`` is ever rebound after
        #: construction, so the hottest callees are prebound once —
        #: malloc/free skip two attribute walks per heap call.
        self._read_word = self.memory.read_word
        self._write_word = self.memory.write_word
        self._write_word_pair = self.memory.write_word_pair
        self._record_malloc = self.stats.record_malloc
        self._record_free = self.stats.record_free

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        if size + HEADER_SIZE >= MMAP_THRESHOLD:
            user = self._alloc_mmapped(size)
        else:
            base, chunk_size = self._allocate_chunk(
                request_to_chunk_size(size))
            user = base + HEADER_SIZE
            self._live[user] = chunk_size
        self._record_malloc(size)
        return user

    def _alloc_mmapped(self, size: int) -> int:
        """Serve one large request from a dedicated mapping."""
        length = page_align_up(size + HEADER_SIZE)
        map_base = self.memory.mmap(length)
        user = map_base + HEADER_SIZE
        self._mmapped[user] = (map_base, length, size)
        self._live[user] = size + HEADER_SIZE
        return user

    def calloc(self, nmemb: int, size: int) -> int:
        if nmemb < 0 or size < 0:
            raise ValueError("calloc: negative argument")
        total = nmemb * size
        if total > SIZE_MAX:
            # glibc's overflow check: the product cannot be represented
            # in a size_t, so the request must fail, not wrap.
            raise OutOfMemoryError(
                f"calloc: {nmemb} * {size} overflows size_t")
        if total + HEADER_SIZE >= MMAP_THRESHOLD:
            # Fresh mappings read as zero; no memset needed (and doing
            # one would needlessly materialize every page).
            user = self._alloc_mmapped(total)
        else:
            base, chunk_size = self._allocate_chunk(
                request_to_chunk_size(total))
            user = base + HEADER_SIZE
            self.memory.fill(user, total if total else 1, 0)
            self._live[user] = chunk_size
        self.stats.record_alloc("calloc", total)
        return user

    def free(self, address: int) -> None:
        if address == 0:
            return
        chunk_size = self._live.pop(address, None)
        if chunk_size is None:
            self._validate_live(address, "free")  # raises the typed error
        self._record_free(chunk_size - HEADER_SIZE)
        if self._mmapped:
            mapping = self._mmapped.pop(address, None)
            if mapping is not None:
                map_base, length, _ = mapping
                self.memory.munmap(map_base, length)
                return
        self._free_chunk(address - HEADER_SIZE, chunk_size)

    # -- batched entry points (fused loops; see Allocator.malloc_run) --

    def malloc_run(self, sizes: Sequence[int]) -> List[int]:
        allocate_chunk = self._allocate_chunk
        live = self._live
        out: List[int] = []
        append = out.append
        for size in sizes:
            if size + HEADER_SIZE >= MMAP_THRESHOLD:
                user = self._alloc_mmapped(size)
            else:
                base, chunk_size = allocate_chunk(
                    request_to_chunk_size(size))
                user = base + HEADER_SIZE
                live[user] = chunk_size
            append(user)
        self.stats.record_malloc_run(sizes)
        return out

    def free_run(self, addresses: Sequence[int]) -> None:
        live = self._live
        mmapped = self._mmapped
        free_chunk = self._free_chunk
        usables: List[int] = []
        append = usables.append
        for address in addresses:
            if address == 0:
                continue
            chunk_size = live.pop(address, None)
            if chunk_size is None:
                self._validate_live(address, "free")
            append(chunk_size - HEADER_SIZE)
            if mmapped:
                mapping = mmapped.pop(address, None)
                if mapping is not None:
                    map_base, length, _ = mapping
                    self.memory.munmap(map_base, length)
                    continue
            free_chunk(address - HEADER_SIZE, chunk_size)
        self.stats.record_free_run(usables)

    def realloc(self, address: int, size: int) -> int:
        if address == 0:
            return self.malloc(size)
        if size == 0:
            self.free(address)
            return 0
        self._validate_live(address, "realloc")
        if address in self._mmapped:
            return self._realloc_mmapped(address, size)
        base = address - HEADER_SIZE
        chunk = read_chunk(self.memory, base)
        new_csize = request_to_chunk_size(size)
        if size + HEADER_SIZE >= MMAP_THRESHOLD:
            # Crossing the threshold upward: move to a dedicated map.
            new_user = self._alloc_mmapped(size)
            keep = min(chunk.user_size, size)
            self.memory.write(new_user, self.memory.read(address, keep))
            self.stats.record_alloc("realloc", size)
            del self._live[address]
            self.stats.record_free(chunk.user_size)
            self._free_chunk(base)
            return new_user

        if chunk.size >= new_csize:
            kept = (new_csize
                    if chunk.size - new_csize >= MIN_CHUNK_SIZE
                    else chunk.size)
            self._maybe_split(base, chunk.size, new_csize)
            self._live[address] = kept
            self.stats.record_alloc("realloc", size)
            self.stats.record_free(chunk.size - HEADER_SIZE)
            return address

        grown_size = self._grow_in_place(chunk, new_csize)
        if grown_size:
            self._live[address] = grown_size
            self.stats.record_alloc("realloc", size)
            self.stats.record_free(chunk.size - HEADER_SIZE)
            return address

        new_base, new_size = self._allocate_chunk(new_csize)
        new_user = new_base + HEADER_SIZE
        old_user_size = chunk.user_size
        self.memory.write(new_user,
                          self.memory.read(address, min(old_user_size, size)))
        self._live[new_user] = new_size
        self.stats.record_alloc("realloc", size)
        del self._live[address]
        self.stats.record_free(old_user_size)
        self._free_chunk(base)
        return new_user

    def _realloc_mmapped(self, address: int, size: int) -> int:
        """Resize a dedicated-mapping buffer (always by move)."""
        map_base, length, old_size = self._mmapped[address]
        if size + HEADER_SIZE >= MMAP_THRESHOLD:
            new_user = self._alloc_mmapped(size)
        else:
            base, chunk_size = self._allocate_chunk(
                request_to_chunk_size(size))
            new_user = base + HEADER_SIZE
            self._live[new_user] = chunk_size
        keep = min(old_size, size)
        if keep:
            self.memory.write(new_user, self.memory.read(address, keep))
        self.stats.record_alloc("realloc", size)
        del self._live[address]
        del self._mmapped[address]
        self.stats.record_free(old_size)
        self.memory.munmap(map_base, length)
        return new_user

    def memalign(self, alignment: int, size: int) -> int:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError(
                f"memalign: alignment {alignment} is not a power of two")
        if alignment <= CHUNK_ALIGN:
            # Every chunk's user area is already 16-byte aligned.
            user = self.malloc(size)
            self.stats.malloc_calls -= 1
            self.stats.memalign_calls += 1
            return user
        slack = alignment + MIN_CHUNK_SIZE
        big_csize = request_to_chunk_size(size + slack)
        base, _ = self._allocate_chunk(big_csize)
        big = read_chunk(self.memory, base)

        aligned_user = -(-(base + HEADER_SIZE) // alignment) * alignment
        if aligned_user != base + HEADER_SIZE:
            gap = aligned_user - HEADER_SIZE - base
            if gap < MIN_CHUNK_SIZE:
                aligned_user += alignment
                gap = aligned_user - HEADER_SIZE - base
            # Carve: [base, base+gap) becomes a free prefix chunk;
            # the aligned chunk starts at aligned_user - HEADER_SIZE.
            aligned_base = base + gap
            aligned_size = big.size - gap
            write_chunk(self.memory, base, gap, big.prev_size, in_use=True)
            write_chunk(self.memory, aligned_base, aligned_size, gap,
                        in_use=True)
            self._set_successor_prev_size(aligned_base, aligned_size)
            self._free_chunk(base)
            base = aligned_base
            self._maybe_split(base, aligned_size, request_to_chunk_size(size))
        else:
            self._maybe_split(base, big.size, request_to_chunk_size(size))

        user = base + HEADER_SIZE
        self._live[user] = read_chunk(self.memory, base).size
        self.stats.record_alloc("memalign", size)
        return user

    def malloc_usable_size(self, address: int) -> int:
        if address == 0:
            return 0
        self._validate_live(address, "malloc_usable_size")
        mapping = self._mmapped.get(address)
        if mapping is not None:
            map_base, length, _ = mapping
            return map_base + length - address
        return read_chunk(self.memory, address - HEADER_SIZE).user_size

    # ------------------------------------------------------------------
    # Introspection (for tests and reports; not used by the defense)
    # ------------------------------------------------------------------

    @property
    def live_buffer_count(self) -> int:
        """Number of currently outstanding allocations."""
        return len(self._live)

    @property
    def free_chunk_count(self) -> int:
        """Number of free chunks across all bins."""
        return len(self._free_index)

    @property
    def top(self) -> int:
        """Start of the untiled top region (end of the chunk tiling)."""
        return self._top

    def walk_heap(self) -> List[ChunkView]:
        """Decode every chunk from ``heap_start`` to ``top``, in order.

        Used by consistency checks: the walk must tile the heap exactly.
        """
        chunks = []
        cursor = self.heap_start
        while cursor < self._top:
            chunk = read_chunk(self.memory, cursor)
            chunks.append(chunk)
            if chunk.size < MIN_CHUNK_SIZE:
                raise AssertionError(
                    f"corrupt heap: chunk at 0x{cursor:x} has size "
                    f"{chunk.size}")
            cursor = chunk.next_base
        return chunks

    def check_consistency(self) -> None:
        """Assert structural invariants of the heap; raises on violation."""
        prev_size = 0
        for chunk in self.walk_heap():
            if chunk.prev_size != prev_size:
                raise AssertionError(
                    f"chunk at 0x{chunk.base:x}: prev_size {chunk.prev_size} "
                    f"!= actual previous size {prev_size}")
            if not chunk.in_use and chunk.base not in self._free_index:
                raise AssertionError(
                    f"free chunk at 0x{chunk.base:x} missing from free index")
            if chunk.in_use and chunk.base in self._free_index:
                raise AssertionError(
                    f"in-use chunk at 0x{chunk.base:x} present in free index")
            prev_size = chunk.size
        if self._top_prev_size != prev_size:
            raise AssertionError("top prev_size out of sync")

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _validate_live(self, address: int, api: str) -> int:
        size = self._live.get(address)
        if size is None:
            if (address % CHUNK_ALIGN == 0
                    and self.heap_start < address < self._top_max):
                # Plausible chunk address that was live once: double free.
                raise DoubleFree(address)
            raise InvalidFree(address,
                              reason=f"{api} of pointer not from this heap")
        return size

    def _bin_insert(self, base: int, size: int) -> None:
        self._free_index[base] = size
        if size <= SMALL_MAX:
            index = size // CHUNK_ALIGN
            self._small_bins[index].append(base)
            self._small_map |= 1 << index
        else:
            bisect.insort(self._large_bin, (size, base))

    def _bin_remove(self, base: int, size: int) -> None:
        del self._free_index[base]
        if size <= SMALL_MAX:
            index = size // CHUNK_ALIGN
            bin_list = self._small_bins[index]
            # LIFO bins are nearly always hit at the tail (that is what
            # _find_fit returns); pop() there instead of a front scan.
            if bin_list[-1] == base:
                bin_list.pop()
            else:
                bin_list.remove(base)
            if not bin_list:
                self._small_map &= ~(1 << index)
        else:
            index = bisect.bisect_left(self._large_bin, (size, base))
            if (index >= len(self._large_bin)
                    or self._large_bin[index] != (size, base)):
                raise AssertionError(
                    f"free chunk (size={size}, base=0x{base:x}) missing "
                    f"from large bin")
            del self._large_bin[index]

    def _find_fit(self, csize: int) -> Optional[Tuple[int, int]]:
        """Return ``(base, size)`` of a free chunk able to hold ``csize``.

        Small requests: one bit-scan over the non-empty-bin bitmap finds
        the smallest bin of size >= ``csize`` in O(1) — same best-fit
        LIFO policy as a linear probe, without visiting empty bins.
        """
        if csize <= SMALL_MAX:
            mask = self._small_map >> (csize // CHUNK_ALIGN)
            if mask:
                index = ((csize // CHUNK_ALIGN)
                         + (mask & -mask).bit_length() - 1)
                return self._small_bins[index][-1], index * CHUNK_ALIGN
        large_bin = self._large_bin
        if not large_bin:
            return None
        index = bisect.bisect_left(large_bin, (csize, 0))
        if index < len(large_bin):
            size, base = large_bin[index]
            return base, size
        return None

    def _allocate_chunk(self, csize: int) -> Tuple[int, int]:
        """Obtain an in-use chunk of at least ``csize`` bytes.

        Returns ``(base, chunk size)`` so callers never re-read the
        header they just caused to be written.
        """
        # Fused small-bin hit: the bit-scan of _find_fit and the LIFO
        # pop of _bin_remove touch the same bin back to back, so the
        # dominant malloc path does both in one pass with no calls.
        if csize <= SMALL_MAX:
            shift = csize // CHUNK_ALIGN
            mask = self._small_map >> shift
            if mask:
                index = shift + (mask & -mask).bit_length() - 1
                bin_list = self._small_bins[index]
                base = bin_list.pop()
                if not bin_list:
                    self._small_map &= ~(1 << index)
                del self._free_index[base]
                size = index * CHUNK_ALIGN
                remainder = size - csize
                if remainder < MIN_CHUNK_SIZE:
                    self._write_word(base + 8, size | IN_USE)
                    return base, size
                return self._split_chunk(base, csize, remainder)
        fit = self._find_fit(csize)
        if fit is None:
            return self._extend_top(csize), csize
        base, size = fit
        self._bin_remove(base, size)
        remainder = size - csize
        if remainder < MIN_CHUNK_SIZE:
            # A binned chunk's size word is exactly ``size`` (no flags
            # set), so IN_USE is a direct store, not a read-modify-write.
            self._write_word(base + 8, size | IN_USE)
            return base, size
        return self._split_chunk(base, csize, remainder)

    def _split_chunk(self, base: int, csize: int,
                     remainder: int) -> Tuple[int, int]:
        """Keep ``csize`` of a just-unbinned chunk, free the tail.

        A binned chunk's neighbours are in-use or the top (adjacent
        free chunks always coalesce), so the tail cannot coalesce
        either way — its free header can be written directly, skipping
        _free_chunk's probes and the transient in-use header store.
        """
        prev_size = self._read_word(base)
        # Direct pair stores: sizes here are legal by construction, so
        # write_chunk's validation wrapper is pure per-call overhead.
        self._write_word_pair(base, prev_size, csize | IN_USE)
        tail = base + csize
        self._write_word_pair(tail, csize, remainder)
        self._set_successor_prev_size(tail, remainder)
        self._bin_insert(tail, remainder)
        return base, csize

    def _extend_top(self, csize: int) -> int:
        """Carve a fresh chunk of exactly ``csize`` bytes from the top."""
        needed = self._top + csize - self.memory.brk
        if needed > 0:
            self.memory.sbrk(page_align_up(max(needed, GROWTH_MIN)))
        base = self._top
        self._write_word_pair(base, self._top_prev_size,
                              csize | IN_USE)
        self._top = base + csize
        if self._top > self._top_max:
            self._top_max = self._top
        self._top_prev_size = csize
        return base

    def _maybe_split(self, base: int, size: int, keep: int) -> None:
        """Split the in-use chunk ``(base, size)``, freeing the tail."""
        remainder = size - keep
        if remainder < MIN_CHUNK_SIZE:
            return
        prev_size = self.memory.read_word(base)
        write_chunk(self.memory, base, keep, prev_size, in_use=True)
        tail = base + keep
        write_chunk(self.memory, tail, remainder, keep, in_use=True)
        self._set_successor_prev_size(tail, remainder)
        self._free_chunk(tail, remainder)

    def _set_successor_prev_size(self, base: int, size: int) -> None:
        """Fix the ``prev_size`` of whatever follows chunk ``(base, size)``."""
        successor = base + size
        if successor == self._top:
            self._top_prev_size = size
        elif successor < self._top:
            self._write_word(successor, size)

    def _grow_in_place(self, chunk: ChunkView, new_csize: int) -> int:
        """Try to grow ``chunk`` to ``new_csize`` without moving it.

        Absorbs a free successor chunk, or extends into the top region
        when the chunk is the last one tiled.  Returns the chunk's new
        size on success, 0 on failure.
        """
        base = chunk.base
        size = chunk.size
        next_base = base + size

        if next_base == self._top:
            delta = new_csize - size
            needed = self._top + delta - self.memory.brk
            if needed > 0:
                self.memory.sbrk(page_align_up(max(needed, GROWTH_MIN)))
            write_chunk(self.memory, base, new_csize, chunk.prev_size,
                        in_use=True)
            self._top = base + new_csize
            if self._top > self._top_max:
                self._top_max = self._top
            self._top_prev_size = new_csize
            return new_csize

        if next_base < self._top:
            next_size = self._free_index.get(next_base)
            if next_size is not None and size + next_size >= new_csize:
                self._bin_remove(next_base, next_size)
                merged = size + next_size
                write_chunk(self.memory, base, merged, chunk.prev_size,
                            in_use=True)
                self._set_successor_prev_size(base, merged)
                self._maybe_split(base, merged, new_csize)
                return (new_csize
                        if merged - new_csize >= MIN_CHUNK_SIZE
                        else merged)
        return 0

    def _free_chunk(self, base: int,
                    size: Optional[int] = None) -> None:
        """Release the in-use chunk at ``base`` with full coalescing.

        Callers that already know the chunk size pass it to skip the
        header read; neighbour free/in-use status comes from the
        allocator's own free index (kept in lockstep with the headers),
        so the common no-coalesce case costs one word read for
        ``prev_size`` plus the free-header store.
        """
        free_index = self._free_index
        if size is None:
            size, prev_size, _ = read_header(self.memory, base)
        else:
            prev_size = self._read_word(base)

        # Coalesce forward.
        next_size = free_index.get(base + size)
        if next_size is not None:
            self._bin_remove(base + size, next_size)
            size += next_size

        # Coalesce backward.
        if prev_size and base > self.heap_start:
            prev_base = base - prev_size
            prev_free = free_index.get(prev_base)
            if prev_free is not None:
                self._bin_remove(prev_base, prev_free)
                base = prev_base
                size += prev_size
                prev_size = self._read_word(prev_base)

        if base + size == self._top:
            # Merge into the top region.
            self._top = base
            self._top_prev_size = prev_size
            self._maybe_trim()
            return

        # Inlined _set_successor_prev_size + _bin_insert: the top-merge
        # case returned above, so the successor is strictly below the
        # top and its prev_size is a direct store; the bin insert is
        # the small-bin append in every non-huge workload.
        self._write_word_pair(base, prev_size, size)
        self._write_word(base + size, size)
        free_index[base] = size
        if size <= SMALL_MAX:
            index = size // CHUNK_ALIGN
            self._small_bins[index].append(base)
            self._small_map |= 1 << index
        else:
            bisect.insort(self._large_bin, (size, base))

    def _maybe_trim(self) -> None:
        """Return excess top-region pages to the system."""
        slack = self.memory.brk - self._top
        if slack < TRIM_THRESHOLD:
            return
        delta = page_align_down(slack - TRIM_KEEP)
        if delta > 0:
            self.memory.sbrk(-delta)
