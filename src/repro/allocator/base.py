"""Abstract allocator interface.

HeapTherapy+'s key deployment property is that the online defense is
*transparent to the underlying heap allocator*: it interposes the public
allocation API and never reaches into allocator internals.  Expressing that
API as an abstract base class makes the property checkable — the defense
layer (:class:`repro.defense.interpose.DefendedAllocator`) is itself an
``Allocator`` that wraps any other ``Allocator``, and the test suite swaps
in a recording mock to prove only these methods are ever called.

The method set mirrors the allocation family the paper intercepts:
``malloc``, ``calloc``, ``realloc``, ``free``, ``memalign`` (and its ISO
spelling ``aligned_alloc``), plus ``malloc_usable_size`` as a query.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from ..machine.memory import VirtualMemory


class Allocator(abc.ABC):
    """The public heap-allocation API of a libc-style allocator."""

    #: The virtual memory this allocator serves buffers from.  The defense
    #: layer needs it to install guard pages with ``mprotect``.
    memory: VirtualMemory

    @abc.abstractmethod
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the user address (never 0)."""

    @abc.abstractmethod
    def calloc(self, nmemb: int, size: int) -> int:
        """Allocate and zero ``nmemb * size`` bytes."""

    @abc.abstractmethod
    def realloc(self, address: int, size: int) -> int:
        """Resize the buffer at ``address`` to ``size`` bytes.

        ``realloc(0, n)`` behaves as ``malloc(n)``; ``realloc(p, 0)`` frees
        and returns 0, matching classic glibc semantics.
        """

    @abc.abstractmethod
    def free(self, address: int) -> None:
        """Release the buffer at ``address``; ``free(0)`` is a no-op."""

    @abc.abstractmethod
    def memalign(self, alignment: int, size: int) -> int:
        """Allocate ``size`` bytes aligned to ``alignment`` (a power of 2)."""

    def aligned_alloc(self, alignment: int, size: int) -> int:
        """ISO C11 spelling of :meth:`memalign`."""
        return self.memalign(alignment, size)

    def posix_memalign(self, alignment: int, size: int) -> int:
        """POSIX spelling of :meth:`memalign` (returns the address).

        POSIX requires the alignment to be a power of two multiple of
        ``sizeof(void *)``; anything else is EINVAL, raised here before
        the request reaches the concrete allocator.
        """
        if alignment % 8 or alignment & (alignment - 1) or alignment <= 0:
            raise ValueError("posix_memalign: alignment must be a "
                             "power-of-two multiple of sizeof(void*)")
        return self.memalign(alignment, size)

    @abc.abstractmethod
    def malloc_usable_size(self, address: int) -> int:
        """Return the usable size of the buffer at ``address``."""

    # -- batched entry points ------------------------------------------
    #
    # The serving engine issues heap traffic in same-call-site runs (one
    # request batch allocates N same-shaped buffers back to back).  The
    # run methods are observation-identical to a loop over the per-call
    # API — same addresses, same stats, same errors in the same order —
    # so concrete allocators may override them with fused loops but are
    # never required to.

    def malloc_run(self, sizes: Sequence[int]) -> List[int]:
        """Allocate one buffer per entry of ``sizes``, in order."""
        malloc = self.malloc
        return [malloc(size) for size in sizes]

    def free_run(self, addresses: Sequence[int]) -> None:
        """Release every buffer in ``addresses``, in order."""
        free = self.free
        for address in addresses:
            free(address)


#: Names of the allocation entry points, as they appear in patches
#: (the FUN field of a ``{FUN, CCID, T}`` patch tuple).
ALLOCATION_FUNCTIONS = (
    "malloc",
    "calloc",
    "realloc",
    "memalign",
    "aligned_alloc",
    "posix_memalign",
)
