"""Allocation statistics.

Table IV of the paper reports, per SPEC CPU2006 benchmark, how many times
``malloc``, ``calloc`` and ``realloc`` were invoked.  ``AllocationStats`` is
the counter object every allocator (and the defense interposer) updates so
the reproduction can print the same table for the synthetic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence


@dataclass(slots=True)
class AllocationStats:
    """Lifetime counters for one allocator instance.

    ``slots=True``: both the interposer and the underlying allocator
    update these counters on *every* heap call, so attribute access here
    is hot-path work.
    """

    malloc_calls: int = 0
    calloc_calls: int = 0
    realloc_calls: int = 0
    free_calls: int = 0
    memalign_calls: int = 0

    #: Total bytes handed out across all allocations.
    bytes_allocated: int = 0
    #: Bytes in currently live buffers.
    bytes_live: int = 0
    #: High-water mark of ``bytes_live``.
    bytes_peak: int = 0
    #: Number of currently live buffers.
    live_buffers: int = 0
    #: High-water mark of ``live_buffers``.
    peak_buffers: int = 0

    #: Histogram of request sizes, bucketed by power of two.
    size_histogram: Dict[int, int] = field(default_factory=dict)

    def record_malloc(self, size: int) -> None:
        """``record_alloc("malloc", size)`` without the entry-point
        dispatch — the fast path for the one function that dominates
        every workload's call mix."""
        self.malloc_calls += 1
        self.bytes_allocated += size
        live = self.bytes_live + size
        self.bytes_live = live
        if live > self.bytes_peak:
            self.bytes_peak = live
        buffers = self.live_buffers + 1
        self.live_buffers = buffers
        if buffers > self.peak_buffers:
            self.peak_buffers = buffers
        bucket = size.bit_length() or 1
        histogram = self.size_histogram
        histogram[bucket] = histogram.get(bucket, 0) + 1

    def record_alloc(self, fun: str, size: int) -> None:
        """Record one successful allocation through entry point ``fun``."""
        if fun == "malloc":
            self.malloc_calls += 1
        elif fun == "calloc":
            self.calloc_calls += 1
        elif fun == "realloc":
            self.realloc_calls += 1
        elif fun in ("memalign", "aligned_alloc", "posix_memalign"):
            self.memalign_calls += 1
        else:
            raise ValueError(f"unknown allocation function {fun!r}")
        self.bytes_allocated += size
        live = self.bytes_live + size
        self.bytes_live = live
        if live > self.bytes_peak:
            self.bytes_peak = live
        buffers = self.live_buffers + 1
        self.live_buffers = buffers
        if buffers > self.peak_buffers:
            self.peak_buffers = buffers
        bucket = size.bit_length() or 1
        self.size_histogram[bucket] = self.size_histogram.get(bucket, 0) + 1

    def record_free(self, size: int) -> None:
        """Record one ``free`` of a buffer of ``size`` bytes."""
        self.free_calls += 1
        self.bytes_live -= size
        self.live_buffers -= 1

    # -- batched recorders (fused loops; see Allocator.malloc_run) -----
    #
    # Counter-exact equivalents of n per-call records.  Exactness of the
    # high-water marks follows from monotonicity: within an all-malloc
    # run ``bytes_live``/``live_buffers`` only grow, so the peak after
    # the run equals the running peak the per-call path would have seen;
    # an all-free run only shrinks them and never moves a peak.

    def record_malloc_run(self, sizes: Sequence[int]) -> None:
        """Record a run of ``malloc`` allocations in one update."""
        n = len(sizes)
        total = sum(sizes)
        self.malloc_calls += n
        self.bytes_allocated += total
        live = self.bytes_live + total
        self.bytes_live = live
        if live > self.bytes_peak:
            self.bytes_peak = live
        buffers = self.live_buffers + n
        self.live_buffers = buffers
        if buffers > self.peak_buffers:
            self.peak_buffers = buffers
        histogram = self.size_histogram
        first = sizes[0] if n else 0
        if n and sizes.count(first) == n:
            bucket = first.bit_length() or 1
            histogram[bucket] = histogram.get(bucket, 0) + n
        else:
            for size in sizes:
                bucket = size.bit_length() or 1
                histogram[bucket] = histogram.get(bucket, 0) + 1

    def record_free_run(self, sizes: Sequence[int]) -> None:
        """Record a run of ``free`` calls in one update."""
        self.free_calls += len(sizes)
        self.bytes_live -= sum(sizes)
        self.live_buffers -= len(sizes)

    @property
    def total_allocations(self) -> int:
        """All allocation calls regardless of entry point."""
        return (self.malloc_calls + self.calloc_calls + self.realloc_calls
                + self.memalign_calls)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict snapshot, convenient for report tables."""
        return {
            "malloc": self.malloc_calls,
            "calloc": self.calloc_calls,
            "realloc": self.realloc_calls,
            "memalign": self.memalign_calls,
            "free": self.free_calls,
            "bytes_allocated": self.bytes_allocated,
            "bytes_live": self.bytes_live,
            "bytes_peak": self.bytes_peak,
            "live_buffers": self.live_buffers,
            "peak_buffers": self.peak_buffers,
        }
