"""Campaign runner: seed sharding, shrinking, reproducer files.

A *campaign* evaluates the differential oracle over a contiguous seed
range, optionally sharded across worker processes through
:func:`repro.parallel.fanout.fanout_map`.  Reports come back in seed
order and contain no timing or host-dependent data, so a campaign's JSON
is byte-identical for any ``--jobs`` value — the same determinism
contract as the parallel diagnosis engine.

Failing seeds can be *shrunk*: :func:`minimize_spec` greedily removes
helpers, wrapper levels, and buffer bytes while the oracle still fails,
yielding the smallest program that reproduces the property violation.
The result is dumped as a ``fuzz-repro-<seed>.json`` file that
:func:`load_reproducer` turns back into a spec — committable as a
regression workload (see ``docs/TESTING.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..parallel.fanout import fanout_map
from .generator import (
    BUFFER_SIZES,
    FuzzSpec,
    spec_for_seed,
    spec_from_dict,
    spec_to_dict,
)
from .oracle import CaseReport, evaluate_spec

#: Reproducer file format version.
SCHEMA_VERSION = 1


def run_case(seed: int) -> CaseReport:
    """Evaluate one seed (module-level: picklable for the pool)."""
    return evaluate_spec(spec_for_seed(seed))


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one fuzz campaign."""

    seed: int
    count: int
    jobs: int
    reports: Tuple[CaseReport, ...]
    #: Paths of reproducer files written for failing seeds.
    reproducers: Tuple[str, ...] = ()

    @property
    def failures(self) -> Tuple[CaseReport, ...]:
        """The failing case reports, in seed order."""
        return tuple(report for report in self.reports if not report.ok)

    @property
    def ok(self) -> bool:
        """True when every case passed the oracle."""
        return not self.failures

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON document (identical for any jobs count)."""
        kinds: Dict[str, int] = {}
        for report in self.reports:
            kinds[report.kind] = kinds.get(report.kind, 0) + 1
        return {
            "schema": SCHEMA_VERSION,
            "seed": self.seed,
            "count": self.count,
            "cases": len(self.reports),
            "kinds": dict(sorted(kinds.items())),
            "failed": len(self.failures),
            "failures": [
                {
                    "seed": report.seed,
                    "name": report.name,
                    "kind": report.kind,
                    "alloc_fun": report.alloc_fun,
                    "failures": list(report.failures),
                }
                for report in self.failures
            ],
            "reproducers": list(self.reproducers),
        }

    def render(self) -> str:
        """Canonical serialized JSON report."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def run_campaign(seed: int, count: int, jobs: int = 1,
                 minimize: bool = False,
                 out_dir: Optional[Union[str, Path]] = None,
                 shared_pages: bool = False,
                 ) -> CampaignResult:
    """Evaluate seeds ``[seed, seed + count)``; report deterministically.

    Args:
        jobs: worker processes (``0`` = host CPU count); any value
            produces byte-identical reports.
        minimize: shrink each failing seed's spec before dumping it.
        out_dir: where to write ``fuzz-repro-<seed>.json`` files for
            failing seeds (no files are written when every seed passes).
        shared_pages: back each worker's page frames with a
            shared-memory arena (reports never depend on frame backing).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = list(range(seed, seed + count))
    reports = tuple(fanout_map(run_case, seeds, jobs,
                               shared_pages=shared_pages))
    reproducers: List[str] = []
    if out_dir is not None:
        directory = Path(out_dir)
        for report in reports:
            if report.ok:
                continue
            spec = spec_for_seed(report.seed)
            failures = report.failures
            if minimize:
                spec = minimize_spec(spec)
                failures = evaluate_spec(spec).failures
            path = save_reproducer(spec, failures, directory)
            reproducers.append(str(path))
    return CampaignResult(seed=seed, count=count, jobs=jobs,
                          reports=reports,
                          reproducers=tuple(reproducers))


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _consistent_helpers(spec: FuzzSpec) -> FuzzSpec:
    """Drop helpers whose caller no longer exists (transitively)."""
    callers = {"main"}
    callers.update(f"wrapper{level}"
                   for level in range(1, spec.wrapper_depth + 1))
    helpers = []
    for helper in spec.helpers:
        if helper.caller in callers:
            helpers.append(helper)
            callers.add(helper.name)
    return FuzzSpec(spec.seed, spec.kind, spec.alloc_fun,
                    spec.buffer_size, spec.wrapper_depth, tuple(helpers))


def minimize_spec(spec: FuzzSpec,
                  still_fails: Optional[Callable[[FuzzSpec], bool]]
                  = None) -> FuzzSpec:
    """Greedy deterministic shrink while the oracle still fails.

    Three passes, repeated to a fixed point: drop one helper at a time,
    lower the wrapper depth, shrink the buffer size through the
    generator's size table.  ``still_fails`` defaults to "the
    differential oracle reports a failure"; tests inject predicates.
    """
    if still_fails is None:
        def still_fails(candidate: FuzzSpec) -> bool:
            return not evaluate_spec(candidate).ok
    if not still_fails(spec):
        return spec

    changed = True
    while changed:
        changed = False
        # Pass 1: drop helpers, last declared first (sub-helpers go
        # before the helper they hang off, keeping callers consistent).
        for index in reversed(range(len(spec.helpers))):
            helpers = spec.helpers[:index] + spec.helpers[index + 1:]
            candidate = _consistent_helpers(
                FuzzSpec(spec.seed, spec.kind, spec.alloc_fun,
                         spec.buffer_size, spec.wrapper_depth, helpers))
            if still_fails(candidate):
                spec = candidate
                changed = True
        # Pass 2: flatten the wrapper chain.
        while spec.wrapper_depth > 0:
            candidate = _consistent_helpers(
                FuzzSpec(spec.seed, spec.kind, spec.alloc_fun,
                         spec.buffer_size, spec.wrapper_depth - 1,
                         spec.helpers))
            if not still_fails(candidate):
                break
            spec = candidate
            changed = True
        # Pass 3: shrink the buffer through the generator's size table.
        for size in sorted(BUFFER_SIZES):
            if size >= spec.buffer_size:
                break
            candidate = FuzzSpec(spec.seed, spec.kind, spec.alloc_fun,
                                 size, spec.wrapper_depth, spec.helpers)
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
    return spec


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------

def save_reproducer(spec: FuzzSpec, failures: Tuple[str, ...],
                    out_dir: Union[str, Path]) -> Path:
    """Write a committable ``fuzz-repro-<seed>.json`` file."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz-repro-{spec.seed}.json"
    payload = {
        "schema": SCHEMA_VERSION,
        "seed": spec.seed,
        "spec": spec_to_dict(spec),
        "failures": list(failures),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_reproducer(path: Union[str, Path]
                    ) -> Tuple[FuzzSpec, Tuple[str, ...]]:
    """Read a reproducer file back into ``(spec, recorded failures)``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported reproducer schema {schema!r}")
    spec = spec_from_dict(payload["spec"])
    return spec, tuple(payload.get("failures", ()))
