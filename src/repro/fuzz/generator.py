"""Seed-driven generator of vulnerable program models.

Every seed deterministically yields a :class:`FuzzSpec`: a random call
graph (a wrapper chain down to the vulnerable allocation, plus a random
tree of helper functions doing decoy allocations and computation) with
one planted heap bug of a known type and site.  The spec alone rebuilds
the program — :func:`spec_for_seed` is the only place randomness enters,
so a spec serialized into a reproducer file replays bit-identically.

The planted bugs cover the paper's vulnerability taxonomy:

* ``overflow-write`` / ``overflow-read`` — a sequential overflow past
  the buffer into an adjacent victim (write corrupts a magic word, read
  leaks bytes beyond the buffer);
* ``underflow-write`` — a write *below* the buffer, clobbering the tail
  of the victim allocated immediately before it (classified as OVERFLOW:
  the leading red zone / the victim's trailing guard page catch it);
* ``use-after-free`` — read through a dangling pointer after the chunk
  was recycled by an attacker-controlled allocation;
* ``double-free`` — the same buffer freed twice (classified as
  USE_AFTER_FREE: a free of an already-freed pointer);
* ``uninit-read`` — a partially initialized buffer leaked to a syscall,
  exposing stale heap memory.

Observables are deliberately *layout-independent* (magic words, digests
of out-of-bounds content, fixed-offset leaks) so the differential oracle
can demand byte equality between the undefended run and the
empty-patch-table defended run for the attack twin as well as the
benign one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..program.callgraph import CallGraph
from ..program.process import Process
from ..vulntypes import VulnType
from ..workloads.vulnerable.base import RunOutcome, VulnerableProgram

#: Marker planted in the victim buffer adjacent to overflow targets.
VICTIM_MAGIC = 0x56494354  # "VICT"
#: Marker the attacker plants on use-after-free reuse.
EVIL_MAGIC = 0xE71C
#: Secret seeded into stale heap memory for uninitialized-read cases.
STALE_SECRET = b"[stale-credential-7731]"

#: The planted-bug taxonomy (spec ``kind`` values).
BUG_KINDS: Tuple[str, ...] = (
    "overflow-write",
    "overflow-read",
    "underflow-write",
    "use-after-free",
    "double-free",
    "uninit-read",
)

#: Allocation entry points eligible per bug kind.  The sets are chosen so
#: the planted bug's *observable* is identical between the undefended and
#: the empty-table defended run: e.g. ``realloc`` is excluded from
#: use-after-free because the interposer's realloc always moves the
#: buffer (Figure 7) while libc grows in place, changing which chunk the
#: attacker's reuse allocation recycles.
KIND_FUNS: Dict[str, Tuple[str, ...]] = {
    "overflow-write": ("malloc", "calloc", "memalign", "realloc"),
    "overflow-read": ("malloc", "calloc", "memalign", "realloc"),
    "underflow-write": ("malloc", "calloc"),
    "use-after-free": ("malloc", "calloc"),
    "double-free": ("malloc", "calloc", "memalign"),
    "uninit-read": ("malloc",),
}

#: Vulnerability classification the diagnosis is expected to produce.
KIND_VULN: Dict[str, VulnType] = {
    "overflow-write": VulnType.OVERFLOW,
    "overflow-read": VulnType.OVERFLOW,
    "underflow-write": VulnType.OVERFLOW,
    "use-after-free": VulnType.USE_AFTER_FREE,
    "double-free": VulnType.USE_AFTER_FREE,
    "uninit-read": VulnType.UNINIT_READ,
}

#: Vulnerable-buffer sizes (multiples of 16; >= 48 so the stale secret
#: fits, small enough that no request crosses the mmap threshold).
BUFFER_SIZES: Tuple[int, ...] = (48, 64, 80, 96, 128, 160, 192, 256)

#: Decoy allocation sizes, disjoint from :data:`BUFFER_SIZES` so a decoy
#: free can never be satisfied from (or satisfy) a planted-bug chunk.
DECOY_SIZES: Tuple[int, ...] = (24, 40, 304, 368, 432, 528)

#: Size of the victim buffer adjacent to overflow/underflow targets.
#: Large enough that a memalign prefix hole can never satisfy it, so the
#: victim always lands in the physically following (or preceding) chunk.
VICTIM_SIZE = 96

#: Bytes written past the end (overflow) or below the start (underflow)
#: of the vulnerable buffer on the attack input.  64 crosses the chunk
#: header plus interposer metadata in every configuration and reaches
#: well into the adjacent victim/guard region.
ATTACK_SPAN = 64


@dataclass(frozen=True)
class HelperSpec:
    """One generated helper function in the random call graph."""

    name: str
    #: Caller function: ``"main"``, a wrapper, or another helper.
    caller: str
    #: Size of the decoy buffer this helper allocates (0 = none).  Decoy
    #: allocations only ever hang off main-level helpers so they are all
    #: performed *before* the planted-bug sequence and freed after it —
    #: they can never break the physical-adjacency invariants the
    #: planted bugs rely on.
    decoy_size: int
    #: Cycles of pure computation charged by the helper body.
    compute: int


@dataclass(frozen=True)
class FuzzSpec:
    """Everything needed to rebuild one generated program."""

    seed: int
    kind: str
    alloc_fun: str
    buffer_size: int
    wrapper_depth: int
    helpers: Tuple[HelperSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in BUG_KINDS:
            raise ValueError(f"unknown bug kind {self.kind!r}")
        if self.alloc_fun not in KIND_FUNS[self.kind]:
            raise ValueError(
                f"{self.kind} cannot be planted behind "
                f"{self.alloc_fun!r}")

    @property
    def name(self) -> str:
        """Stable, self-describing case identifier."""
        return (f"fuzz-{self.seed}-{self.kind}-{self.alloc_fun}"
                f"-d{self.wrapper_depth}")

    @property
    def expected_vuln(self) -> VulnType:
        """The vulnerability class diagnosis must report."""
        return KIND_VULN[self.kind]


def spec_for_seed(seed: int) -> FuzzSpec:
    """Deterministically derive one program spec from ``seed``."""
    rng = random.Random(seed)
    kind = BUG_KINDS[seed % len(BUG_KINDS)]
    alloc_fun = rng.choice(KIND_FUNS[kind])
    sizes = BUFFER_SIZES
    if alloc_fun == "realloc":
        # The interposer's realloc moves the buffer and frees the old
        # half-size chunk; keep that hole smaller than the victim's
        # chunk so the victim still lands adjacent to the buffer.
        sizes = tuple(size for size in sizes if size <= 160)
    buffer_size = rng.choice(sizes)
    wrapper_depth = rng.randint(0, 3)

    helpers: List[HelperSpec] = []
    serial = 0
    # Main-level helpers: computation and decoy allocations, all run
    # before the planted-bug sequence.
    for _ in range(rng.randint(0, 3)):
        name = f"helper{serial}"
        serial += 1
        decoy = rng.choice(DECOY_SIZES) if rng.random() < 0.7 else 0
        helpers.append(HelperSpec(name, "main", decoy,
                                  rng.randint(1, 40)))
        # Optionally a sub-helper, deepening the graph.
        if rng.random() < 0.4:
            sub = f"helper{serial}"
            serial += 1
            helpers.append(HelperSpec(sub, name, 0, rng.randint(1, 20)))
    # Wrapper-level helpers: pure computation side calls on the path to
    # the vulnerable allocation (never decoys — an allocation between
    # the victim/seed and the vulnerable buffer would break adjacency).
    for level in range(1, wrapper_depth + 1):
        if rng.random() < 0.5:
            name = f"helper{serial}"
            serial += 1
            helpers.append(HelperSpec(name, f"wrapper{level}", 0,
                                      rng.randint(1, 30)))
    return FuzzSpec(seed, kind, alloc_fun, buffer_size, wrapper_depth,
                    tuple(helpers))


def spec_to_dict(spec: FuzzSpec) -> Dict[str, Any]:
    """JSON-serializable form of a spec (reproducer files)."""
    return {
        "seed": spec.seed,
        "kind": spec.kind,
        "alloc_fun": spec.alloc_fun,
        "buffer_size": spec.buffer_size,
        "wrapper_depth": spec.wrapper_depth,
        "helpers": [
            {"name": helper.name, "caller": helper.caller,
             "decoy_size": helper.decoy_size, "compute": helper.compute}
            for helper in spec.helpers],
    }


def spec_from_dict(payload: Dict[str, Any]) -> FuzzSpec:
    """Rebuild a spec from its :func:`spec_to_dict` form."""
    helpers = tuple(
        HelperSpec(str(row["name"]), str(row["caller"]),
                   int(row["decoy_size"]), int(row["compute"]))
        for row in payload.get("helpers", ()))
    return FuzzSpec(int(payload["seed"]), str(payload["kind"]),
                    str(payload["alloc_fun"]), int(payload["buffer_size"]),
                    int(payload["wrapper_depth"]), helpers)


class GeneratedProgram(VulnerableProgram):
    """One generated program model with a planted bug and benign twin.

    The single input is ``attack: bool`` — ``True`` triggers the planted
    bug, ``False`` runs the same call graph within bounds.
    """

    def __init__(self, spec: FuzzSpec) -> None:
        super().__init__()
        self.spec = spec
        self.name = spec.name
        self.reference = "repro.fuzz generated"
        self.vulnerability = spec.expected_vuln.describe()

    # ------------------------------------------------------------------
    # Graph
    # ------------------------------------------------------------------

    def build_graph(self) -> CallGraph:
        spec = self.spec
        graph = CallGraph(entry="main")
        caller = "main"
        for level in range(spec.wrapper_depth):
            callee = f"wrapper{level + 1}"
            graph.add_call_site(caller, callee)
            caller = callee
        if spec.alloc_fun == "realloc":
            graph.add_call_site(caller, "malloc", "initial")
            graph.add_call_site(caller, "realloc", "vuln")
        else:
            graph.add_call_site(caller, spec.alloc_fun, "vuln")
        for helper in spec.helpers:
            graph.add_call_site(helper.caller, helper.name)
            if helper.decoy_size:
                graph.add_call_site(helper.name, "malloc", "decoy")
        kind = spec.kind
        if kind in ("overflow-write", "overflow-read", "underflow-write"):
            graph.add_call_site("main", "malloc", "victim")
        if kind == "use-after-free":
            graph.add_call_site("main", "malloc", "reuse")
        if kind == "uninit-read":
            graph.add_call_site("main", "malloc", "seed")
        graph.add_call_site("main", "free", "any")
        return graph

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def attack_input(self) -> bool:  # type: ignore[override]
        return True

    def benign_input(self) -> bool:  # type: ignore[override]
        return False

    # ------------------------------------------------------------------
    # Body
    # ------------------------------------------------------------------

    def _run_helpers(self, p: Process, caller: str,
                     decoys: List[int]) -> None:
        """Call every helper attached to ``caller``."""
        for helper in self.spec.helpers:
            if helper.caller == caller:
                p.call(helper.name, self._helper_body, helper, decoys)

    def _helper_body(self, p: Process, helper: HelperSpec,
                     decoys: List[int]) -> None:
        if helper.decoy_size:
            decoy = p.malloc(helper.decoy_size, site="decoy")
            p.fill(decoy, helper.decoy_size, 0x5A)
            decoys.append(decoy)
        p.compute(helper.compute)
        self._run_helpers(p, helper.name, decoys)

    def _allocate_vulnerable(self, p: Process, decoys: List[int]) -> int:
        """Allocate the vulnerable buffer through the wrapper chain."""
        if self.spec.wrapper_depth == 0:
            return self._vulnerable_alloc(p)
        return p.call("wrapper1", self._wrapper_runner, 1, decoys)

    def _wrapper_runner(self, p: Process, level: int,
                        decoys: List[int]) -> int:
        self._run_helpers(p, f"wrapper{level}", decoys)
        if level < self.spec.wrapper_depth:
            return p.call(f"wrapper{level + 1}", self._wrapper_runner,
                          level + 1, decoys)
        return self._vulnerable_alloc(p)

    def _vulnerable_alloc(self, p: Process) -> int:
        spec = self.spec
        if spec.alloc_fun == "malloc":
            return p.malloc(spec.buffer_size, site="vuln")
        if spec.alloc_fun == "calloc":
            return p.calloc(1, spec.buffer_size, site="vuln")
        if spec.alloc_fun == "memalign":
            return p.memalign(32, spec.buffer_size, site="vuln")
        if spec.alloc_fun == "realloc":
            initial = p.malloc(spec.buffer_size // 2, site="initial")
            return p.realloc(initial, spec.buffer_size, site="vuln")
        raise ValueError(spec.alloc_fun)

    def main(self, p: Process, attack: bool) -> RunOutcome:
        decoys: List[int] = []
        self._run_helpers(p, "main", decoys)
        kind = self.spec.kind
        if kind == "overflow-write":
            outcome = self._run_overflow_write(p, attack, decoys)
        elif kind == "overflow-read":
            outcome = self._run_overflow_read(p, attack, decoys)
        elif kind == "underflow-write":
            outcome = self._run_underflow(p, attack, decoys)
        elif kind == "use-after-free":
            outcome = self._run_uaf(p, attack, decoys)
        elif kind == "double-free":
            outcome = self._run_double_free(p, attack, decoys)
        else:
            outcome = self._run_uninit(p, attack, decoys)
        for decoy in decoys:
            p.free(decoy)
        return outcome

    # -- overflow ------------------------------------------------------

    def _run_overflow_write(self, p: Process, attack: bool,
                            decoys: List[int]) -> RunOutcome:
        size = self.spec.buffer_size
        buf = self._allocate_vulnerable(p, decoys)
        victim = p.malloc(VICTIM_SIZE, site="victim")
        p.write_int(victim, VICTIM_MAGIC)
        span = size + ATTACK_SPAN if attack else size
        p.write(buf, b"A" * span)
        magic = p.read_int(victim).to_int()
        return RunOutcome(facts={"victim_magic": magic})

    def _run_overflow_read(self, p: Process, attack: bool,
                           decoys: List[int]) -> RunOutcome:
        size = self.spec.buffer_size
        buf = self._allocate_vulnerable(p, decoys)
        victim = p.malloc(VICTIM_SIZE, site="victim")
        p.write_int(victim, VICTIM_MAGIC)
        p.fill(buf, size, ord("d"))
        span = size + ATTACK_SPAN if attack else size
        leaked = p.syscall_out(buf, span)
        # The response carries only the in-bounds prefix; the overread
        # is summarized as a digest, keeping the observable independent
        # of what exactly (headers, metadata) sits past the buffer.
        tail_nonzero = any(byte != 0 for byte in leaked[size:])
        return RunOutcome(response=leaked[:size],
                          facts={"tail_nonzero": tail_nonzero})

    def _run_underflow(self, p: Process, attack: bool,
                       decoys: List[int]) -> RunOutcome:
        size = self.spec.buffer_size
        # Victim first, vulnerable buffer immediately after: the
        # underflow runs below the buffer into the victim's tail, and —
        # once the victim is patched — into its trailing guard page.
        victim = p.malloc(VICTIM_SIZE, site="victim")
        p.write_int(victim + VICTIM_SIZE - 8, VICTIM_MAGIC)
        buf = self._allocate_vulnerable(p, decoys)
        if attack:
            p.write(buf - ATTACK_SPAN, b"U" * ATTACK_SPAN)
        else:
            p.write(buf, b"U" * min(size, ATTACK_SPAN))
        magic = p.read_int(victim + VICTIM_SIZE - 8).to_int()
        return RunOutcome(facts={"victim_magic": magic})

    # -- use after free ------------------------------------------------

    def _run_uaf(self, p: Process, attack: bool,
                 decoys: List[int]) -> RunOutcome:
        size = self.spec.buffer_size
        buf = self._allocate_vulnerable(p, decoys)
        p.fill(buf, size, 0)
        p.write_int(buf, VICTIM_MAGIC)
        if attack:
            p.free(buf)
            reuse = p.malloc(size, site="reuse")
            p.syscall_in(reuse,
                         EVIL_MAGIC.to_bytes(8, "little") * (size // 8))
        observed = p.branch_on(p.read_int(buf))
        return RunOutcome(facts={"observed": observed})

    def _run_double_free(self, p: Process, attack: bool,
                         decoys: List[int]) -> RunOutcome:
        buf = self._allocate_vulnerable(p, decoys)
        p.write_int(buf, VICTIM_MAGIC)
        magic = p.read_int(buf).to_int()
        p.free(buf)
        if attack:
            # Faults (DoubleFree) on the undefended allocator; the
            # deferred-free quarantine absorbs it once patched.
            p.free(buf)
        return RunOutcome(facts={"magic": magic})

    # -- uninitialized read --------------------------------------------

    def _run_uninit(self, p: Process, attack: bool,
                    decoys: List[int]) -> RunOutcome:
        size = self.spec.buffer_size
        seed = p.malloc(size, site="seed")
        p.fill(seed, size, ord("x"))
        p.write(seed + 16, STALE_SECRET)
        p.free(seed)
        buf = self._allocate_vulnerable(p, decoys)
        initialized = 8 if attack else size
        p.syscall_in(buf, b"I" * initialized)
        leaked = p.syscall_out(buf, size)
        return RunOutcome(response=leaked)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def attack_succeeded(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            # Blocked or crashed before completing.  For double-free the
            # oracle treats the crash itself as the attack's effect; for
            # every other kind a blocked run means the attack failed.
            return False
        kind = self.spec.kind
        if kind in ("overflow-write", "underflow-write"):
            return outcome.facts.get("victim_magic") != VICTIM_MAGIC
        if kind == "overflow-read":
            return bool(outcome.facts.get("tail_nonzero"))
        if kind == "use-after-free":
            return outcome.facts.get("observed") == EVIL_MAGIC
        if kind == "double-free":
            # Completion means the double free was absorbed.
            return False
        return any(byte != 0 for byte in outcome.response[8:])

    def benign_works(self, outcome: Optional[RunOutcome]) -> bool:
        if outcome is None:
            return False
        kind = self.spec.kind
        size = self.spec.buffer_size
        if kind in ("overflow-write", "underflow-write"):
            return outcome.facts.get("victim_magic") == VICTIM_MAGIC
        if kind == "overflow-read":
            return (outcome.response == b"d" * size
                    and not outcome.facts.get("tail_nonzero"))
        if kind == "use-after-free":
            return outcome.facts.get("observed") == VICTIM_MAGIC
        if kind == "double-free":
            return outcome.facts.get("magic") == VICTIM_MAGIC
        return outcome.response == b"I" * size


def build_program(spec: FuzzSpec) -> GeneratedProgram:
    """Instantiate the generated program for ``spec``."""
    return GeneratedProgram(spec)
