"""The three-way differential oracle (tentpole property checks).

For one :class:`~repro.fuzz.generator.FuzzSpec` the oracle executes the
generated program — attack input and benign twin — under three
configurations and cross-checks every observation:

1. **undefended** — :class:`~repro.allocator.libc.LibcAllocator`, the
   ground truth: the planted bug must actually fire (corrupt, leak, or
   fault) and the benign twin must compute its expected result;
2. **defended, empty patch table** — the transparency property: same
   completion status, same fault class, byte-identical response and
   facts, the same ``(fun, size, ccid)`` allocation sequence, and
   allocation addresses shifted only by metadata (16-byte multiples);
3. **diagnose → patch → re-run** — the efficacy property: the offline
   replay of the attack must emit at least one patch covering the
   planted vulnerability type, the benign twin's replay must emit *zero*
   patches, the patched re-run must neutralize the attack according to
   its type, and the benign twin must keep working under those patches.

Everything observed is reduced to deterministic, picklable values so a
campaign sharded over N worker processes reports byte-identically to a
serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..allocator.libc import LibcAllocator
from ..core.instrument import InstrumentedProgram, instrument
from ..defense.interpose import DefendedAllocator
from ..defense.metadata import METADATA_SIZE
from ..defense.patch_table import PatchTable
from ..machine.errors import MachineError
from ..patch.generator import OfflinePatchGenerator
from ..patch.model import HeapPatch
from ..program.cost import CycleMeter
from ..program.monitor import DirectMonitor
from ..program.process import Process
from ..vulntypes import VulnType
from .generator import (
    VICTIM_MAGIC,
    FuzzSpec,
    GeneratedProgram,
    build_program,
)


@dataclass(frozen=True)
class Observation:
    """Deterministic summary of one execution."""

    #: Fault class name (``"SegmentationFault"``, ``"DoubleFree"``, ...)
    #: or ``None`` when the run completed.
    fault: Optional[str]
    response: bytes
    #: The RunOutcome facts, as a sorted item tuple (hashable/picklable).
    facts: Tuple[Tuple[str, Any], ...]
    #: ``(fun, size, ccid)`` per allocation, in program order.
    events: Tuple[Tuple[str, int, int], ...]
    #: User address per allocation, in program order.
    addresses: Tuple[int, ...]

    @property
    def completed(self) -> bool:
        """True when the run finished without a machine fault."""
        return self.fault is None


@dataclass(frozen=True)
class CaseReport:
    """Verdict of the oracle on one generated case."""

    seed: int
    name: str
    kind: str
    alloc_fun: str
    ok: bool
    #: Human-readable property violations, empty when ``ok``.
    failures: Tuple[str, ...]
    #: Rendered patch lines the attack diagnosis produced.
    patches: Tuple[str, ...]
    #: Patch count of the benign twin's diagnosis (must be 0).
    benign_patches: int


def _observe(program: GeneratedProgram,
             instrumented: InstrumentedProgram,
             table: Optional[PatchTable],
             attack: bool) -> Tuple[Observation, Optional[Any]]:
    """Run once — undefended when ``table`` is None — and summarize."""
    meter = CycleMeter()
    runtime = instrumented.runtime(meter)
    underlying = LibcAllocator()
    if table is None:
        process = Process(program.graph, heap=underlying,
                          context_source=runtime, meter=meter,
                          record_allocations=True)
    else:
        defended = DefendedAllocator(underlying, table,
                                     context_source=runtime, meter=meter)
        monitor = DirectMonitor(underlying.memory, defended, meter)
        process = Process(program.graph, monitor=monitor,
                          context_source=runtime, meter=meter,
                          record_allocations=True)
    fault: Optional[str] = None
    outcome = None
    try:
        outcome = process.run(program, attack)
    except MachineError as exc:
        fault = type(exc).__name__
    response = outcome.response if outcome is not None else b""
    facts = (tuple(sorted(outcome.facts.items()))
             if outcome is not None else ())
    events = tuple((event.fun, event.size, event.ccid)
                   for event in process.allocations)
    addresses = tuple(event.address for event in process.allocations)
    return (Observation(fault, response, facts, events, addresses),
            outcome)


def _compare(label: str, native: Observation, defended: Observation,
             failures: list) -> None:
    """The transparency property between two observations."""
    if native.fault != defended.fault:
        failures.append(
            f"{label}: fault diverged (native={native.fault}, "
            f"defended={defended.fault})")
    if native.response != defended.response:
        failures.append(f"{label}: response diverged")
    if native.facts != defended.facts:
        failures.append(
            f"{label}: facts diverged (native={native.facts}, "
            f"defended={defended.facts})")
    if native.events != defended.events:
        failures.append(
            f"{label}: allocation sequence diverged "
            f"(native={native.events}, defended={defended.events})")
    elif any((d - n) % METADATA_SIZE
             for n, d in zip(native.addresses, defended.addresses)):
        failures.append(
            f"{label}: allocation addresses shifted by a non-metadata "
            f"amount")


def evaluate_spec(spec: FuzzSpec) -> CaseReport:
    """Run the full differential oracle for one spec."""
    program = build_program(spec)
    instrumented = instrument(program)
    failures: list = []

    # 1. Ground truth: the planted bug fires natively, the twin works.
    native_attack, attack_outcome = _observe(program, instrumented,
                                             None, True)
    native_benign, benign_outcome = _observe(program, instrumented,
                                             None, False)
    if spec.kind == "double-free":
        if native_attack.fault not in ("DoubleFree", "InvalidFree"):
            failures.append(
                f"planted double free did not fault natively "
                f"(fault={native_attack.fault})")
    else:
        if not native_attack.completed:
            failures.append(
                f"native attack run faulted unexpectedly "
                f"({native_attack.fault})")
        elif not program.attack_succeeded(attack_outcome):
            failures.append("planted bug did not fire natively")
    if not native_benign.completed:
        failures.append(
            f"native benign run faulted ({native_benign.fault})")
    elif not program.benign_works(benign_outcome):
        failures.append("benign twin broken natively")

    # 2. Transparency: empty patch table changes nothing observable.
    empty = PatchTable.empty()
    defended_attack, _ = _observe(program, instrumented, empty, True)
    defended_benign, _ = _observe(program, instrumented, empty, False)
    _compare("transparency/attack", native_attack, defended_attack,
             failures)
    _compare("transparency/benign", native_benign, defended_benign,
             failures)

    # 3. Efficacy: diagnose, patch, re-run.
    generator = OfflinePatchGenerator(program, instrumented.codec)
    diagnosis = generator.replay(True)
    combined = VulnType.NONE
    for patch in diagnosis.patches:
        combined |= patch.vuln
    if not diagnosis.patches:
        failures.append("attack replay produced no patches")
    elif not combined & spec.expected_vuln:
        failures.append(
            f"diagnosis missed the planted type: expected "
            f"{spec.expected_vuln.describe()}, got {combined.describe()}")

    benign_diagnosis = generator.replay(False)
    if benign_diagnosis.patches:
        failures.append(
            f"benign twin produced {len(benign_diagnosis.patches)} "
            f"patches (expected 0)")
    if benign_diagnosis.crashed is not None:
        failures.append(
            f"benign replay crashed ({benign_diagnosis.crashed})")

    if diagnosis.patches:
        table = PatchTable(diagnosis.patches)
        patched_attack, patched_outcome = _observe(
            program, instrumented, table, True)
        _check_neutralized(spec, program, patched_attack,
                           patched_outcome, failures)
        patched_benign, patched_benign_outcome = _observe(
            program, instrumented, table, False)
        if not patched_benign.completed:
            failures.append(
                f"benign twin blocked under attack patches "
                f"({patched_benign.fault})")
        elif not program.benign_works(patched_benign_outcome):
            failures.append("benign twin broken under attack patches")

    return CaseReport(
        seed=spec.seed,
        name=spec.name,
        kind=spec.kind,
        alloc_fun=spec.alloc_fun,
        ok=not failures,
        failures=tuple(failures),
        patches=tuple(patch.render() for patch in diagnosis.patches),
        benign_patches=len(benign_diagnosis.patches),
    )


def _check_neutralized(spec: FuzzSpec, program: GeneratedProgram,
                       observation: Observation,
                       outcome: Optional[Any],
                       failures: list) -> None:
    """Per-type neutralization: what "the patch worked" means."""
    if observation.fault not in (None, "SegmentationFault"):
        failures.append(
            f"patched run died on {observation.fault} instead of "
            f"completing or being blocked by a guard page")
        return
    effective = outcome if observation.completed else None
    if program.attack_succeeded(effective):
        failures.append("attack still succeeded under its patch")
        return
    kind = spec.kind
    facts: Dict[str, Any] = dict(observation.facts)
    if kind in ("use-after-free", "double-free", "uninit-read"):
        # These defenses neutralize silently; the program must complete.
        if not observation.completed:
            failures.append(
                f"{kind} patch should absorb the attack, not block "
                f"the run ({observation.fault})")
            return
    if kind == "use-after-free":
        if facts.get("observed") != VICTIM_MAGIC:
            failures.append(
                "deferred free did not preserve the freed buffer "
                f"(observed={facts.get('observed')!r})")
    elif kind == "double-free":
        if facts.get("magic") != VICTIM_MAGIC:
            failures.append("double-free patch corrupted the buffer")
    elif kind == "uninit-read":
        expected = b"I" * 8 + b"\x00" * (spec.buffer_size - 8)
        if observation.response != expected:
            failures.append(
                "uninit patch did not zero-fill the leaked tail")
    elif observation.completed:
        # Overflow/underflow may be stopped silently (the guard layout
        # moved the victim out of reach) or by a fault; if the run
        # completed and reports the victim marker, it must be intact
        # (overflow-read cases observe the leak, not the marker).
        if facts.get("victim_magic", VICTIM_MAGIC) != VICTIM_MAGIC:
            failures.append(
                "overflow patch left the victim buffer corrupted")


def patches_of(report: CaseReport) -> Tuple[HeapPatch, ...]:
    """Parse a report's rendered patch lines back into patches."""
    from ..patch.config import HEADER, loads
    return tuple(loads("\n".join((HEADER,) + report.patches)))
