"""Differential fuzzing of the full HeapTherapy+ pipeline.

The fixed Table II + SAMATE corpus exercises ~30 hand-written programs;
this package generates *thousands* of vulnerable program models from
seeds and checks, for every one of them, the two properties the paper's
evaluation rests on:

* **transparency** — a :class:`~repro.defense.interpose.DefendedAllocator`
  with an empty patch table is observation-identical to the undefended
  :class:`~repro.allocator.libc.LibcAllocator` (same outputs, same
  faults, allocation addresses shifted only by metadata);
* **efficacy** — the diagnose→patch→re-run loop neutralizes the planted
  bug according to its vulnerability type, and the benign twin of the
  same call graph produces zero patches and zero divergences.

Layout:

* :mod:`repro.fuzz.generator` — deterministic seed → program model with
  a planted bug of known type/site plus a benign twin;
* :mod:`repro.fuzz.oracle` — the three-way differential oracle;
* :mod:`repro.fuzz.faults` — substrate fault injection (sbrk/mmap
  exhaustion, permission faults, quarantine pressure);
* :mod:`repro.fuzz.runner` — seed-sharded campaigns, shrinking of
  failing cases to minimal reproducers, JSON reports;
* :mod:`repro.fuzz.adjacency` — ground-truth heap adjacency observation
  and the static-vs-dynamic cross-check for the layout pass.
"""

from .adjacency import (
    CrossCheck,
    ObservedAdjacency,
    cross_check_range,
    cross_check_seed,
    observe_adjacency,
)
from .faults import FaultBudgetExceeded, FaultInjector
from .generator import (
    BUG_KINDS,
    FuzzSpec,
    GeneratedProgram,
    HelperSpec,
    build_program,
    spec_for_seed,
    spec_from_dict,
    spec_to_dict,
)
from .oracle import CaseReport, evaluate_spec
from .runner import (
    CampaignResult,
    load_reproducer,
    minimize_spec,
    run_campaign,
    run_case,
    save_reproducer,
)

__all__ = [
    "BUG_KINDS",
    "CampaignResult",
    "CaseReport",
    "CrossCheck",
    "FaultBudgetExceeded",
    "FaultInjector",
    "FuzzSpec",
    "GeneratedProgram",
    "HelperSpec",
    "ObservedAdjacency",
    "build_program",
    "cross_check_range",
    "cross_check_seed",
    "evaluate_spec",
    "observe_adjacency",
    "load_reproducer",
    "minimize_spec",
    "run_campaign",
    "run_case",
    "save_reproducer",
    "spec_for_seed",
    "spec_from_dict",
    "spec_to_dict",
]
