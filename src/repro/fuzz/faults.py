"""Substrate fault injection (tentpole component 3).

``FaultInjector`` plugs into :class:`~repro.machine.memory.VirtualMemory`
and makes the primitives HeapTherapy+ leans on fail *deterministically*
after a configured number of successful operations:

* ``sbrk`` growth — heap exhaustion
  (:class:`~repro.machine.errors.OutOfMemoryError`);
* ``mmap`` — mapping-area exhaustion (``OutOfMemoryError``);
* ``mprotect`` — permission faults, i.e. guard-page installation or
  removal failing (:class:`~repro.machine.errors.MapError`).

The injected exceptions are the *same typed errors* the real substrate
raises on genuine exhaustion, so callers exercise their production error
paths: the property under test is that the allocator stack degrades
gracefully — the error propagates as a typed ``MachineError`` and the
allocator's internal invariants still hold afterwards
(``LibcAllocator.check_consistency``), rather than state being silently
corrupted.

Budgets are plain counters, not probabilities — fault schedules replay
bit-identically, which the differential campaigns require.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..machine.errors import MapError, OutOfMemoryError

#: Operation classes the injector can fail.
FAULT_OPS: Tuple[str, ...] = ("sbrk", "mmap", "mprotect")


class FaultBudgetExceeded(RuntimeError):
    """More faults fired than the schedule allows.

    Raised when the number of *injected* faults for one op class passes
    ``max_injections`` — the harness-level signal that the code under
    test is retrying a failing substrate operation instead of degrading
    gracefully (each retry would fail forever, so a bounded schedule
    turns such a loop into a crisp test failure).
    """


class FaultInjector:
    """Deterministic per-operation fault schedule for the substrate.

    Args:
        budgets: map of op class (``"sbrk"``, ``"mmap"``,
            ``"mprotect"``) to the number of operations allowed to
            *succeed*; once an op's budget is spent, every further
            operation of that class raises its typed error.  Ops absent
            from the map never fail.
        max_injections: cap on faults injected per op class before
            :class:`FaultBudgetExceeded` is raised instead (see there).
        armed: start enabled; :meth:`disarm`/:meth:`arm` toggle the
            injector without losing its counters.
    """

    def __init__(self, budgets: Dict[str, int],
                 max_injections: int = 64,
                 armed: bool = True) -> None:
        unknown = set(budgets) - set(FAULT_OPS)
        if unknown:
            raise ValueError(
                f"unknown fault op(s): {sorted(unknown)!r}; "
                f"choose from {FAULT_OPS}")
        for op, budget in budgets.items():
            if budget < 0:
                raise ValueError(f"negative budget for {op!r}")
        self._budgets = dict(budgets)
        self.max_injections = max_injections
        self.armed = armed
        #: op -> operations that went through while armed.
        self.passed: Dict[str, int] = {op: 0 for op in FAULT_OPS}
        #: op -> faults injected.
        self.injected: Dict[str, int] = {op: 0 for op in FAULT_OPS}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """(Re-)enable injection."""
        self.armed = True

    def disarm(self) -> None:
        """Pass everything through; counters are preserved."""
        self.armed = False

    def remaining(self, op: str) -> Optional[int]:
        """Successful operations left for ``op`` (None = unlimited)."""
        return self._budgets.get(op)

    @property
    def total_injected(self) -> int:
        """Faults injected across all op classes."""
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # The hook VirtualMemory calls
    # ------------------------------------------------------------------

    def charge(self, op: str) -> None:
        """Account one substrate operation; raise when its budget is out.

        Called by :class:`~repro.machine.memory.VirtualMemory` *before*
        performing the operation, so a failed operation leaves the
        memory map untouched — exactly like real ``ENOMEM``/``EACCES``.
        """
        if not self.armed:
            return
        budget = self._budgets.get(op)
        if budget is None:
            return
        if budget > 0:
            self._budgets[op] = budget - 1
            self.passed[op] += 1
            return
        self.injected[op] += 1
        if self.injected[op] > self.max_injections:
            raise FaultBudgetExceeded(
                f"{op} failed {self.injected[op]} times; the caller "
                f"appears to be retrying a permanently failing "
                f"substrate operation")
        if op == "mprotect":
            raise MapError("mprotect: injected permission fault")
        if op == "sbrk":
            raise OutOfMemoryError("heap limit exceeded (injected)")
        raise OutOfMemoryError("mmap area exhausted (injected)")


def exhaust_after(op: str, successes: int,
                  **kwargs: int) -> FaultInjector:
    """Shorthand: let ``successes`` ops of ``op`` through, then fail."""
    return FaultInjector({op: successes}, **kwargs)


def fault_plans(ops: Iterable[str] = FAULT_OPS,
                successes: Iterable[int] = (0, 1, 2, 4, 8),
                ) -> Iterable[FaultInjector]:
    """Enumerate a deterministic grid of single-op fault schedules."""
    for op in ops:
        for count in successes:
            yield exhaust_after(op, count)
