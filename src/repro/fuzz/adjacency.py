"""Ground-truth heap adjacency, and the static-vs-dynamic cross-check.

The layout pass (:mod:`repro.analysis.layout`) *predicts* which
allocation-site pairs can become heap neighbours.  This module measures
the truth: it runs a generated program natively (undefended
:class:`~repro.allocator.libc.LibcAllocator`, attack input) with
allocation recording on, locates the vulnerable buffer's overflow span
in the address space, and reports which other allocation's chunk the
span actually lands in.

:func:`cross_check_seed` then closes the loop for one fuzz seed:

* **soundness** — the observed (source, victim) site pair must appear in
  the static adjacency graph with the observed direction, and the
  predicted minimal overflow length must not exceed the observed one
  (the static bound is a true lower bound);
* **precision** — every statically predicted pair that was *not*
  observed counts toward the false-positive rate reported by
  :func:`cross_check_range` (static adjacency over-approximates: it
  pairs all co-live sites, while the concrete heap realizes one
  neighbour per run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..allocator.chunk import HEADER_SIZE, request_to_chunk_size
from ..allocator.libc import LibcAllocator
from ..analysis.layout import AllocSiteId, LayoutResult, analyze_layout
from ..core.instrument import instrument
from ..machine.errors import MachineError
from ..program.cost import CycleMeter
from ..program.process import AllocationEvent, Process
from .generator import ATTACK_SPAN, FuzzSpec, build_program, spec_for_seed

__all__ = [
    "CrossCheck",
    "ObservedAdjacency",
    "cross_check_range",
    "cross_check_seed",
    "observe_adjacency",
]

#: Bug kinds whose attack is an out-of-bounds access with a span; only
#: these have a ground-truth adjacency to observe.
_OVERFLOW_KINDS = ("overflow-write", "overflow-read", "underflow-write")


@dataclass(frozen=True)
class ObservedAdjacency:
    """One dynamically observed overflow (source, victim) pair."""

    seed: int
    kind: str
    #: ``forward`` or ``backward``.
    direction: str
    source: AllocSiteId
    victim: AllocSiteId
    #: Bytes past the source's bounds the attack actually wrote/read.
    overflow_len: int


@dataclass(frozen=True)
class CrossCheck:
    """Static-vs-dynamic verdict for one fuzz seed."""

    seed: int
    kind: str
    observed: Optional[ObservedAdjacency]
    #: Adjacency edges the static pass predicted for this program.
    predicted_pairs: int
    #: True when the observed pair (if any) was statically predicted
    #: with a sound minimal length.
    matched: bool
    #: Soundness violations, empty when sound.
    failures: Tuple[str, ...]

    @property
    def sound(self) -> bool:
        """True when no soundness obligation was violated."""
        return not self.failures


def _site_of(program: Any, event: AllocationEvent) -> AllocSiteId:
    """Map a recorded allocation back to its static site identity."""
    site = program.graph.site_by_id(event.context[-1])
    return AllocSiteId(site.caller, site.callee, site.label)


def observe_adjacency(spec: FuzzSpec) -> Optional[ObservedAdjacency]:
    """Run ``spec``'s attack natively and locate the overflow victim.

    Returns ``None`` for bug kinds without an out-of-bounds span
    (use-after-free, double-free, uninit-read) and for runs where the
    span hits no other allocation's chunk (e.g. it lands in free
    top-region space).
    """
    if spec.kind not in _OVERFLOW_KINDS:
        return None
    program = build_program(spec)
    instrumented = instrument(program)
    meter = CycleMeter()
    runtime = instrumented.runtime(meter)
    process = Process(program.graph, heap=LibcAllocator(),
                      context_source=runtime, meter=meter,
                      record_allocations=True)
    try:
        process.run(program, True)
    except MachineError:
        pass  # the attack may fault; the recorded events still stand
    events = list(process.allocations)
    sources = [event for event in events
               if _site_of(program, event).label == "vuln"]
    if not sources:
        return None
    # The overflowed buffer is the *last* vuln-site allocation (realloc
    # frees the original and returns the live one).
    source = sources[-1]
    if spec.kind == "underflow-write":
        direction = "backward"
        span = (source.address - ATTACK_SPAN, source.address)
    else:
        direction = "forward"
        end = source.address + source.size
        span = (end, end + ATTACK_SPAN)
    for event in events:
        if event.serial == source.serial:
            continue
        chunk_base = event.address - HEADER_SIZE
        chunk_end = chunk_base + request_to_chunk_size(event.size)
        if span[0] < chunk_end and chunk_base < span[1]:
            return ObservedAdjacency(
                seed=spec.seed, kind=spec.kind, direction=direction,
                source=_site_of(program, source),
                victim=_site_of(program, event),
                overflow_len=ATTACK_SPAN)
    return None


def cross_check_seed(seed: int,
                     layout: Optional[LayoutResult] = None) -> CrossCheck:
    """Cross-check static prediction against dynamic truth for one seed.

    ``layout`` may be supplied to reuse an existing analysis result;
    otherwise the program is analyzed here.
    """
    spec = spec_for_seed(seed)
    observed = observe_adjacency(spec)
    if layout is None:
        layout = analyze_layout(build_program(spec))
    failures: List[str] = []
    matched = False
    if observed is not None:
        for pair in layout.pairs:
            if (pair.source == observed.source
                    and pair.victim == observed.victim
                    and pair.direction == observed.direction):
                matched = True
                if pair.min_overflow_len > observed.overflow_len:
                    failures.append(
                        f"seed {seed}: predicted minimal overflow "
                        f"{pair.min_overflow_len} exceeds observed "
                        f"{observed.overflow_len}")
                break
        if not matched:
            failures.append(
                f"seed {seed}: observed {observed.direction} pair "
                f"{observed.source.describe()} -> "
                f"{observed.victim.describe()} not statically "
                f"predicted")
    return CrossCheck(seed=seed, kind=spec.kind, observed=observed,
                      predicted_pairs=len(layout.pairs),
                      matched=matched, failures=tuple(failures))


def cross_check_range(start: int, count: int) \
        -> Tuple[List[CrossCheck], float]:
    """Cross-check ``count`` seeds from ``start``; return the checks and
    the corpus false-positive rate.

    The FP rate is (predicted − matched) / predicted over all overflow
    seeds: the fraction of statically predicted adjacency edges that the
    single concrete heap layout did not realize.
    """
    checks = [cross_check_seed(seed)
              for seed in range(start, start + count)]
    predicted = sum(check.predicted_pairs for check in checks
                    if check.kind in _OVERFLOW_KINDS)
    matched = sum(1 for check in checks if check.matched)
    rate = ((predicted - matched) / predicted) if predicted else 0.0
    return checks, rate
