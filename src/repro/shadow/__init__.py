"""Shadow-memory offline analysis (paper Section V).

The heavyweight half of HeapTherapy+: a Valgrind-style execution monitor
with A-bits, bit-precision V-bits, red zones, a freed-block FIFO and
origin tracking, producing the analysis report patches are derived from.
"""

from .analyzer import DEFAULT_QUOTA, RED_ZONE, ShadowAnalyzer
from .bits import ALL_INVALID, ALL_VALID, ShadowState
from .report import AnalysisReport, BufferRecord, ShadowWarning

__all__ = [
    "ALL_INVALID",
    "ALL_VALID",
    "AnalysisReport",
    "BufferRecord",
    "DEFAULT_QUOTA",
    "RED_ZONE",
    "ShadowAnalyzer",
    "ShadowState",
    "ShadowWarning",
]
