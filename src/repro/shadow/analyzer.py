"""The offline heavyweight analyzer (paper Section V).

``ShadowAnalyzer`` plays the role of the modified Valgrind tool: it is an
:class:`~repro.program.monitor.ExecutionMonitor` that replaces the heap
functions (adding 16-byte red zones and the freed-block FIFO) and tags
every byte with A-bits, every bit with a V-bit, and every uninitialized
byte with its origin buffer.

Detection, exactly as the paper specifies:

* **overflow** (overwrite *and* overread) — any access touching a red
  zone adjacent to a live buffer;
* **use after free** — any access to a buffer still in the freed-block
  FIFO (2 GiB quota by default, so reuse is long deferred);
* **uninitialized read** — V-bits are checked only when a value decides
  control flow, is used as an address, or enters a system call (avoiding
  the struct-padding false positives of Figure 4); origin tracking walks
  the invalid bits back to the allocation, whose CCID keys the patch.

Execution *resumes* after each warning, and chained warnings are
suppressed (checked bytes are marked valid; duplicate (kind, buffer)
pairs are deduplicated), so one replay can expose an attack that exploits
several vulnerabilities at once — e.g. Heartbleed's uninitialized-read +
overread mix.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..allocator.base import Allocator
from ..common.fifo import FreedBlock, FreedBlockQueue
from ..machine.errors import SegmentationFault
from ..program.cost import CycleMeter
from ..program.monitor import ExecutionMonitor
from ..program.values import TaggedValue
from ..vulntypes import VulnType
from .bits import ShadowState
from .report import AnalysisReport, BufferRecord, ShadowWarning

#: Red-zone size on each side of every buffer (paper: 16 bytes).
RED_ZONE = 16

#: Default quarantine quota for the freed-block FIFO (paper: 2 GB).
DEFAULT_QUOTA = 2 * 1024 * 1024 * 1024

#: Multiplicative slowdown of guest computation under the analyzer.
#: Memcheck's dynamic binary instrumentation interprets *every*
#: instruction and propagates V-bits on each copy; the paper cites a
#: 22.2x slowdown — we model a 20x interpretation tax on compute.
SHADOW_COMPUTE_FACTOR = 20


@dataclass
class _TrackedBuffer:
    """Analyzer-internal bookkeeping for one allocation."""

    record: BufferRecord
    #: Address returned by the underlying allocator (to free later).
    raw: int
    #: First byte of the leading red zone.
    region_start: int
    #: One past the trailing red zone.
    region_end: int
    freed: bool = False

    @property
    def user(self) -> int:
        return self.record.address

    @property
    def size(self) -> int:
        return self.record.size


class ShadowAnalyzer(ExecutionMonitor):
    """Valgrind-style monitor: shadow memory + heap replacement.

    Args:
        heap: the underlying allocator to obtain raw memory from.
        meter: optional cycle meter (charged under ``"analysis"``).
        quarantine_quota: byte quota of the freed-block FIFO.
        ccid_subspaces: optional ``(index, count)`` pair implementing the
            Section IX multi-execution strategy — only buffers whose CCID
            falls in subspace ``index`` (of ``count``) have their free
            deferred, bounding quarantine memory to roughly ``1/count``.
    """

    def __init__(self, heap: Allocator, meter: Optional[CycleMeter] = None,
                 quarantine_quota: int = DEFAULT_QUOTA,
                 ccid_subspaces: Optional[Tuple[int, int]] = None) -> None:
        self.heap = heap
        self.memory = heap.memory
        self.meter = meter
        self.shadow = ShadowState()
        self.report = AnalysisReport()
        self.quarantine = FreedBlockQueue(quarantine_quota)
        self.ccid_subspaces = ccid_subspaces
        self._live: Dict[int, _TrackedBuffer] = {}
        self._by_serial: Dict[int, BufferRecord] = {}
        #: Sorted region starts + parallel tracked list, for classification.
        self._region_starts: List[int] = []
        self._regions: List[_TrackedBuffer] = []
        self._serial = 0
        self._warned: Set[Tuple[VulnType, Optional[int], str]] = set()

    # ------------------------------------------------------------------
    # Region index
    # ------------------------------------------------------------------

    def _index_add(self, tracked: _TrackedBuffer) -> None:
        pos = bisect.bisect_left(self._region_starts, tracked.region_start)
        self._region_starts.insert(pos, tracked.region_start)
        self._regions.insert(pos, tracked)

    def _index_remove(self, tracked: _TrackedBuffer) -> None:
        pos = bisect.bisect_left(self._region_starts, tracked.region_start)
        while pos < len(self._regions):
            if self._regions[pos] is tracked:
                del self._region_starts[pos]
                del self._regions[pos]
                return
            if self._region_starts[pos] != tracked.region_start:
                break
            pos += 1

    def _classify(self, address: int) -> Tuple[VulnType, Optional[BufferRecord]]:
        """Attribute a faulting byte to a buffer and a vulnerability kind."""
        pos = bisect.bisect_right(self._region_starts, address) - 1
        if 0 <= pos < len(self._regions):
            tracked = self._regions[pos]
            if tracked.region_start <= address < tracked.region_end:
                if tracked.freed:
                    return VulnType.USE_AFTER_FREE, tracked.record
                return VulnType.OVERFLOW, tracked.record
        return VulnType.NONE, None

    # ------------------------------------------------------------------
    # Warning emission (dedup = chained-warning suppression)
    # ------------------------------------------------------------------

    def _warn(self, kind: VulnType, address: int, access: str,
              record: Optional[BufferRecord], message: str = "") -> None:
        serial = record.serial if record is not None else None
        category = access.split(":")[0]
        key = (kind, serial, category)
        if key in self._warned:
            return
        self._warned.add(key)
        self.report.add(ShadowWarning(kind, address, access, record, message))

    def _check_access(self, address: int, size: int, access: str) -> None:
        """A-bit check over a range; one warning per implicated buffer."""
        if self.meter is not None:
            self.meter.charge("analysis", size)
        if self.shadow.is_accessible(address, size):
            return
        flags = self.shadow.accessibility(address, size)
        seen: Set[Optional[int]] = set()
        for offset, flag in enumerate(flags):
            if flag:
                continue
            kind, record = self._classify(address + offset)
            serial = record.serial if record else None
            if serial in seen:
                continue
            seen.add(serial)
            if record is None:
                self._warn(VulnType.NONE, address + offset, access, None,
                           "wild access outside any known buffer")
            else:
                self._warn(kind, address + offset, access, record)

    # ------------------------------------------------------------------
    # Heap replacement
    # ------------------------------------------------------------------

    def _current_context(self) -> Tuple[int, Tuple[int, ...], str]:
        """(ccid, true context, fun) for the allocation being dispatched."""
        process = self.process
        if process is None:
            return 0, (), "malloc"
        ccid = process.context_source.current_ccid()
        context = process.current_context()
        if process.last_alloc_site is not None:
            context = context + (process.last_alloc_site.site_id,)
        return ccid, context, "?"

    def _register(self, fun: str, raw: int, user: int, size: int,
                  valid: bool) -> _TrackedBuffer:
        ccid, context, _ = self._current_context()
        record = BufferRecord(self._serial, fun, ccid, user, size, context)
        self._serial += 1
        tracked = _TrackedBuffer(
            record=record,
            raw=raw,
            region_start=user - RED_ZONE,
            region_end=user + size + RED_ZONE,
        )
        self._live[user] = tracked
        self._by_serial[record.serial] = record
        self._index_add(tracked)
        # Red zones inaccessible; user area accessible.
        self.shadow.set_accessible(tracked.region_start, RED_ZONE, False)
        self.shadow.set_accessible(user, size, True)
        self.shadow.set_accessible(user + size, RED_ZONE, False)
        if valid:
            self.shadow.set_valid(user, size)
        else:
            self.shadow.set_invalid(user, size, origin=record.serial)
        return tracked

    def heap_alloc(self, fun: str, *args: int) -> int:
        if self.meter is not None:
            self.meter.charge("analysis", 200)
        if fun == "malloc":
            size = args[0]
            raw = self.heap.malloc(size + 2 * RED_ZONE)
            user = raw + RED_ZONE
            self._register(fun, raw, user, size, valid=False)
            return user
        if fun == "calloc":
            nmemb, size = args
            total = nmemb * size
            raw = self.heap.malloc(total + 2 * RED_ZONE)
            user = raw + RED_ZONE
            self.memory.fill(user, max(total, 1), 0)
            self._register(fun, raw, user, total, valid=True)
            return user
        if fun in ("memalign", "aligned_alloc", "posix_memalign"):
            alignment, size = args
            if alignment <= RED_ZONE:
                raw = self.heap.memalign(alignment, size + 2 * RED_ZONE)
                user = raw + RED_ZONE
            else:
                raw = self.heap.memalign(alignment, size + alignment + RED_ZONE)
                user = raw + alignment
            self._register(fun, raw, user, size, valid=False)
            return user
        if fun == "realloc":
            return self._realloc(*args)
        raise ValueError(f"unknown allocation function {fun!r}")

    def _realloc(self, address: int, size: int) -> int:
        if address == 0:
            raw = self.heap.malloc(size + 2 * RED_ZONE)
            user = raw + RED_ZONE
            self._register("realloc", raw, user, size, valid=False)
            return user
        if size == 0:
            self.heap_free(address)
            return 0
        old = self._live.get(address)
        if old is None:
            self._warn(VulnType.USE_AFTER_FREE, address, "realloc",
                       self._freed_record(address),
                       "realloc of freed or unknown pointer")
            raw = self.heap.malloc(size + 2 * RED_ZONE)
            user = raw + RED_ZONE
            self._register("realloc", raw, user, size, valid=False)
            return user
        # Allocate the new region, migrate data + shadow state (paper
        # realloc rules: kept prefix retains V-bits; growth is accessible
        # but invalid; the CCID is retagged at the realloc context).
        raw = self.heap.malloc(size + 2 * RED_ZONE)
        user = raw + RED_ZONE
        tracked = self._register("realloc", raw, user, size, valid=False)
        keep = min(old.size, size)
        if keep:
            self.memory.poke(user, self.memory.peek(old.user, keep))
            self.shadow.copy_shadow(user, old.user, keep)
        self._quarantine_free(old)
        return user

    def _freed_record(self, address: int) -> Optional[BufferRecord]:
        block = self.quarantine.find(address)
        if block is not None:
            tracked: _TrackedBuffer = block.payload
            return tracked.record
        return None

    def _quarantine_free(self, tracked: _TrackedBuffer) -> None:
        tracked.freed = True
        del self._live[tracked.user]
        span = tracked.region_end - tracked.region_start
        self.shadow.set_accessible(tracked.region_start, span, False)
        defer = True
        if self.ccid_subspaces is not None:
            index, count = self.ccid_subspaces
            defer = (tracked.record.ccid % count) == index
        if defer:
            evictions = self.quarantine.push(
                FreedBlock(tracked.user, span, tracked))
        else:
            evictions = [FreedBlock(tracked.user, span, tracked)]
        for block in evictions:
            old: _TrackedBuffer = block.payload
            self._index_remove(old)
            self.heap.free(old.raw)

    def heap_free(self, address: int) -> None:
        if self.meter is not None:
            self.meter.charge("analysis", 100)
        if address == 0:
            return
        tracked = self._live.get(address)
        if tracked is None:
            self._warn(VulnType.USE_AFTER_FREE, address, "free",
                       self._freed_record(address),
                       "double free or free of unknown pointer")
            return
        self._quarantine_free(tracked)

    # ------------------------------------------------------------------
    # Guest memory operations
    # ------------------------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Guest computation under DBI: charged at the Memcheck-like
        interpretation factor (base share + analysis share)."""
        if self.meter is not None:
            self.meter.charge("base", cycles)
            self.meter.charge("analysis",
                              cycles * (SHADOW_COMPUTE_FACTOR - 1))

    def read(self, address: int, size: int) -> TaggedValue:
        self._check_access(address, size, "read")
        data = self.memory.peek(address, size)
        mask = self.shadow.vmask(address, size)
        origin = None
        first_invalid = self.shadow.first_invalid(address, size)
        if first_invalid is not None:
            origin = self.shadow.origin_of(first_invalid)
        return TaggedValue(data, mask, origin)

    def write(self, address: int, value: TaggedValue) -> None:
        self._check_access(address, len(value), "write")
        self._poke_resumed(address, value.data)
        if value.valid_mask is None:
            self.shadow.set_valid(address, len(value))
            self.shadow.set_origins(address, [None] * len(value))
        else:
            self.shadow.set_vmask(address, value.valid_mask)
            origins = [value.origin if mask != 0xFF else None
                       for mask in value.valid_mask]
            self.shadow.set_origins(address, origins)

    def copy(self, dst: int, src: int, size: int) -> None:
        self._check_access(src, size, "read")
        self._check_access(dst, size, "write")
        self._poke_resumed(dst, self.memory.peek(src, size))
        self.shadow.copy_shadow(dst, src, size)

    def fill(self, address: int, size: int, byte: int) -> None:
        self._check_access(address, size, "write")
        self._poke_resumed(address, bytes([byte]) * size)
        self.shadow.set_valid(address, size)

    def _poke_resumed(self, address: int, data: bytes) -> None:
        """Write guest data, tolerating unmapped wilds (already warned)."""
        try:
            self.memory.poke(address, data)
        except SegmentationFault:
            pass

    # ------------------------------------------------------------------
    # Value-use checks (the only V-bit check points)
    # ------------------------------------------------------------------

    def use(self, value: TaggedValue, kind: str) -> None:
        if value.valid_mask is None:
            return
        index = value.first_invalid_byte
        if index is None:
            return
        record = None
        if value.origin is not None:
            record = self._by_serial.get(value.origin)
        self._warn(VulnType.UNINIT_READ, 0, f"use:{kind}", record,
                   f"uninitialized value used for {kind}")

    def syscall_out(self, address: int, size: int) -> bytes:
        self._check_access(address, size, "read:syscall")
        # Kernel-visible use: V-bits of the whole range are checked, one
        # warning per origin buffer, then set valid (chained-warning
        # suppression, Section V).
        if not self.shadow.is_fully_valid(address, size):
            masks = self.shadow.vmask(address, size)
            seen: Set[Optional[int]] = set()
            for offset, mask in enumerate(masks):
                if mask == 0xFF:
                    continue
                origin = self.shadow.origin_of(address + offset)
                if origin in seen:
                    continue
                seen.add(origin)
                record = (self._by_serial.get(origin)
                          if origin is not None else None)
                self._warn(VulnType.UNINIT_READ, address + offset,
                           "use:syscall", record,
                           "uninitialized data reaches a system call")
            self.shadow.set_valid(address, size)
        return self.memory.peek(address, size)

    def syscall_in(self, address: int, data: bytes) -> None:
        self._check_access(address, len(data), "write")
        self._poke_resumed(address, data)
        self.shadow.set_valid(address, len(data))

    # ------------------------------------------------------------------
    # End-of-run queries
    # ------------------------------------------------------------------

    def leaked_buffers(self) -> List[BufferRecord]:
        """Buffers still live when the program exited (leak check).

        Valgrind reports these as "definitely/possibly lost"; patch
        generation does not use them, but the forensics tooling surfaces
        them since leaks often accompany the buggy paths being analyzed.
        """
        return [tracked.record for tracked in self._live.values()]

    def live_bytes(self) -> int:
        """User bytes in still-live buffers at this point."""
        return sum(tracked.size for tracked in self._live.values())
