"""Packed shadow state: A-bits, V-bit masks and origins.

Memcheck-style shadow memory (paper Section V and Figure 3):

* **A-bit** — one per byte: may the program touch this byte at all?
* **V-bits** — one per *bit*: has this bit been given a value?  Stored as
  one mask byte per data byte (bit ``i`` of the mask = V-bit of data bit
  ``i``), which is what gives uninitialized-read detection bit precision.
* **origin** — per byte, the serial of the heap buffer whose uninitialized
  memory the byte's invalid bits came from; propagated on copies so a
  warning can be traced back to the vulnerable buffer (origin tracking).

Storage is page-granular sparse arrays, defaulting to *inaccessible,
invalid, no origin* — which is exactly right for a heap area where only
explicitly allocated buffers may be touched.

``_BytePlane`` stores each page in one of two columns: a *uniform* page
is just the ``int`` byte value every one of its 4096 bytes holds (an
absent page is implicitly uniform-default), and only pages with mixed
content materialize a ``bytearray``.  Shadow traffic is dominated by
whole-buffer fills (red-zoning, validity marking) and whole-buffer
scans, so most pages stay uniform and those operations are O(1) per
page instead of O(page size).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..machine.layout import PAGE_SIZE

#: Mask byte meaning "all eight bits valid".
ALL_VALID = 0xFF
#: Mask byte meaning "all eight bits invalid".
ALL_INVALID = 0x00

#: Shared full-page fill templates, keyed by byte value (a plane only
#: ever holds a handful of distinct values: default, 1, 0xFF, ...).
_FULL_PAGES: Dict[int, bytes] = {}


def _full_page(value: int) -> bytes:
    template = _FULL_PAGES.get(value)
    if template is None:
        template = bytes([value]) * PAGE_SIZE
        _FULL_PAGES[value] = template
    return template


class _BytePlane:
    """A sparse per-byte plane of small integers with a default.

    Page representation (the columnar split):

    * absent from ``_pages`` — uniform page of ``default``;
    * ``int`` value — uniform page of that byte value;
    * ``bytearray`` — materialized page with mixed content.
    """

    def __init__(self, default: int) -> None:
        self.default = default
        self._pages: Dict[int, Union[int, bytearray]] = {}

    def _page(self, page_no: int) -> bytearray:
        """Materialize ``page_no`` as a mutable bytearray."""
        page = self._pages.get(page_no)
        if type(page) is bytearray:
            return page
        if page is None:
            page = bytearray(_full_page(self.default))
        else:
            page = bytearray(_full_page(page))
        self._pages[page_no] = page
        return page

    def set_range(self, address: int, size: int, value: int) -> None:
        """Set ``size`` bytes starting at ``address`` to ``value``.

        Fast paths: a chunk covering one *whole* page stores just the
        uniform byte value (dropping the page entirely when filled with
        the default, so big default fills also shrink the plane), and a
        partial fill with the value a uniform page already holds is a
        no-op.  Only partial fills of mixed pages touch page content.
        """
        remaining = size
        cursor = address
        pages = self._pages
        default = self.default
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            if chunk == PAGE_SIZE:
                # Whole page: record the uniform value, content-free.
                if value == default:
                    pages.pop(page_no, None)
                else:
                    pages[page_no] = value
            else:
                page = pages.get(page_no)
                if type(page) is bytearray:
                    page[offset:offset + chunk] = _full_page(value)[:chunk]
                elif value != (default if page is None else page):
                    # Partial fill changes part of a uniform page.
                    self._page(page_no)[offset:offset + chunk] = (
                        _full_page(value)[:chunk])
                # else: the uniform page already holds ``value``.
            cursor += chunk
            remaining -= chunk

    def get_range(self, address: int, size: int) -> bytes:
        """Read ``size`` plane bytes starting at ``address``."""
        out = bytearray(size)
        view = memoryview(out)
        position = 0
        remaining = size
        cursor = address
        default = self.default
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._pages.get(page_no)
            if type(page) is bytearray:
                view[position:position + chunk] = \
                    memoryview(page)[offset:offset + chunk]
            else:
                value = default if page is None else page
                if value:  # the fresh buffer is already zero-filled
                    view[position:position + chunk] = \
                        _full_page(value)[:chunk]
            position += chunk
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_range(self, address: int, values: bytes) -> None:
        """Write raw plane bytes starting at ``address``."""
        remaining = len(values)
        cursor = address
        consumed = 0
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            self._page(page_no)[offset:offset + chunk] = (
                values[consumed:consumed + chunk])
            cursor += chunk
            consumed += chunk
            remaining -= chunk

    def first_not_equal(self, address: int, size: int,
                        value: int) -> Optional[int]:
        """Address of the first byte in range differing from ``value``.

        Uniform pages answer in O(1): either every byte matches (skip)
        or the first byte of the chunk differs.  Mixed pages compare the
        chunk against a template (memcmp) and only on mismatch walk to
        the differing byte.
        """
        remaining = size
        cursor = address
        default = self.default
        template = _full_page(value)
        while remaining > 0:
            page_no, offset = divmod(cursor, PAGE_SIZE)
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._pages.get(page_no)
            if type(page) is bytearray:
                window = page[offset:offset + chunk]
                if window != template[:chunk]:
                    for index, byte in enumerate(window):
                        if byte != value:
                            return cursor + index
            elif (default if page is None else page) != value:
                return cursor
            cursor += chunk
            remaining -= chunk
        return None


class ShadowState:
    """The combined A/V/origin shadow planes for one guest process."""

    def __init__(self) -> None:
        self._a = _BytePlane(default=0)          # 0 = inaccessible
        self._v = _BytePlane(default=ALL_INVALID)
        self._origins: Dict[int, int] = {}       # byte address -> serial

    # -- accessibility -------------------------------------------------

    def set_accessible(self, address: int, size: int,
                       accessible: bool = True) -> None:
        """Mark a byte range (in)accessible."""
        self._a.set_range(address, size, 1 if accessible else 0)

    def first_inaccessible(self, address: int, size: int) -> Optional[int]:
        """First inaccessible byte address in the range, or ``None``."""
        return self._a.first_not_equal(address, size, 1)

    def accessibility(self, address: int, size: int) -> bytes:
        """Raw A-bit bytes (0/1 per byte) for a range."""
        return self._a.get_range(address, size)

    def is_accessible(self, address: int, size: int = 1) -> bool:
        """True when the entire range is accessible."""
        return self.first_inaccessible(address, size) is None

    # -- validity --------------------------------------------------------

    def set_valid(self, address: int, size: int) -> None:
        """Mark bytes fully initialized."""
        self._v.set_range(address, size, ALL_VALID)

    def set_invalid(self, address: int, size: int,
                    origin: Optional[int] = None) -> None:
        """Mark bytes fully uninitialized, optionally recording origin."""
        self._v.set_range(address, size, ALL_INVALID)
        if origin is not None:
            for offset in range(size):
                self._origins[address + offset] = origin

    def set_vmask(self, address: int, masks: bytes) -> None:
        """Write per-byte validity masks (bit precision)."""
        self._v.write_range(address, masks)

    def vmask(self, address: int, size: int) -> bytes:
        """Per-byte validity masks for a range."""
        return self._v.get_range(address, size)

    def first_invalid(self, address: int, size: int) -> Optional[int]:
        """First byte with any invalid bit, or ``None``."""
        return self._v.first_not_equal(address, size, ALL_VALID)

    def is_fully_valid(self, address: int, size: int) -> bool:
        """True when every bit in the range is initialized."""
        return self.first_invalid(address, size) is None

    # -- origins ---------------------------------------------------------

    def origin_of(self, address: int) -> Optional[int]:
        """Origin serial recorded for the byte at ``address``."""
        return self._origins.get(address)

    def origins(self, address: int, size: int) -> List[Optional[int]]:
        """Per-byte origins for a range."""
        return [self._origins.get(address + i) for i in range(size)]

    def set_origins(self, address: int,
                    origins: List[Optional[int]]) -> None:
        """Write per-byte origins (``None`` clears)."""
        for offset, origin in enumerate(origins):
            if origin is None:
                self._origins.pop(address + offset, None)
            else:
                self._origins[address + offset] = origin

    # -- compound operations ----------------------------------------------

    def copy_shadow(self, dst: int, src: int, size: int) -> None:
        """Propagate V-bits and origins on a memory copy (never checks)."""
        self.set_vmask(dst, self.vmask(src, size))
        self.set_origins(dst, self.origins(src, size))
