"""Analysis warnings and the offline report.

Every violation the shadow analyzer observes becomes a :class:`Warning`
carrying the vulnerable buffer's identity — most importantly its
allocation-time calling context ID, which is the invariant the patch will
be keyed on (paper Section III-C).  The :class:`AnalysisReport` plays the
role of the post-processing script from Section V: it groups the (possibly
many, resumed-past) warnings by origin buffer and produces one patch
specification per vulnerable allocation context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..vulntypes import VulnType


@dataclass(frozen=True)
class BufferRecord:
    """The analyzer's view of one heap buffer."""

    serial: int
    fun: str
    ccid: int
    address: int
    size: int
    #: True allocation-time calling context (site ids); kept alongside the
    #: encoded CCID for report readability and encoder cross-checks.
    context: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ShadowWarning:
    """One detected violation (execution resumes afterwards)."""

    kind: VulnType
    #: Faulting address (for access violations) or 0 for value uses.
    address: int
    #: Access kind: "read", "write", "use:branch", "use:address",
    #: "use:syscall".
    access: str
    #: The vulnerable buffer — the *origin* for uninitialized reads, the
    #: overflowed/freed buffer for the others.  ``None`` if unattributable
    #: (wild access).
    buffer: Optional[BufferRecord]
    message: str = ""

    @property
    def attributable(self) -> bool:
        """True when the warning points at a concrete heap buffer."""
        return self.buffer is not None


@dataclass(frozen=True)
class ReportSummary:
    """Compact, pickle-friendly digest of one :class:`AnalysisReport`.

    The multi-process diagnosis engine (:mod:`repro.parallel`) ships one
    of these back from each worker instead of the full warning list: it
    holds plain values only — no analyzer, allocator or machine
    references — so it crosses process boundaries cheaply and never
    drags live simulator state into a pickle.
    """

    #: Total warnings emitted during the replay.
    warnings: int
    #: Union of all warning kinds seen.
    kinds: VulnType
    #: Distinct buffers implicated by at least one warning.
    buffers_implicated: int
    #: The Section V grouping, as sorted ``(fun, ccid, kinds)`` rows.
    candidates: Tuple[Tuple[str, int, VulnType], ...] = ()


@dataclass
class AnalysisReport:
    """All warnings from one offline replay of an attack input."""

    warnings: List[ShadowWarning] = field(default_factory=list)

    def add(self, warning: ShadowWarning) -> None:
        """Append one warning."""
        self.warnings.append(warning)

    def __len__(self) -> int:
        return len(self.warnings)

    @property
    def detected(self) -> bool:
        """True when at least one attributable violation was seen."""
        return any(w.attributable for w in self.warnings)

    def kinds_seen(self) -> VulnType:
        """Union of all warning kinds."""
        result = VulnType.NONE
        for warning in self.warnings:
            result |= warning.kind
        return result

    def group_by_origin(self) -> Dict[Tuple[str, int], VulnType]:
        """The Section V post-processing: ``(FUN, CCID) -> T`` per origin.

        Warnings that cannot be attributed to a buffer are skipped (they
        cannot yield a calling-context-keyed patch).
        """
        grouped: Dict[Tuple[str, int], VulnType] = {}
        for warning in self.warnings:
            if warning.buffer is None:
                continue
            key = (warning.buffer.fun, warning.buffer.ccid)
            grouped[key] = grouped.get(key, VulnType.NONE) | warning.kind
        return grouped

    def summary(self) -> ReportSummary:
        """The compact digest shipped across process boundaries."""
        return ReportSummary(
            warnings=len(self.warnings),
            kinds=self.kinds_seen(),
            buffers_implicated=len(self.buffers_implicated()),
            candidates=tuple(
                (fun, ccid, kinds)
                for (fun, ccid), kinds in
                sorted(self.group_by_origin().items())),
        )

    def buffers_implicated(self) -> List[BufferRecord]:
        """Distinct buffers named by at least one warning."""
        seen: Dict[int, BufferRecord] = {}
        for warning in self.warnings:
            if warning.buffer is not None:
                seen.setdefault(warning.buffer.serial, warning.buffer)
        return [seen[serial] for serial in sorted(seen)]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (for CI pipelines and tooling)."""
        def buffer_dict(buffer: Optional[BufferRecord]):
            if buffer is None:
                return None
            return {
                "serial": buffer.serial,
                "fun": buffer.fun,
                "ccid": buffer.ccid,
                "address": buffer.address,
                "size": buffer.size,
                "context": list(buffer.context),
            }

        return {
            "warnings": [
                {
                    "kind": warning.kind.describe(),
                    "address": warning.address,
                    "access": warning.access,
                    "buffer": buffer_dict(warning.buffer),
                    "message": warning.message,
                }
                for warning in self.warnings
            ],
            "patch_candidates": [
                {"fun": fun, "ccid": ccid, "type": vuln.describe()}
                for (fun, ccid), vuln in
                sorted(self.group_by_origin().items())
            ],
        }

    def render(self) -> str:
        """Human-readable multi-line report (the analyzer's output)."""
        lines = [f"=== shadow analysis report: {len(self.warnings)} "
                 f"warning(s) ==="]
        for index, warning in enumerate(self.warnings):
            buf = warning.buffer
            where = (f"buffer #{buf.serial} ({buf.fun}, ccid=0x{buf.ccid:x}, "
                     f"size={buf.size})" if buf else "<unattributed>")
            lines.append(
                f"[{index}] {warning.kind.describe():>12} {warning.access:<12}"
                f" at 0x{warning.address:012x} -> {where}"
                + (f"  {warning.message}" if warning.message else ""))
        for (fun, ccid), kinds in sorted(self.group_by_origin().items()):
            lines.append(
                f"patch candidate: FUN={fun} CCID=0x{ccid:x} "
                f"T={kinds.describe()}")
        return "\n".join(lines)
