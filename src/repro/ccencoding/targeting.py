"""Targeted calling-context encoding: the site-selection algorithms.

Section IV of the paper.  Given a call graph and a set of *target
functions* (for HeapTherapy+, the allocation APIs), each strategy selects
the set of call sites whose instrumentation is kept:

* **FCS** — Full Call Site: every site (the baseline all prior encoders
  enforce).
* **TCS** — Targeted Call Site: only sites that can reach a target
  (backward reachability on the call graph, §IV-A).
* **Slim** — TCS minus sites in *non-branching* nodes: a node with a single
  target-reaching out-edge adds no distinguishing information (§IV-B).
* **Incremental** — pairs the target function's identity with the CCID, so
  only *true branching* nodes (≥ 2 out-edges reaching the *same* target)
  need instrumentation; false branching nodes (edges reaching only
  different targets) are skipped (§IV-C, Algorithm 1).

All functions operate on the call multigraph: two call sites between the
same functions are distinct edges and count separately toward branching.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from ..program.callgraph import CallGraph


class Strategy(enum.Enum):
    """Site-selection strategy from Section IV."""

    FCS = "fcs"
    TCS = "tcs"
    SLIM = "slim"
    INCREMENTAL = "incremental"

    @classmethod
    def from_name(cls, name: str) -> "Strategy":
        """Parse a strategy from its lowercase name."""
        try:
            return cls(name.lower())
        except ValueError:
            raise ValueError(
                f"unknown strategy {name!r}; choose from "
                f"{[s.value for s in cls]}") from None


def relevant_sites(graph: CallGraph,
                   targets: Iterable[str]) -> FrozenSet[int]:
    """Site ids of edges that can reach some target (TCS edge set).

    An edge ``u -> v`` reaches a target iff ``v`` is a target or some
    target is reachable from ``v``.
    """
    reaching = graph.reachable_to(targets)
    return frozenset(site.site_id for site in graph.sites
                     if site.callee in reaching)


def branching_nodes(graph: CallGraph,
                    targets: Iterable[str]) -> FrozenSet[str]:
    """Functions with two or more target-reaching out-edges (§IV-B)."""
    reaching = graph.reachable_to(targets)
    result: Set[str] = set()
    for name in graph.function_names:
        relevant_out = sum(1 for site in graph.out_sites(name)
                           if site.callee in reaching)
        if relevant_out >= 2:
            result.add(name)
    return frozenset(result)


def slim_sites(graph: CallGraph, targets: Iterable[str]) -> FrozenSet[int]:
    """TCS edges restricted to branching nodes (Slim, §IV-B)."""
    targets = list(targets)
    reaching = graph.reachable_to(targets)
    branching = branching_nodes(graph, targets)
    return frozenset(site.site_id for site in graph.sites
                     if site.caller in branching
                     and site.callee in reaching)


def sites_reaching_target(graph: CallGraph, target: str) -> FrozenSet[int]:
    """Edges that can reach one specific target — backward BFS from it.

    This is the per-target reachability of Algorithm 1 lines 4–10 (the
    visited-set makes back edges safe).
    """
    visited: Set[str] = {target}
    queue = deque([target])
    edges: Set[int] = set()
    while queue:
        node = queue.popleft()
        for site in graph.in_sites(node):
            edges.add(site.site_id)
            if site.caller not in visited:
                visited.add(site.caller)
                queue.append(site.caller)
    return frozenset(edges)


def incremental_sites(graph: CallGraph,
                      targets: Iterable[str]) -> FrozenSet[int]:
    """Algorithm 1: union over targets of true-branching nodes' edges.

    For each target ``t``: a node is *true branching* w.r.t. ``t`` when two
    or more of its out-edges reach ``t``; only those edges are kept.  The
    union over all targets is the instrumentation set — distinguishability
    is preserved because the analyzer pairs the CCID with the identity of
    the intercepted target function.
    """
    instrumentation: Set[int] = set()
    for target in targets:
        reaching_t = sites_reaching_target(graph, target)
        per_node: Dict[str, List[int]] = {}
        for site_id in reaching_t:
            site = graph.site_by_id(site_id)
            per_node.setdefault(site.caller, []).append(site_id)
        for node, edges in per_node.items():
            if len(edges) > 1:
                instrumentation.update(edges)
    return frozenset(instrumentation)


def select_sites(graph: CallGraph, targets: Sequence[str],
                 strategy: Strategy, prune: bool = False) -> FrozenSet[int]:
    """Apply ``strategy`` and return the instrumented site-id set.

    With ``prune=True`` the static heap-reachability pre-pass
    (:mod:`repro.analysis.reachability`) runs on top of the strategy's
    selection: edges dead from the entry are dropped and, on acyclic
    graphs, one default edge per caller is elided.  The result is always
    a subset of the plain selection and preserves the distinguishability
    invariant.
    """
    if strategy is Strategy.FCS:
        sites = frozenset(site.site_id for site in graph.sites)
    elif strategy is Strategy.TCS:
        sites = relevant_sites(graph, targets)
    elif strategy is Strategy.SLIM:
        sites = slim_sites(graph, targets)
    elif strategy is Strategy.INCREMENTAL:
        sites = incremental_sites(graph, targets)
    else:
        raise ValueError(f"unhandled strategy {strategy!r}")
    if prune:
        # Imported lazily: repro.analysis depends on repro.ccencoding for
        # its patch-generation half, so a module-level import would cycle.
        from ..analysis.reachability import prune_instrumentation
        sites = prune_instrumentation(graph, targets, sites)
    return sites
