"""Calling-context encoding with targeted optimizations (paper Section IV).

The package provides three encoding schemes (PCC, PCCE, DeltaPath) and the
four site-selection strategies (FCS, TCS, Slim, Incremental) that form the
paper's *targeted calling context encoding* contribution, plus the online
runtime driven by the process and a stack-walking baseline.
"""

from .base import (
    Codec,
    EncodingError,
    EncodingScheme,
    MASK64,
    decode_by_enumeration,
    splitmix64,
)
from .deltapath import DeltaPathCodec, DeltaPathScheme
from .instrumentation import (
    BYTES_PER_PROLOGUE,
    BYTES_PER_SITE,
    InstrumentationPlan,
    plans_for_all_strategies,
)
from .pcc import PCCCodec, PCCScheme
from .pcce import AdditiveCodec, PCCECodec, PCCEScheme
from .runtime import EncodingRuntime, WalkedContextSource
from .targeting import (
    Strategy,
    branching_nodes,
    incremental_sites,
    relevant_sites,
    select_sites,
    sites_reaching_target,
    slim_sites,
)

#: Registry of schemes by name.
SCHEMES = {
    "pcc": PCCScheme(),
    "pcce": PCCEScheme(),
    "deltapath": DeltaPathScheme(),
}

__all__ = [
    "AdditiveCodec",
    "BYTES_PER_PROLOGUE",
    "BYTES_PER_SITE",
    "Codec",
    "DeltaPathCodec",
    "DeltaPathScheme",
    "EncodingError",
    "EncodingRuntime",
    "EncodingScheme",
    "InstrumentationPlan",
    "MASK64",
    "PCCCodec",
    "PCCECodec",
    "PCCEScheme",
    "PCCScheme",
    "SCHEMES",
    "Strategy",
    "WalkedContextSource",
    "branching_nodes",
    "decode_by_enumeration",
    "incremental_sites",
    "plans_for_all_strategies",
    "relevant_sites",
    "select_sites",
    "sites_reaching_target",
    "slim_sites",
    "splitmix64",
]
