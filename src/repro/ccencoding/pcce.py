"""Precise Calling Context Encoding (PCCE) [Sumner et al., ICSE'10].

An additive scheme descended from Ball–Larus path numbering: each edge
carries a constant ``c`` and the update is ``V = t + c``, chosen so that at
any function ``f`` the value ``V`` is a *dense index* in
``[0, numContexts(f))`` — a bijection between contexts and ids, hence
decodable in closed form.

Interaction with the targeted optimizations:

* **FCS** — classic numbering over the whole (acyclic) call graph.
* **TCS** — numbering over the target-reaching subgraph.  Every edge on a
  path to a target is itself target-reaching, so the encoding of target
  contexts stays dense and exactly decodable.
* **Slim / Incremental** — the instrumented set is no longer closed under
  path prefixes, so dense numbering does not apply.  The codec falls back
  to randomized additive constants whose per-target injectivity is
  *verified at build time* (re-salted on collision) and decodes by bounded
  enumeration.  The paper demonstrates its optimizations on PCC; this is
  the natural precise-scheme analogue.

This implementation requires an acyclic call graph (the original handles
recursion by spilling ``V`` at back edges; HeapTherapy+ itself uses PCC,
which needs no such machinery).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..program.callgraph import CallGraph, CallSite
from .base import (
    Codec,
    EncodingError,
    EncodingScheme,
    decode_by_enumeration,
    splitmix64,
)
from .instrumentation import InstrumentationPlan
from .targeting import Strategy


def _topological_order(graph: CallGraph) -> List[str]:
    """Topological order of functions; raises on cycles.

    Delegates to the iterative :meth:`CallGraph.topological_order`, so
    arbitrarily deep call chains cannot exhaust the recursion limit.
    """
    if not graph.is_acyclic():
        raise EncodingError(
            "PCCE/DeltaPath require an acyclic call graph "
            "(use PCC for recursive programs)")
    return graph.topological_order()


class AdditiveCodec(Codec):
    """Shared machinery for PCCE and DeltaPath: ``V = t + c`` (mod 2**bits).

    Depending on the plan's strategy, constants come from dense numbering
    (decodable in closed form) or from verified random salts (decodable by
    enumeration).
    """

    scheme_name = "additive"
    value_bits = 64

    def __init__(self, plan: InstrumentationPlan,
                 auto_repair: bool = True) -> None:
        super().__init__(plan)
        self._mask = (1 << self.value_bits) - 1
        self._constants: Dict[int, int] = {}
        #: Per-site re-salt counters (random strategies only); advanced
        #: deterministically by the repair planner.
        self._salt_attempts: Dict[int, int] = {}
        #: numContexts per function (dense strategies only).
        self.num_contexts: Dict[str, int] = {}
        self._dense = plan.strategy in (Strategy.FCS, Strategy.TCS)
        if self._dense:
            self._assign_dense_constants()
        else:
            self._assign_random_constants()
            if auto_repair:
                self._repair_random_constants()

    @property
    def dense(self) -> bool:
        """True when constants come from dense numbering (FCS/TCS)."""
        return self._dense

    # ------------------------------------------------------------------
    # Constant assignment
    # ------------------------------------------------------------------

    def _dense_nodes_and_edges(
            self) -> Tuple[List[str], Dict[str, List[CallSite]]]:
        """Functions and incoming instrumented edges, restricted to the
        subgraph both reachable from the entry and participating in the
        plan (for TCS: the target-reaching subgraph)."""
        graph = self.graph
        forward = graph.reachable_from_entry()
        order = [name for name in _topological_order(graph)
                 if name in forward]
        incoming: Dict[str, List[CallSite]] = {name: [] for name in order}
        for site in graph.sites:
            if (site.site_id in self.plan.sites
                    and site.caller in forward
                    and site.callee in incoming):
                incoming[site.callee].append(site)
        for edges in incoming.values():
            edges.sort(key=lambda s: s.site_id)
        return order, incoming

    def _assign_dense_constants(self) -> None:
        order, incoming = self._dense_nodes_and_edges()
        counts: Dict[str, int] = {}
        for name in order:
            if name == self.graph.entry:
                counts[name] = 1
                continue
            offset = 0
            for site in incoming[name]:
                caller_count = counts.get(site.caller, 0)
                if caller_count == 0:
                    continue
                self._constants[site.site_id] = offset
                offset += caller_count
            counts[name] = offset
        self.num_contexts = counts

    def _random_constant(self, site_id: int, attempt: int) -> int:
        """The deterministic salt of one site at one re-salt attempt."""
        return splitmix64(site_id * 0x1_0000 + attempt) & self._mask

    def _assign_random_constants(self) -> None:
        for site_id in self.plan.sites:
            self._constants[site_id] = self._random_constant(
                site_id, self._salt_attempts.get(site_id, 0))

    def resalt_site(self, site_id: int) -> int:
        """Advance one site's salt; returns the new constant.

        The hook the static repair planner uses to separate a concrete
        pair of colliding contexts: only the sites that actually
        distinguish the pair are re-salted, deterministically, instead
        of the old blind whole-plan re-salt loop.
        """
        if site_id not in self.plan.sites:
            raise EncodingError(
                f"site {site_id} is not instrumented; cannot re-salt")
        attempt = self._salt_attempts.get(site_id, 0) + 1
        self._salt_attempts[site_id] = attempt
        constant = self._random_constant(site_id, attempt)
        self._constants[site_id] = constant
        return constant

    def _repair_random_constants(self) -> None:
        # Certify per-target injectivity statically and, on the
        # (astronomically unlikely) collision, re-salt exactly the sites
        # that distinguish the colliding pair.  The value-set pass keeps
        # this build-time only and replaces the blind re-salt loop that
        # used to enumerate every context per attempt.
        from ..analysis.encverify import repair_salt_collisions
        repair_salt_collisions(self)

    # ------------------------------------------------------------------
    # Codec interface
    # ------------------------------------------------------------------

    def seed(self) -> int:
        return 0

    def site_constant(self, site: CallSite) -> int:
        """The additive constant of an instrumented site."""
        return self._constants.get(site.site_id, 0)

    def mix(self, value: int, site: CallSite) -> int:
        return (value + self.site_constant(site)) & self._mask

    @property
    def supports_decoding(self) -> bool:
        return True

    def decode(self, target: str, ccid: int) -> Tuple[CallSite, ...]:
        if not self._dense:
            return decode_by_enumeration(self, target, ccid)
        graph = self.graph
        if not graph.has_function(target):
            raise EncodingError(f"unknown target {target!r}")
        _, incoming = self._dense_nodes_and_edges()
        path: List[CallSite] = []
        node = target
        value = ccid
        while node != graph.entry:
            edges = [site for site in incoming.get(node, ())
                     if site.site_id in self._constants]
            edges.sort(key=lambda s: self._constants[s.site_id])
            chosen = None
            for site in edges:
                if self._constants[site.site_id] <= value:
                    chosen = site
                else:
                    break
            if chosen is None:
                raise EncodingError(
                    f"CCID {ccid} is not a valid context id for {target!r}")
            path.append(chosen)
            value -= self._constants[chosen.site_id]
            node = chosen.caller
        if value != 0:
            raise EncodingError(
                f"CCID {ccid} is not a valid context id for {target!r}")
        path.reverse()
        return tuple(path)


class PCCECodec(AdditiveCodec):
    """64-bit additive codec."""

    scheme_name = "pcce"
    value_bits = 64


class PCCEScheme(EncodingScheme):
    """Factory for :class:`PCCECodec`."""

    name = "pcce"

    def build(self, plan: InstrumentationPlan) -> PCCECodec:
        return PCCECodec(plan)
