"""Instrumentation plans: which call sites carry encoding updates.

The plan is the product of the "Program Instrumentation Tool" (paper
Figure 1, Section VII): call-graph analysis selects the site set for the
chosen strategy; the instrumented program is then used both offline and
online.  Because the reproduction interprets programs rather than editing
binaries, the plan is a first-class object consulted by the encoding
runtime at each call site.

The plan also carries the *static* accounting used for Table III: each
instrumented call site costs a handful of inserted instructions (load of
``t``, multiply-add, store of ``V``), and each function containing at
least one instrumented site pays a prologue read of ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple

from ..program.callgraph import CallGraph, CallSite
from .targeting import Strategy, select_sites

#: Modeled bytes of machine code inserted per instrumented call site
#: (mov/lea/imul/add/mov on x86-64).
BYTES_PER_SITE: int = 18

#: Modeled bytes inserted per instrumented function prologue (read of the
#: thread-local V into a stack slot).
BYTES_PER_PROLOGUE: int = 9


@dataclass(frozen=True)
class InstrumentationPlan:
    """The outcome of instrumenting one program for a set of targets."""

    graph: CallGraph
    targets: Tuple[str, ...]
    strategy: Strategy
    #: Ids of instrumented call sites.
    sites: FrozenSet[int]
    #: Names of functions containing at least one instrumented site.
    instrumented_functions: FrozenSet[str]
    #: True when the static heap-reachability pre-pass was applied on top
    #: of the strategy selection (see :mod:`repro.analysis.reachability`).
    pruned: bool = False

    @staticmethod
    def build(graph: CallGraph, targets: Sequence[str],
              strategy: Strategy, prune: bool = False
              ) -> "InstrumentationPlan":
        """Run the strategy's call-graph analysis and build the plan."""
        targets = tuple(targets)
        missing = [t for t in targets if not graph.has_function(t)]
        if missing:
            raise ValueError(f"targets not in call graph: {missing}")
        sites = select_sites(graph, targets, strategy, prune=prune)
        functions = frozenset(graph.site_by_id(sid).caller for sid in sites)
        return InstrumentationPlan(graph, targets, strategy, sites,
                                   functions, pruned=prune)

    def is_instrumented(self, site: CallSite) -> bool:
        """True if ``site`` carries an encoding update."""
        return site.site_id in self.sites

    # ------------------------------------------------------------------
    # Static accounting (Table III model)
    # ------------------------------------------------------------------

    @property
    def site_count(self) -> int:
        """Number of instrumented call sites."""
        return len(self.sites)

    @property
    def function_count(self) -> int:
        """Number of functions with an instrumented prologue."""
        return len(self.instrumented_functions)

    @property
    def inserted_bytes(self) -> int:
        """Modeled bytes of inserted machine code."""
        return (self.site_count * BYTES_PER_SITE
                + self.function_count * BYTES_PER_PROLOGUE)

    def size_increase(self, base_binary_bytes: int) -> float:
        """Fractional binary-size increase over ``base_binary_bytes``."""
        if base_binary_bytes <= 0:
            raise ValueError("base binary size must be positive")
        return self.inserted_bytes / base_binary_bytes

    def summary(self) -> Dict[str, object]:
        """Row for instrumentation-comparison reports."""
        return {
            "strategy": self.strategy.value,
            "pruned": self.pruned,
            "targets": list(self.targets),
            "instrumented_sites": self.site_count,
            "total_sites": self.graph.site_count,
            "instrumented_functions": self.function_count,
            "total_functions": len(self.graph.function_names),
            "inserted_bytes": self.inserted_bytes,
        }


def plans_for_all_strategies(
        graph: CallGraph, targets: Sequence[str],
        prune: bool = False) -> Dict[Strategy, InstrumentationPlan]:
    """Build one plan per strategy — the §VIII-B1 comparison setup."""
    return {strategy: InstrumentationPlan.build(graph, targets, strategy,
                                                prune=prune)
            for strategy in Strategy}
