"""Encoding scheme interfaces and shared arithmetic.

A *scheme* (PCC, PCCE, DeltaPath) turns an
:class:`~repro.ccencoding.instrumentation.InstrumentationPlan` into a
*codec*: the per-site constants plus the mixing function.  A codec can

* produce a :class:`~repro.ccencoding.runtime.EncodingRuntime` — the
  online, thread-local-V state machine driven by the process,
* statically encode a known calling context (for tests and offline
  tooling), and
* decode a CCID back to a context where the scheme supports it.

The mixing discipline shared by all schemes here: the value ``V`` carried
by the runtime is always a fold of the *instrumented* call sites along the
current stack path, in order::

    V = mix(mix(mix(seed, c1), c2), c3)      # instrumented sites only

Uninstrumented sites contribute nothing.  Our runtime restores ``V`` on
return (one extra store per call in instrumented functions, folded into
the cost model); this keeps ``V`` a pure function of the current path even
under the pruned Slim/Incremental plans, where original PCC would leave a
sibling subtree's value behind.  See ``DESIGN.md`` §5.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from ..program.callgraph import CallGraph, CallSite

MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finalizer — turns dense site ids into dispersed constants."""
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


class EncodingError(ValueError):
    """Scheme cannot encode/decode the requested graph or id."""


class Codec(abc.ABC):
    """Per-site constants + mixing for one (scheme, plan) pair."""

    #: Scheme name, e.g. ``"pcc"``.
    scheme_name: str

    def __init__(self, plan: "InstrumentationPlan") -> None:
        self.plan = plan

    @property
    def graph(self) -> CallGraph:
        """The call graph the plan was computed on."""
        return self.plan.graph

    @abc.abstractmethod
    def seed(self) -> int:
        """Initial value of V at program entry."""

    @abc.abstractmethod
    def mix(self, value: int, site: CallSite) -> int:
        """Fold one instrumented call site into ``value``."""

    def encode_path(self, path: Sequence[CallSite]) -> int:
        """Statically encode a calling context (a root-to-target path)."""
        value = self.seed()
        instrumented = self.plan.sites
        for site in path:
            if site.site_id in instrumented:
                value = self.mix(value, site)
        return value

    def encode_context_ids(self, site_ids: Sequence[int]) -> int:
        """Like :meth:`encode_path` but from raw site ids."""
        path = [self.graph.site_by_id(sid) for sid in site_ids]
        return self.encode_path(path)

    @property
    def supports_decoding(self) -> bool:
        """True if :meth:`decode` is implemented for this codec."""
        return False

    def decode(self, target: str, ccid: int) -> Tuple[CallSite, ...]:
        """Recover the calling context of ``target`` encoded as ``ccid``.

        Only available on precise schemes; see subclasses.
        """
        raise EncodingError(f"{self.scheme_name} does not support decoding")

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------

    def context_table(self, target: str) -> Dict[int, List[Tuple[CallSite, ...]]]:
        """Map each CCID to the contexts of ``target`` that produce it."""
        table: Dict[int, List[Tuple[CallSite, ...]]] = {}
        for context in self.graph.enumerate_contexts(target):
            table.setdefault(self.encode_path(context), []).append(context)
        return table

    def collisions(self, target: str) -> List[List[Tuple[CallSite, ...]]]:
        """Groups of distinct contexts of ``target`` sharing one CCID."""
        return [group for group in self.context_table(target).values()
                if len(group) > 1]

    def is_injective_for(self, target: str) -> bool:
        """True when every context of ``target`` has a unique CCID."""
        return not self.collisions(target)


class EncodingScheme(abc.ABC):
    """Factory turning an instrumentation plan into a codec."""

    #: Scheme name used in reports (``"pcc"``, ``"pcce"``, ``"deltapath"``).
    name: str

    @abc.abstractmethod
    def build(self, plan: "InstrumentationPlan") -> Codec:
        """Compute constants for ``plan`` and return the codec."""


def decode_by_enumeration(codec: Codec, target: str,
                          ccid: int) -> Tuple[CallSite, ...]:
    """Decode by searching all contexts of ``target`` — precise but
    enumeration-bounded; used where closed-form reverse decoding does not
    apply (Slim/Incremental plans on additive schemes)."""
    matches = [context for context in codec.graph.enumerate_contexts(target)
               if codec.encode_path(context) == ccid]
    if not matches:
        raise EncodingError(
            f"no context of {target!r} encodes to {ccid}")
    if len(matches) > 1:
        raise EncodingError(
            f"CCID {ccid} of {target!r} is ambiguous "
            f"({len(matches)} contexts)")
    return matches[0]


# Imported at the bottom to avoid a circular import at module load time.
from .instrumentation import InstrumentationPlan  # noqa: E402  (cycle guard)
