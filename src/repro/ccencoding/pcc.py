"""Probabilistic Calling Context (PCC) encoding [Bond & McKinley, OOPSLA'07].

The scheme HeapTherapy+ adopts: at each instrumented call site the
thread-local value is updated as ``V = 3 * t + c`` (mod 2**64) where ``t``
is ``V`` read at the enclosing function's prologue and ``c`` is a per-site
constant.  The resulting CCID is a hash — probabilistically unique, not
decodable — and a collision merely means a non-vulnerable buffer gets
enhanced (extra overhead, never incorrectness), exactly the property the
paper relies on in Section IV.

Site constants are dispersed from dense site ids through SplitMix64 so
that structurally similar graphs do not produce clustered hashes.
"""

from __future__ import annotations

from ..program.callgraph import CallSite
from .base import Codec, EncodingScheme, MASK64, splitmix64
from .instrumentation import InstrumentationPlan


class PCCCodec(Codec):
    """``V = 3*t + c`` hashing codec."""

    scheme_name = "pcc"

    #: The multiplier from the PCC paper.
    MULTIPLIER = 3

    def seed(self) -> int:
        return 0

    def site_constant(self, site: CallSite) -> int:
        """The per-site constant ``c`` (unique per call site)."""
        return splitmix64(site.site_id)

    def mix(self, value: int, site: CallSite) -> int:
        return (self.MULTIPLIER * value + self.site_constant(site)) & MASK64


class PCCScheme(EncodingScheme):
    """Factory for :class:`PCCCodec`."""

    name = "pcc"

    def build(self, plan: InstrumentationPlan) -> PCCCodec:
        return PCCCodec(plan)
