"""DeltaPath-style encoding [Zeng et al., VEE'14].

DeltaPath improves PCCE along two axes relevant here:

* **virtual/indirect calls** — a dispatch site with several possible
  callees is handled by giving each (site, callee) resolution its own
  encoding edge.  Our call multigraph already expresses this: declare one
  labelled call site per candidate callee of the dispatch (see
  ``CallGraph.add_call_site`` with labels like ``"vcall:A"``), and the
  additive numbering treats each resolution separately.
* **large programs** — context counts that overflow a 64-bit ``V`` are
  accommodated with a wider value space; this codec folds into 128 bits.

The constant-assignment and decoding machinery is shared with PCCE
(:class:`~repro.ccencoding.pcce.AdditiveCodec`), including the dense /
verified-random split by strategy.
"""

from __future__ import annotations

from .instrumentation import InstrumentationPlan
from .pcce import AdditiveCodec
from .base import EncodingScheme


class DeltaPathCodec(AdditiveCodec):
    """128-bit additive codec for very large context spaces."""

    scheme_name = "deltapath"
    value_bits = 128


class DeltaPathScheme(EncodingScheme):
    """Factory for :class:`DeltaPathCodec`."""

    name = "deltapath"

    def build(self, plan: InstrumentationPlan) -> DeltaPathCodec:
        return DeltaPathCodec(plan)
