"""Online encoding runtimes: the thread-local-V state machine.

:class:`EncodingRuntime` is what the inserted instrumentation *does* at run
time.  The process drives it from exactly the places compiled code would:

* function prologue → remember ``V`` as this frame's ``t``,
* instrumented call site → ``V = mix(t, c_site)``,
* return → restore ``V`` to the resumed frame's encoding.

Reading the current CCID is a single register read — that is the whole
point of encoding versus stack walking, and the cost model reflects it.

:class:`WalkedContextSource` is the expensive alternative the paper argues
against: obtaining the context by walking the simulated stack on every
allocation, charged per frame like a real unwinder.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from ..program.callgraph import CallSite
from ..program.context import ContextSource
from ..program.cost import CycleMeter
from .base import Codec


class EncodingRuntime(ContextSource):
    """Drives one codec's V register along the dynamic call stack."""

    #: Reading V is one register read with no side effect, so fused
    #: interposition paths may elide it for provably unpatched functions.
    pure_ccid = True

    def __init__(self, codec: Codec, meter: Optional[CycleMeter] = None) -> None:
        self.codec = codec
        self.plan = codec.plan
        self.meter = meter
        self._v: int = codec.seed()
        self._t_stack: List[int] = []
        #: How many encoding updates actually executed (dynamic count).
        self.updates_executed: int = 0
        #: How many call sites were crossed in total (dynamic count).
        self.sites_crossed: int = 0

    # -- ContextSource hooks -------------------------------------------

    def enter_function(self, name: str) -> None:
        self._t_stack.append(self._v)
        if self.meter is not None and name in self.plan.instrumented_functions:
            self.meter.charge("encoding", self.meter.model.encode_prologue)

    def exit_function(self, name: str) -> None:
        self._t_stack.pop()
        self._v = self._t_stack[-1] if self._t_stack else self.codec.seed()

    def at_call_site(self, site: CallSite) -> None:
        self.sites_crossed += 1
        t = self._t_stack[-1] if self._t_stack else self.codec.seed()
        if site.site_id in self.plan.sites:
            self._v = self.codec.mix(t, site)
            self.updates_executed += 1
            if self.meter is not None:
                self.meter.charge("encoding", self.meter.model.encode_site)
        else:
            self._v = t

    def current_ccid(self) -> int:
        """Read V — one register read, no extra cost category."""
        return self._v


class WalkedContextSource(ContextSource):
    """Stack walking instead of encoding (the expensive baseline, §II-B).

    The CCID is a CRC over the frame chain, recomputed on demand; the
    meter is charged per live frame, mirroring a frame-pointer unwinder
    touching every activation record.
    """

    #: Modeled cycles per frame visited during a walk.
    CYCLES_PER_FRAME: int = 40

    def __init__(self, meter: Optional[CycleMeter] = None) -> None:
        self.meter = meter
        #: Site ids of the frames on the stack (entry frame has none).
        self._site_stack: List[int] = []
        #: Site of a call announced but not yet entered (allocation calls
        #: never push a frame, so this is how the alloc site is captured).
        self._pending_site: Optional[int] = None
        self.walks_performed: int = 0

    def enter_function(self, name: str) -> None:
        if self._pending_site is not None:
            self._site_stack.append(self._pending_site)
            self._pending_site = None

    def exit_function(self, name: str) -> None:
        if self._site_stack:
            self._site_stack.pop()

    def at_call_site(self, site: CallSite) -> None:
        self._pending_site = site.site_id

    def current_ccid(self) -> int:
        self.walks_performed += 1
        frames = list(self._site_stack)
        if self._pending_site is not None:
            frames.append(self._pending_site)
        if self.meter is not None:
            self.meter.charge(
                "encoding", self.CYCLES_PER_FRAME * max(1, len(frames)))
        payload = b",".join(str(s).encode() for s in frames)
        return zlib.crc32(payload)
