"""Sparse paged virtual memory with POSIX-style protection semantics.

``VirtualMemory`` is the bottom layer of the simulated machine.  It provides
exactly the facilities HeapTherapy+ relies on from the operating system:

* a 48-bit virtual address space managed in 4 KiB pages,
* ``mmap``/``munmap``/``sbrk`` for obtaining address ranges,
* ``mprotect`` for changing page permissions — the mechanism behind guard
  pages, and
* faulting semantics: any access to an unmapped page or one lacking the
  needed permission raises :class:`~repro.machine.errors.SegmentationFault`.

Resident-set accounting mirrors Linux demand paging: a mapped page consumes
no physical memory until it is first *written* (reads of untouched pages are
served from the shared zero page).  This is what makes the paper's
observation "guard pages themselves do not increase the use of memory"
reproducible — a guard page is mapped ``PROT_NONE`` and never touched, so it
never becomes resident.

Hot-path design (every guest load/store funnels through here, so the
entire benchmark suite is bottlenecked on this file):

* ``read``/``write``/``fill`` take a *single-page fast path* when the
  access fits in one page — the overwhelmingly common case — doing one
  dict probe and one slice instead of the general page-walk;
* a one-entry *translation cache* (page → (prot, frame)) short-circuits
  even that probe for runs of accesses to the same page; it is
  invalidated by ``mprotect``/``munmap``/``sbrk`` shrink, and updated
  whenever a cached page's frame is first materialized;
* multi-page copies go through ``memoryview`` slices into one
  preallocated buffer rather than repeated ``bytes`` concatenation.

Fast paths must be *observation-identical* to the general path: same
first faulting address, same ``resident_pages`` demand-paging behaviour,
same counters.  ``VirtualMemory(fast_paths=False)`` disables them so the
equivalence is testable (``tests/machine/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .errors import MapError, OutOfMemoryError, SegmentationFault
from .layout import (
    ADDRESS_SPACE_SIZE,
    HEAP_BASE,
    HEAP_LIMIT,
    MMAP_BASE,
    MMAP_LIMIT,
    PAGE_SIZE,
    is_page_aligned,
    page_align_up,
    page_number,
)

#: No access at all; used for guard pages and red zones at page granularity.
PROT_NONE: int = 0
#: Page may be read.
PROT_READ: int = 1
#: Page may be written.
PROT_WRITE: int = 2
#: Convenience combination for ordinary data pages.
PROT_RW: int = PROT_READ | PROT_WRITE

_ZERO_PAGE = bytes(PAGE_SIZE)
_PAGE_MASK = PAGE_SIZE - 1
_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1


class VirtualMemory:
    """A sparse, permission-checked, demand-paged address space.

    The class is deliberately small and explicit: two dictionaries, one for
    page permissions (defines what is *mapped*) and one for page frames
    (defines what is *resident*).  All byte-level operations validate
    permissions page by page and fault with the exact first offending
    address, which the shadow analyzer and the defense tests rely on.

    Args:
        fast_paths: enable the single-page fast paths and the one-entry
            translation cache (default).  Disable only to cross-check
            fast-path equivalence; semantics are identical either way.
        fault_injector: optional hook with a ``charge(op)`` method
            (see :class:`repro.fuzz.faults.FaultInjector`) consulted
            *before* every ``mmap``/``mprotect`` call and every growing
            ``sbrk``; it may raise the op's typed error to simulate
            substrate exhaustion.  A raised charge leaves the memory
            map untouched.  ``None`` (the default) costs one attribute
            test on these management paths and nothing on data paths.
    """

    def __init__(self, fast_paths: bool = True,
                 fault_injector: Optional[object] = None) -> None:
        self._protections: Dict[int, int] = {}
        self._frames: Dict[int, bytearray] = {}
        self._brk: int = HEAP_BASE
        self._mmap_cursor: int = MMAP_BASE
        #: Lifetime counters, useful for tests and cost accounting.
        self.fault_count: int = 0
        self.mprotect_count: int = 0
        #: High-water mark of resident pages (the paper's RSS sampling).
        self.peak_resident_pages: int = 0
        self.fast_paths: bool = fast_paths
        #: Fault-injection hook for mapping-management operations.
        self.fault_injector = fault_injector
        # One-entry translation cache: last page touched by a fast-path
        # access.  ``_tlb_page`` is -1 when empty; ``_tlb_frame`` is
        # ``None`` while the page is still backed by the zero page.
        self._tlb_page: int = -1
        self._tlb_prot: int = 0
        self._tlb_frame: Optional[bytearray] = None

    # ------------------------------------------------------------------
    # Mapping management
    # ------------------------------------------------------------------

    def mmap(self, length: int, prot: int = PROT_RW,
             address: Optional[int] = None) -> int:
        """Map ``length`` bytes (rounded up to pages) and return the base.

        Without ``address`` the mapping is placed at the current mmap cursor
        (deterministic bump allocation).  With ``address`` the mapping is
        fixed and must not overlap an existing mapping.
        """
        if length <= 0:
            raise MapError(f"mmap: invalid length {length}")
        if self.fault_injector is not None:
            self.fault_injector.charge("mmap")
        length = page_align_up(length)
        if address is None:
            address = self._mmap_cursor
            if address + length > MMAP_LIMIT:
                raise OutOfMemoryError("mmap area exhausted")
            self._mmap_cursor = address + length
        else:
            if not is_page_aligned(address):
                raise MapError(f"mmap: address 0x{address:x} not page aligned")
            if address + length > ADDRESS_SPACE_SIZE:
                raise MapError("mmap: mapping exceeds address space")
        first = page_number(address)
        count = length // PAGE_SIZE
        for pno in range(first, first + count):
            if pno in self._protections:
                raise MapError(
                    f"mmap: page 0x{pno << 12:x} already mapped")
        for pno in range(first, first + count):
            self._protections[pno] = prot
        # Freshly mapped pages were unmapped a moment ago, so they cannot
        # be sitting in the translation cache; no invalidation needed.
        return address

    def munmap(self, address: int, length: int) -> None:
        """Unmap ``length`` bytes starting at the page-aligned ``address``."""
        if not is_page_aligned(address):
            raise MapError(f"munmap: address 0x{address:x} not page aligned")
        if length <= 0:
            raise MapError(f"munmap: invalid length {length}")
        first = page_number(address)
        count = page_align_up(length) // PAGE_SIZE
        for pno in range(first, first + count):
            self._protections.pop(pno, None)
            self._frames.pop(pno, None)
        self._tlb_page = -1

    def mprotect(self, address: int, length: int, prot: int) -> None:
        """Change the protection of every page overlapping the range.

        Mirrors POSIX: the whole range must already be mapped, and the
        address must be page aligned.  Counting calls lets benchmarks charge
        a realistic cost to guard-page installation and removal.
        """
        if not is_page_aligned(address):
            raise MapError(
                f"mprotect: address 0x{address:x} not page aligned")
        if length <= 0:
            raise MapError(f"mprotect: invalid length {length}")
        if self.fault_injector is not None:
            self.fault_injector.charge("mprotect")
        first = page_number(address)
        count = page_align_up(length) // PAGE_SIZE
        for pno in range(first, first + count):
            if pno not in self._protections:
                raise MapError(
                    f"mprotect: page 0x{pno << 12:x} is not mapped")
        for pno in range(first, first + count):
            self._protections[pno] = prot
        self.mprotect_count += 1
        self._tlb_page = -1

    def sbrk(self, increment: int) -> int:
        """Grow (or shrink) the program break; return the previous break.

        New heap pages are mapped read-write.  Shrinking unmaps and discards
        the released pages, as Linux does for ``brk``.
        """
        old_brk = self._brk
        new_brk = old_brk + increment
        if increment > 0:
            if self.fault_injector is not None:
                self.fault_injector.charge("sbrk")
            if new_brk > HEAP_LIMIT:
                raise OutOfMemoryError("heap limit exceeded")
            first_new = page_number(page_align_up(old_brk))
            last = page_number(page_align_up(new_brk))
            for pno in range(first_new, last):
                if pno not in self._protections:
                    self._protections[pno] = PROT_RW
        elif increment < 0:
            if new_brk < HEAP_BASE:
                raise MapError("sbrk: cannot shrink below heap base")
            first_freed = page_number(page_align_up(new_brk))
            last = page_number(page_align_up(old_brk))
            for pno in range(first_freed, last):
                self._protections.pop(pno, None)
                self._frames.pop(pno, None)
            self._tlb_page = -1
        self._brk = new_brk
        return old_brk

    @property
    def brk(self) -> int:
        """The current program break."""
        return self._brk

    # ------------------------------------------------------------------
    # Access checking
    # ------------------------------------------------------------------

    def _check(self, address: int, size: int, needed: int, kind: str) -> None:
        if size <= 0:
            raise MapError(f"invalid access size {size}")
        if address < 0 or address + size > ADDRESS_SPACE_SIZE:
            self.fault_count += 1
            raise SegmentationFault(address, kind, size)
        first = page_number(address)
        last = page_number(address + size - 1)
        for pno in range(first, last + 1):
            prot = self._protections.get(pno)
            if prot is None or (prot & needed) != needed:
                self.fault_count += 1
                fault_at = max(address, pno * PAGE_SIZE)
                raise SegmentationFault(fault_at, kind, size)

    def _translate(self, address: int, size: int, needed: int,
                   kind: str) -> Tuple[int, int, Optional[bytearray]]:
        """Fast-path translation of a single-page access.

        The caller guarantees ``0 < size`` and that ``[address,
        address+size)`` lies within one page with ``address >= 0``.
        Returns ``(page, offset, frame)``; faults exactly as the general
        ``_check`` would.
        """
        pno = address >> _PAGE_SHIFT
        if pno == self._tlb_page:
            prot = self._tlb_prot
            frame = self._tlb_frame
        else:
            prot = self._protections.get(pno, -1)
            if prot < 0:
                self.fault_count += 1
                raise SegmentationFault(address, kind, size)
            frame = self._frames.get(pno)
            self._tlb_page = pno
            self._tlb_prot = prot
            self._tlb_frame = frame
        if (prot & needed) != needed:
            self.fault_count += 1
            raise SegmentationFault(address, kind, size)
        return pno, address & _PAGE_MASK, frame

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True if every page in ``[address, address+size)`` is mapped."""
        if size <= 0 or address < 0:
            return False
        first = page_number(address)
        last = page_number(address + size - 1)
        return all(pno in self._protections for pno in range(first, last + 1))

    def protection_of(self, address: int) -> Optional[int]:
        """Return the protection flags of the page holding ``address``."""
        return self._protections.get(page_number(address))

    def is_accessible(self, address: int, size: int = 1,
                      write: bool = False) -> bool:
        """True if the range can be read (and written, if asked) safely."""
        needed = PROT_RW if write else PROT_READ
        if size <= 0 or address < 0:
            return False
        first = page_number(address)
        last = page_number(address + size - 1)
        for pno in range(first, last + 1):
            prot = self._protections.get(pno)
            if prot is None or (prot & needed) != needed:
                return False
        return True

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes, faulting on any protection violation."""
        if (self.fast_paths and 0 < size
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            _, offset, frame = self._translate(address, size, PROT_READ,
                                               "read")
            if frame is None:
                return _ZERO_PAGE[offset:offset + size]
            return bytes(frame[offset:offset + size])
        self._check(address, size, PROT_READ, "read")
        return self._copy_out(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``, faulting on any protection violation."""
        size = len(data)
        if size == 0:
            return
        if (self.fast_paths
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            pno, offset, frame = self._translate(address, size, PROT_WRITE,
                                                 "write")
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + size] = data
            return
        self._check(address, size, PROT_WRITE, "write")
        self._copy_in(address, data)

    def read_word(self, address: int) -> int:
        """Read a little-endian 64-bit word."""
        return int.from_bytes(self.read(address, 8), "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit word."""
        self.write(address, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        """Set ``size`` bytes to ``byte`` (memset).

        Zero-copy: fills page frames in place instead of materializing a
        ``size``-byte pattern first.  Filling *writes*, so touched pages
        become resident exactly as they would under ``write``.
        """
        if size == 0:
            return
        if (self.fast_paths and 0 < size
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            pno, offset, frame = self._translate(address, size, PROT_WRITE,
                                                 "write")
            if frame is None:
                frame = self._materialize(pno)
            if byte == 0:
                frame[offset:offset + size] = _ZERO_PAGE[:size]
            else:
                frame[offset:offset + size] = bytes([byte]) * size
            return
        self._check(address, size, PROT_WRITE, "write")
        self._fill_pages(address, size, byte)

    def peek(self, address: int, size: int) -> bytes:
        """Read bytes *without* permission checks (debugger access).

        Used by the offline analyzer, which — like Valgrind — can observe
        memory the guest program cannot.  Unmapped bytes read as zero.
        """
        return self._copy_out(address, size)

    def poke(self, address: int, data: bytes) -> None:
        """Write bytes without permission checks (debugger access).

        The target pages must at least be mapped; protections are ignored.
        """
        if not self.is_mapped(address, max(len(data), 1)):
            raise SegmentationFault(address, "write", len(data),
                                    message="poke of unmapped memory")
        self._copy_in(address, data)

    # ------------------------------------------------------------------
    # Page-frame plumbing
    # ------------------------------------------------------------------

    def _materialize(self, pno: int) -> bytearray:
        """First write to a mapped page: give it a real frame."""
        frame = bytearray(PAGE_SIZE)
        self._frames[pno] = frame
        if len(self._frames) > self.peak_resident_pages:
            self.peak_resident_pages = len(self._frames)
        if pno == self._tlb_page:
            self._tlb_frame = frame
        return frame

    def _copy_out(self, address: int, size: int) -> bytes:
        if size <= 0:
            return b""
        out = bytearray(size)
        view = memoryview(out)
        frames = self._frames
        position = 0
        cursor = address
        remaining = size
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is not None:
                view[position:position + chunk] = \
                    memoryview(frame)[offset:offset + chunk]
            # else: the preallocated buffer is already zero-filled.
            position += chunk
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _copy_in(self, address: int, data: bytes) -> None:
        view = memoryview(data)
        frames = self._frames
        remaining = len(data)
        cursor = address
        consumed = 0
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + chunk] = view[consumed:consumed + chunk]
            cursor += chunk
            consumed += chunk
            remaining -= chunk

    def _fill_pages(self, address: int, size: int, byte: int) -> None:
        """Page-walking memset; never builds a ``size``-byte pattern."""
        frames = self._frames
        pattern = _ZERO_PAGE if byte == 0 else bytes([byte]) * PAGE_SIZE
        remaining = size
        cursor = address
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + chunk] = pattern[:chunk]
            cursor += chunk
            remaining -= chunk

    # ------------------------------------------------------------------
    # Accounting & introspection
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages that have been materialized (written to)."""
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Resident set size in bytes — the simulated ``VmRSS``."""
        return len(self._frames) * PAGE_SIZE

    @property
    def mapped_pages(self) -> int:
        """Number of pages currently mapped (any protection)."""
        return len(self._protections)

    @property
    def mapped_bytes(self) -> int:
        """Total mapped bytes — the simulated ``VmSize`` contribution."""
        return len(self._protections) * PAGE_SIZE

    def iter_mappings(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(start, length, prot)`` for maximal contiguous runs."""
        pages = sorted(self._protections)
        i = 0
        while i < len(pages):
            start = pages[i]
            prot = self._protections[start]
            j = i
            while (j + 1 < len(pages) and pages[j + 1] == pages[j] + 1
                   and self._protections[pages[j + 1]] == prot):
                j += 1
            yield (start * PAGE_SIZE, (j - i + 1) * PAGE_SIZE, prot)
            i = j + 1
