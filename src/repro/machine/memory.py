"""Sparse paged virtual memory with POSIX-style protection semantics.

``VirtualMemory`` is the bottom layer of the simulated machine.  It provides
exactly the facilities HeapTherapy+ relies on from the operating system:

* a 48-bit virtual address space managed in 4 KiB pages,
* ``mmap``/``munmap``/``sbrk`` for obtaining address ranges,
* ``mprotect`` for changing page permissions — the mechanism behind guard
  pages, and
* faulting semantics: any access to an unmapped page or one lacking the
  needed permission raises :class:`~repro.machine.errors.SegmentationFault`.

Resident-set accounting mirrors Linux demand paging: a mapped page consumes
no physical memory until it is first *written* (reads of untouched pages are
served from the shared zero page).  This is what makes the paper's
observation "guard pages themselves do not increase the use of memory"
reproducible — a guard page is mapped ``PROT_NONE`` and never touched, so it
never becomes resident.

Hot-path design (every guest load/store funnels through here, so the
entire benchmark suite is bottlenecked on this file):

* page frames live in a columnar :class:`~repro.machine.pagestore.PageStore`
  arena rather than one ``bytearray`` per page; each resident page is a
  ``memoryview`` window plus a pre-cast 64-bit word view, so aligned
  word traffic is a single indexed store/load with no ``int.from_bytes``
  round trip;
* ``read``/``write``/``fill`` take a *single-page fast path* when the
  access fits in one page — the overwhelmingly common case — doing one
  dict probe and one slice instead of the general page-walk;
* a one-entry *translation cache* (page → (prot, frame, words)) and
  dedicated ``read_word``/``write_word``/``read_word_pair``/
  ``write_word_pair`` fast paths short-circuit even that probe for runs
  of accesses to the same page; the cache is invalidated by
  ``mprotect``/``munmap``/``sbrk`` shrink, and updated whenever a cached
  page's frame is first materialized;
* multi-page and bulk-word copies (``read_words``/``write_words``) go
  through ``memoryview`` slices rather than per-element Python loops.

Fast paths must be *observation-identical* to the general path: same
first faulting address, same ``resident_pages`` demand-paging behaviour,
same counters.  ``VirtualMemory(fast_paths=False)`` disables them so the
equivalence is testable (``tests/machine/test_fastpath_equivalence.py``).
The word views use the host's native byte order; the substrate assumes a
little-endian host (as the generic paths do ``int.from_bytes(...,
"little")``), which covers every platform CPython ships for today.

Pass ``page_store=`` to draw frames from an explicit (possibly
shared-memory) arena; by default each ``VirtualMemory`` owns a private
store, unless a process-wide default has been installed via
:func:`repro.machine.pagestore.set_default_store` (the diagnosis-pool
workers do this to share page state without pickling it).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .errors import MapError, OutOfMemoryError, SegmentationFault
from .layout import (
    ADDRESS_SPACE_SIZE,
    HEAP_BASE,
    HEAP_LIMIT,
    MMAP_BASE,
    MMAP_LIMIT,
    PAGE_SIZE,
    is_page_aligned,
    page_align_up,
    page_number,
)
from .pagestore import PageStore, get_default_store

#: No access at all; used for guard pages and red zones at page granularity.
PROT_NONE: int = 0
#: Page may be read.
PROT_READ: int = 1
#: Page may be written.
PROT_WRITE: int = 2
#: Convenience combination for ordinary data pages.
PROT_RW: int = PROT_READ | PROT_WRITE

_ZERO_PAGE = bytes(PAGE_SIZE)
_PAGE_MASK = PAGE_SIZE - 1
_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
_PAGE_WORDS = PAGE_SIZE >> 3
_WORD_MASK = (1 << 64) - 1


class VirtualMemory:
    """A sparse, permission-checked, demand-paged address space.

    The class is deliberately small and explicit: one dictionary for
    page permissions (defines what is *mapped*) and a frame table over a
    columnar page store (defines what is *resident*).  All byte-level
    operations validate permissions page by page and fault with the
    exact first offending address, which the shadow analyzer and the
    defense tests rely on.

    Args:
        fast_paths: enable the single-page fast paths and the one-entry
            translation cache (default).  Disable only to cross-check
            fast-path equivalence; semantics are identical either way.
        fault_injector: optional hook with a ``charge(op)`` method
            (see :class:`repro.fuzz.faults.FaultInjector`) consulted
            *before* every ``mmap``/``mprotect`` call and every growing
            ``sbrk``; it may raise the op's typed error to simulate
            substrate exhaustion.  A raised charge leaves the memory
            map untouched.  ``None`` (the default) costs one attribute
            test on these management paths and nothing on data paths.
        page_store: explicit frame arena to draw resident pages from
            (e.g. a shared-memory store).  ``None`` uses the process
            default store if one is installed, else a private store
            owned (and torn down) by this instance.
    """

    __slots__ = (
        "_owns_store", "_store", "_protections", "_frames", "_frame_words",
        "_frame_slots", "_brk", "_mmap_cursor", "fault_count",
        "mprotect_count", "peak_resident_pages", "fast_paths",
        "fault_injector", "_tlb_page", "_tlb_prot", "_tlb_frame",
        "_tlb_words", "_read_span",
    )

    def __init__(self, fast_paths: bool = True,
                 fault_injector: Optional[object] = None,
                 page_store: Optional[PageStore] = None) -> None:
        if page_store is None:
            page_store = get_default_store()
        if page_store is None:
            page_store = PageStore()
            self._owns_store = True
        else:
            self._owns_store = False
        self._store = page_store
        self._protections: Dict[int, int] = {}
        #: Byte view of each resident page (window into the store).
        self._frames: Dict[int, memoryview] = {}
        #: The same windows cast to 64-bit words ('Q').
        self._frame_words: Dict[int, memoryview] = {}
        #: Store slot backing each resident page (for freeing).
        self._frame_slots: Dict[int, int] = {}
        self._brk: int = HEAP_BASE
        self._mmap_cursor: int = MMAP_BASE
        #: Lifetime counters, useful for tests and cost accounting.
        self.fault_count: int = 0
        self.mprotect_count: int = 0
        #: High-water mark of resident pages (the paper's RSS sampling).
        self.peak_resident_pages: int = 0
        self.fast_paths: bool = fast_paths
        #: Fault-injection hook for mapping-management operations.
        self.fault_injector = fault_injector
        # One-entry translation cache: last page touched by a fast-path
        # access.  ``_tlb_page`` is -1 when empty; ``_tlb_frame`` and
        # ``_tlb_words`` are ``None`` while the page is still backed by
        # the zero page.
        self._tlb_page: int = -1
        self._tlb_prot: int = 0
        self._tlb_frame: Optional[memoryview] = None
        self._tlb_words: Optional[memoryview] = None
        # One-entry readability cache: the last page span validated by
        # :meth:`check_read` (the zero-copy send path re-checks the same
        # cached response body for every request).  Invalidated wherever
        # protections can be revoked, alongside the TLB.
        self._read_span: Tuple[int, int] = (-1, -1)

    @property
    def page_store(self) -> PageStore:
        """The frame arena resident pages are drawn from."""
        return self._store

    # ------------------------------------------------------------------
    # Mapping management
    # ------------------------------------------------------------------

    def mmap(self, length: int, prot: int = PROT_RW,
             address: Optional[int] = None) -> int:
        """Map ``length`` bytes (rounded up to pages) and return the base.

        Without ``address`` the mapping is placed at the current mmap cursor
        (deterministic bump allocation).  With ``address`` the mapping is
        fixed and must not overlap an existing mapping.
        """
        if length <= 0:
            raise MapError(f"mmap: invalid length {length}")
        if self.fault_injector is not None:
            self.fault_injector.charge("mmap")
        length = page_align_up(length)
        if address is None:
            address = self._mmap_cursor
            if address + length > MMAP_LIMIT:
                raise OutOfMemoryError("mmap area exhausted")
            self._mmap_cursor = address + length
        else:
            if not is_page_aligned(address):
                raise MapError(f"mmap: address 0x{address:x} not page aligned")
            if address + length > ADDRESS_SPACE_SIZE:
                raise MapError("mmap: mapping exceeds address space")
        first = page_number(address)
        count = length // PAGE_SIZE
        for pno in range(first, first + count):
            if pno in self._protections:
                raise MapError(
                    f"mmap: page 0x{pno << 12:x} already mapped")
        for pno in range(first, first + count):
            self._protections[pno] = prot
        # Freshly mapped pages were unmapped a moment ago, so they cannot
        # be sitting in the translation cache; no invalidation needed.
        return address

    def munmap(self, address: int, length: int) -> None:
        """Unmap ``length`` bytes starting at the page-aligned ``address``."""
        if not is_page_aligned(address):
            raise MapError(f"munmap: address 0x{address:x} not page aligned")
        if length <= 0:
            raise MapError(f"munmap: invalid length {length}")
        first = page_number(address)
        count = page_align_up(length) // PAGE_SIZE
        for pno in range(first, first + count):
            self._protections.pop(pno, None)
            if pno in self._frames:
                self._discard_frame(pno)
        self._tlb_page = -1
        self._tlb_frame = None
        self._tlb_words = None
        self._read_span = (-1, -1)

    def mprotect(self, address: int, length: int, prot: int) -> None:
        """Change the protection of every page overlapping the range.

        Mirrors POSIX: the whole range must already be mapped, and the
        address must be page aligned.  Counting calls lets benchmarks charge
        a realistic cost to guard-page installation and removal.
        """
        if not is_page_aligned(address):
            raise MapError(
                f"mprotect: address 0x{address:x} not page aligned")
        if length <= 0:
            raise MapError(f"mprotect: invalid length {length}")
        if self.fault_injector is not None:
            self.fault_injector.charge("mprotect")
        first = page_number(address)
        count = page_align_up(length) // PAGE_SIZE
        for pno in range(first, first + count):
            if pno not in self._protections:
                raise MapError(
                    f"mprotect: page 0x{pno << 12:x} is not mapped")
        for pno in range(first, first + count):
            self._protections[pno] = prot
        self.mprotect_count += 1
        self._tlb_page = -1
        self._read_span = (-1, -1)

    def sbrk(self, increment: int) -> int:
        """Grow (or shrink) the program break; return the previous break.

        New heap pages are mapped read-write.  Shrinking unmaps and discards
        the released pages, as Linux does for ``brk``.
        """
        old_brk = self._brk
        new_brk = old_brk + increment
        if increment > 0:
            if self.fault_injector is not None:
                self.fault_injector.charge("sbrk")
            if new_brk > HEAP_LIMIT:
                raise OutOfMemoryError("heap limit exceeded")
            first_new = page_number(page_align_up(old_brk))
            last = page_number(page_align_up(new_brk))
            for pno in range(first_new, last):
                if pno not in self._protections:
                    self._protections[pno] = PROT_RW
        elif increment < 0:
            if new_brk < HEAP_BASE:
                raise MapError("sbrk: cannot shrink below heap base")
            first_freed = page_number(page_align_up(new_brk))
            last = page_number(page_align_up(old_brk))
            for pno in range(first_freed, last):
                self._protections.pop(pno, None)
                if pno in self._frames:
                    self._discard_frame(pno)
            self._tlb_page = -1
            self._tlb_frame = None
            self._tlb_words = None
            self._read_span = (-1, -1)
        self._brk = new_brk
        return old_brk

    @property
    def brk(self) -> int:
        """The current program break."""
        return self._brk

    # ------------------------------------------------------------------
    # Access checking
    # ------------------------------------------------------------------

    def _check(self, address: int, size: int, needed: int, kind: str) -> None:
        if size <= 0:
            raise MapError(f"invalid access size {size}")
        if address < 0 or address + size > ADDRESS_SPACE_SIZE:
            self.fault_count += 1
            raise SegmentationFault(address, kind, size)
        first = page_number(address)
        last = page_number(address + size - 1)
        for pno in range(first, last + 1):
            prot = self._protections.get(pno)
            if prot is None or (prot & needed) != needed:
                self.fault_count += 1
                fault_at = max(address, pno * PAGE_SIZE)
                raise SegmentationFault(fault_at, kind, size)

    def _translate(self, address: int, size: int, needed: int,
                   kind: str) -> Tuple[int, int, Optional[memoryview]]:
        """Fast-path translation of a single-page access.

        The caller guarantees ``0 < size`` and that ``[address,
        address+size)`` lies within one page with ``address >= 0``.
        Returns ``(page, offset, frame)``; faults exactly as the general
        ``_check`` would.
        """
        pno = address >> _PAGE_SHIFT
        if pno == self._tlb_page:
            prot = self._tlb_prot
            frame = self._tlb_frame
        else:
            prot = self._protections.get(pno, -1)
            if prot < 0:
                self.fault_count += 1
                raise SegmentationFault(address, kind, size)
            frame = self._frames.get(pno)
            self._tlb_page = pno
            self._tlb_prot = prot
            self._tlb_frame = frame
            self._tlb_words = self._frame_words.get(pno)
        if (prot & needed) != needed:
            self.fault_count += 1
            raise SegmentationFault(address, kind, size)
        return pno, address & _PAGE_MASK, frame

    def check_read(self, address: int, size: int) -> None:
        """Permission-check a read of the range without copying it.

        Faults exactly where :meth:`read` would — the zero-copy send
        path (``sendfile``) still takes a guard-page fault if the range
        crosses into sealed memory.  A successful check caches its page
        span; re-checks of the same span (the steady-state cached-body
        send) are free until any protection is revoked.
        """
        if size > 0 and address >= 0:
            span = (address >> _PAGE_SHIFT,
                    (address + size - 1) >> _PAGE_SHIFT)
            if span == self._read_span:
                return
            self._check(address, size, PROT_READ, "read")
            self._read_span = span
            return
        self._check(address, size, PROT_READ, "read")

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True if every page in ``[address, address+size)`` is mapped."""
        if size <= 0 or address < 0:
            return False
        first = page_number(address)
        last = page_number(address + size - 1)
        return all(pno in self._protections for pno in range(first, last + 1))

    def protection_of(self, address: int) -> Optional[int]:
        """Return the protection flags of the page holding ``address``."""
        return self._protections.get(page_number(address))

    def is_accessible(self, address: int, size: int = 1,
                      write: bool = False) -> bool:
        """True if the range can be read (and written, if asked) safely."""
        needed = PROT_RW if write else PROT_READ
        if size <= 0 or address < 0:
            return False
        first = page_number(address)
        last = page_number(address + size - 1)
        for pno in range(first, last + 1):
            prot = self._protections.get(pno)
            if prot is None or (prot & needed) != needed:
                return False
        return True

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes, faulting on any protection violation."""
        if (self.fast_paths and 0 < size
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            _, offset, frame = self._translate(address, size, PROT_READ,
                                               "read")
            if frame is None:
                return _ZERO_PAGE[offset:offset + size]
            return bytes(frame[offset:offset + size])
        self._check(address, size, PROT_READ, "read")
        return self._copy_out(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``, faulting on any protection violation."""
        size = len(data)
        if size == 0:
            return
        if (self.fast_paths
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            pno, offset, frame = self._translate(address, size, PROT_WRITE,
                                                 "write")
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + size] = data
            return
        self._check(address, size, PROT_WRITE, "write")
        self._copy_in(address, data)

    def read_word(self, address: int) -> int:
        """Read a little-endian 64-bit word.

        8-aligned reads of a cached page are a single word-view load;
        everything else funnels through :meth:`read`.
        """
        if self.fast_paths and not address & 7 and address >= 0:
            pno = address >> _PAGE_SHIFT
            if pno == self._tlb_page:
                if self._tlb_prot & PROT_READ:
                    words = self._tlb_words
                    if words is None:
                        return 0
                    return words[(address & _PAGE_MASK) >> 3]
            else:
                prot = self._protections.get(pno, -1)
                if prot >= 0 and prot & PROT_READ:
                    frame = self._frames.get(pno)
                    self._tlb_page = pno
                    self._tlb_prot = prot
                    self._tlb_frame = frame
                    if frame is None:
                        self._tlb_words = None
                        return 0
                    words = self._frame_words[pno]
                    self._tlb_words = words
                    return words[(address & _PAGE_MASK) >> 3]
        return int.from_bytes(self.read(address, 8), "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit word (value masked to 64 bits)."""
        if self.fast_paths and not address & 7 and address >= 0:
            pno = address >> _PAGE_SHIFT
            if pno == self._tlb_page:
                if self._tlb_prot & PROT_WRITE:
                    words = self._tlb_words
                    if words is None:
                        self._materialize(pno)
                        words = self._tlb_words
                    words[(address & _PAGE_MASK) >> 3] = value & _WORD_MASK
                    return
            else:
                prot = self._protections.get(pno, -1)
                if prot >= 0 and prot & PROT_WRITE:
                    self._tlb_page = pno
                    self._tlb_prot = prot
                    words = self._frame_words.get(pno)
                    if words is None:
                        self._tlb_frame = None
                        self._tlb_words = None
                        self._materialize(pno)
                        words = self._tlb_words
                    else:
                        self._tlb_frame = self._frames[pno]
                        self._tlb_words = words
                    words[(address & _PAGE_MASK) >> 3] = value & _WORD_MASK
                    return
        self.write(address, (value & _WORD_MASK).to_bytes(8, "little"))

    def read_word_pair(self, address: int) -> Tuple[int, int]:
        """Read two consecutive 64-bit words at a 16-aligned address.

        One translation for both words — the shape of a boundary-tag
        chunk-header load.  Falls back to :meth:`read` when unaligned or
        fast paths are off.
        """
        if self.fast_paths and not address & 15 and address >= 0:
            pno = address >> _PAGE_SHIFT
            if pno == self._tlb_page:
                if self._tlb_prot & PROT_READ:
                    words = self._tlb_words
                    if words is None:
                        return 0, 0
                    i = (address & _PAGE_MASK) >> 3
                    return words[i], words[i + 1]
            else:
                prot = self._protections.get(pno, -1)
                if prot >= 0 and prot & PROT_READ:
                    frame = self._frames.get(pno)
                    self._tlb_page = pno
                    self._tlb_prot = prot
                    self._tlb_frame = frame
                    if frame is None:
                        self._tlb_words = None
                        return 0, 0
                    words = self._frame_words[pno]
                    self._tlb_words = words
                    i = (address & _PAGE_MASK) >> 3
                    return words[i], words[i + 1]
        data = self.read(address, 16)
        return (int.from_bytes(data[:8], "little"),
                int.from_bytes(data[8:], "little"))

    def write_word_pair(self, address: int, low: int, high: int) -> None:
        """Write two consecutive 64-bit words at a 16-aligned address."""
        if self.fast_paths and not address & 15 and address >= 0:
            pno = address >> _PAGE_SHIFT
            if pno == self._tlb_page:
                if self._tlb_prot & PROT_WRITE:
                    words = self._tlb_words
                    if words is None:
                        self._materialize(pno)
                        words = self._tlb_words
                    i = (address & _PAGE_MASK) >> 3
                    words[i] = low & _WORD_MASK
                    words[i + 1] = high & _WORD_MASK
                    return
            else:
                prot = self._protections.get(pno, -1)
                if prot >= 0 and prot & PROT_WRITE:
                    self._tlb_page = pno
                    self._tlb_prot = prot
                    words = self._frame_words.get(pno)
                    if words is None:
                        self._tlb_frame = None
                        self._tlb_words = None
                        self._materialize(pno)
                        words = self._tlb_words
                    else:
                        self._tlb_frame = self._frames[pno]
                        self._tlb_words = words
                    i = (address & _PAGE_MASK) >> 3
                    words[i] = low & _WORD_MASK
                    words[i + 1] = high & _WORD_MASK
                    return
        self.write(address,
                   (low & _WORD_MASK).to_bytes(8, "little")
                   + (high & _WORD_MASK).to_bytes(8, "little"))

    def read_words(self, address: int, count: int) -> "array[int]":
        """Read ``count`` consecutive 64-bit words as an ``array('Q')``.

        Bulk columnar read: one permission check for the whole span,
        then per-page word-view slice copies.  Requires an 8-aligned
        address on the fast path; unaligned spans fall back to
        :meth:`read`.
        """
        size = count << 3
        if not self.fast_paths or address & 7 or address < 0 or count <= 0:
            return array("Q", self.read(address, size))
        self._check(address, size, PROT_READ, "read")
        out = array("Q", bytes(size))
        view = memoryview(out)
        frame_words = self._frame_words
        position = 0
        cursor = address
        remaining = count
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            woff = (cursor & _PAGE_MASK) >> 3
            chunk = min(_PAGE_WORDS - woff, remaining)
            words = frame_words.get(pno)
            if words is not None:
                view[position:position + chunk] = words[woff:woff + chunk]
            # else: the fresh array is already zero-filled.
            position += chunk
            cursor += chunk << 3
            remaining -= chunk
        return out

    def write_words(self, address: int,
                    values: Union["array[int]", Sequence[int]]) -> None:
        """Write consecutive 64-bit words (each masked to 64 bits).

        Bulk columnar write: one permission check, then per-page
        word-view slice assignments.  ``values`` may be an ``array('Q')``
        (zero-conversion) or any sequence of ints.
        """
        if isinstance(values, array) and values.typecode == "Q":
            buf = values
        else:
            buf = array("Q", [value & _WORD_MASK for value in values])
        count = len(buf)
        if count == 0:
            return
        if not self.fast_paths or address & 7 or address < 0:
            self.write(address, buf.tobytes())
            return
        self._check(address, count << 3, PROT_WRITE, "write")
        view = memoryview(buf)
        frame_words = self._frame_words
        position = 0
        cursor = address
        remaining = count
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            woff = (cursor & _PAGE_MASK) >> 3
            chunk = min(_PAGE_WORDS - woff, remaining)
            words = frame_words.get(pno)
            if words is None:
                self._materialize(pno)
                words = frame_words[pno]
            words[woff:woff + chunk] = view[position:position + chunk]
            position += chunk
            cursor += chunk << 3
            remaining -= chunk

    def write_word_scatter(self, addresses: Sequence[int],
                           values: Sequence[int]) -> None:
        """Write one 64-bit word at each 8-aligned address.

        Scattered batch write — the defense's metadata-stamp shape: one
        word per freshly allocated buffer.  The page lookup is hoisted
        and cached across items (a run of same-class slab slots mostly
        lands on one page), instead of re-translating per word.
        Unaligned or slow-path items funnel through :meth:`write_word`,
        so faulting behavior is identical item-for-item.
        """
        if not self.fast_paths:
            for address, value in zip(addresses, values):
                self.write_word(address, value)
            return
        protections = self._protections
        frame_words = self._frame_words
        cached_pno = -1
        cached_words: Optional["array[int]"] = None
        for address, value in zip(addresses, values):
            if address & 7 or address < 0:
                self.write_word(address, value)
                continue
            pno = address >> _PAGE_SHIFT
            if pno != cached_pno:
                prot = protections.get(pno, -1)
                if prot < 0 or not prot & PROT_WRITE:
                    self.write_word(address, value)  # faults like per-op
                    continue
                words = frame_words.get(pno)
                if words is None:
                    self._materialize(pno)
                    words = frame_words[pno]
                cached_pno = pno
                cached_words = words
            assert cached_words is not None
            cached_words[(address & _PAGE_MASK) >> 3] = value & _WORD_MASK

    def read_word_gather(self, addresses: Sequence[int]) -> List[int]:
        """Read one 64-bit word at each 8-aligned address.

        Scattered batch read (the free path's metadata loads), page
        lookup cached across items as in :meth:`write_word_scatter`.
        """
        if not self.fast_paths:
            return [self.read_word(address) for address in addresses]
        protections = self._protections
        frame_words = self._frame_words
        cached_pno = -1
        cached_words: Optional["array[int]"] = None
        out: List[int] = []
        append = out.append
        for address in addresses:
            if address & 7 or address < 0:
                append(self.read_word(address))
                continue
            pno = address >> _PAGE_SHIFT
            if pno != cached_pno:
                prot = protections.get(pno, -1)
                if prot < 0 or not prot & PROT_READ:
                    append(self.read_word(address))  # faults like per-op
                    continue
                words = frame_words.get(pno)
                if words is None:
                    append(0)  # unmaterialized pages read as zero
                    continue
                cached_pno = pno
                cached_words = words
            assert cached_words is not None
            append(cached_words[(address & _PAGE_MASK) >> 3])
        return out

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        """Set ``size`` bytes to ``byte`` (memset).

        Zero-copy: fills page frames in place instead of materializing a
        ``size``-byte pattern first.  Filling *writes*, so touched pages
        become resident exactly as they would under ``write``.
        """
        if size == 0:
            return
        if (self.fast_paths and 0 < size
                and (address & _PAGE_MASK) + size <= PAGE_SIZE
                and address >= 0):
            pno, offset, frame = self._translate(address, size, PROT_WRITE,
                                                 "write")
            if frame is None:
                frame = self._materialize(pno)
            if byte == 0:
                frame[offset:offset + size] = _ZERO_PAGE[:size]
            else:
                frame[offset:offset + size] = bytes([byte]) * size
            return
        self._check(address, size, PROT_WRITE, "write")
        self._fill_pages(address, size, byte)

    def peek(self, address: int, size: int) -> bytes:
        """Read bytes *without* permission checks (debugger access).

        Used by the offline analyzer, which — like Valgrind — can observe
        memory the guest program cannot.  Unmapped bytes read as zero.
        """
        return self._copy_out(address, size)

    def poke(self, address: int, data: bytes) -> None:
        """Write bytes without permission checks (debugger access).

        The target pages must at least be mapped; protections are ignored.
        """
        if not self.is_mapped(address, max(len(data), 1)):
            raise SegmentationFault(address, "write", len(data),
                                    message="poke of unmapped memory")
        self._copy_in(address, data)

    # ------------------------------------------------------------------
    # Page-frame plumbing
    # ------------------------------------------------------------------

    def _materialize(self, pno: int) -> memoryview:
        """First write to a mapped page: give it a frame from the store."""
        slot, frame, words = self._store.alloc()
        self._frames[pno] = frame
        self._frame_words[pno] = words
        self._frame_slots[pno] = slot
        if len(self._frames) > self.peak_resident_pages:
            self.peak_resident_pages = len(self._frames)
        if pno == self._tlb_page:
            self._tlb_frame = frame
            self._tlb_words = words
        return frame

    def _discard_frame(self, pno: int) -> None:
        """Drop a resident page and return its slot to the store."""
        frame = self._frames.pop(pno)
        words = self._frame_words.pop(pno)
        slot = self._frame_slots.pop(pno)
        frame.release()
        words.release()
        self._store.free(slot)

    def _copy_out(self, address: int, size: int) -> bytes:
        if size <= 0:
            return b""
        out = bytearray(size)
        view = memoryview(out)
        frames = self._frames
        position = 0
        cursor = address
        remaining = size
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is not None:
                view[position:position + chunk] = \
                    frame[offset:offset + chunk]
            # else: the preallocated buffer is already zero-filled.
            position += chunk
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _copy_in(self, address: int, data: bytes) -> None:
        view = memoryview(data)
        frames = self._frames
        remaining = len(data)
        cursor = address
        consumed = 0
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + chunk] = view[consumed:consumed + chunk]
            cursor += chunk
            consumed += chunk
            remaining -= chunk

    def _fill_pages(self, address: int, size: int, byte: int) -> None:
        """Page-walking memset; never builds a ``size``-byte pattern."""
        frames = self._frames
        pattern = _ZERO_PAGE if byte == 0 else bytes([byte]) * PAGE_SIZE
        remaining = size
        cursor = address
        while remaining > 0:
            pno = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            frame = frames.get(pno)
            if frame is None:
                frame = self._materialize(pno)
            frame[offset:offset + chunk] = pattern[:chunk]
            cursor += chunk
            remaining -= chunk

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release all resident frames (and a privately owned store).

        Optional: garbage collection performs the same cleanup.  Useful
        when many ``VirtualMemory`` instances share a long-lived store
        and slots should be returned promptly.
        """
        for pno in list(self._frames):
            self._discard_frame(pno)
        self._tlb_page = -1
        self._tlb_frame = None
        self._tlb_words = None
        self._read_span = (-1, -1)
        if self._owns_store:
            self._store.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        # Return slots to a shared (externally owned) store so long-lived
        # arenas do not leak pages as VirtualMemory instances come and go.
        try:
            if not self._owns_store:
                store = self._store
                for slot in self._frame_slots.values():
                    store.free(slot)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Accounting & introspection
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages that have been materialized (written to)."""
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Resident set size in bytes — the simulated ``VmRSS``."""
        return len(self._frames) * PAGE_SIZE

    @property
    def mapped_pages(self) -> int:
        """Number of pages currently mapped (any protection)."""
        return len(self._protections)

    @property
    def mapped_bytes(self) -> int:
        """Total mapped bytes — the simulated ``VmSize`` contribution."""
        return len(self._protections) * PAGE_SIZE

    def iter_mappings(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(start, length, prot)`` for maximal contiguous runs."""
        pages = sorted(self._protections)
        i = 0
        while i < len(pages):
            start = pages[i]
            prot = self._protections[start]
            j = i
            while (j + 1 < len(pages) and pages[j + 1] == pages[j] + 1
                   and self._protections[pages[j + 1]] == prot):
                j += 1
            yield (start * PAGE_SIZE, (j - i + 1) * PAGE_SIZE, prot)
            i = j + 1
